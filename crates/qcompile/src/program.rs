use qaoa::{MaxCut, QaoaParams};
use qcircuit::{Angle, CircuitError, ParamId, ParamTable, ParamValues};
use qgraph::Graph;

use crate::error::CompileError;
use crate::pipeline::CompiledCircuit;

/// One commuting cost-layer gate: the paper's "CPHASE" between logical
/// qubits `a` and `b` with angle `angle` (implemented as
/// [`qcircuit::Gate::Rzz`]).
///
/// The angle is an [`Angle`], so a spec can carry either concrete values
/// or symbolic parameters (`Sym { param, scale }`) that are bound after
/// compilation — the mapping/ordering/routing passes never read it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CphaseOp {
    /// First logical operand (the figure's control).
    pub a: usize,
    /// Second logical operand (the figure's target).
    pub b: usize,
    /// Rotation angle, concrete or symbolic.
    pub angle: Angle,
}

impl CphaseOp {
    /// Creates a cost gate.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: usize, b: usize, angle: impl Into<Angle>) -> Self {
        assert_ne!(a, b, "CPHASE on duplicate operand {a}");
        CphaseOp {
            a,
            b,
            angle: angle.into(),
        }
    }
}

/// The compiler's view of a QAOA program: qubit count, one commuting
/// CPHASE list plus mixer angle per level, and whether to measure.
///
/// The structure mirrors what the paper's methodologies actually permute:
/// only the *order* of each level's CPHASE list is a degree of freedom;
/// the surrounding Hadamard, mixer and measurement layers are fixed.
///
/// A spec may be **parametric**: angles refer to entries of its
/// [`ParamTable`] instead of carrying numbers (see
/// [`QaoaSpec::from_maxcut_parametric`]). The compile flow is angle-blind,
/// so a parametric spec compiles exactly like a bound one and the result
/// can be rebound per optimizer iteration ([`CompiledArtifact`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaSpec {
    num_qubits: usize,
    levels: Vec<(Vec<CphaseOp>, Angle)>,
    /// Per-level longitudinal-field rotations `(qubit, angle)`: diagonal
    /// single-qubit `Rz` gates that commute with the cost layer and need
    /// no routing (general Ising problems, §VI).
    fields: Vec<Vec<(usize, Angle)>>,
    params: ParamTable,
    measure: bool,
}

impl QaoaSpec {
    /// Builds a spec from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or an operand is out of range.
    pub fn new<B: Into<Angle>>(
        num_qubits: usize,
        levels: Vec<(Vec<CphaseOp>, B)>,
        measure: bool,
    ) -> Self {
        assert!(!levels.is_empty(), "QAOA spec needs at least one level");
        let levels: Vec<(Vec<CphaseOp>, Angle)> = levels
            .into_iter()
            .map(|(ops, beta)| (ops, beta.into()))
            .collect();
        for (ops, _) in &levels {
            for op in ops {
                assert!(
                    op.a < num_qubits && op.b < num_qubits,
                    "operand out of range in ({}, {})",
                    op.a,
                    op.b
                );
            }
        }
        let fields = vec![Vec::new(); levels.len()];
        QaoaSpec {
            num_qubits,
            levels,
            fields,
            params: ParamTable::new(),
            measure,
        }
    }

    /// Attaches per-level longitudinal-field rotations (see
    /// [`QaoaSpec::field_terms`]); one list per level.
    ///
    /// # Panics
    ///
    /// Panics if the list count differs from the level count or a field
    /// qubit is out of range.
    pub fn with_fields<B: Into<Angle>>(mut self, fields: Vec<Vec<(usize, B)>>) -> Self {
        assert_eq!(fields.len(), self.levels.len(), "one field list per level");
        let fields: Vec<Vec<(usize, Angle)>> = fields
            .into_iter()
            .map(|level| level.into_iter().map(|(q, a)| (q, a.into())).collect())
            .collect();
        for level in &fields {
            for &(q, _) in level {
                assert!(q < self.num_qubits, "field qubit {q} out of range");
            }
        }
        self.fields = fields;
        self
    }

    /// Attaches a parameter table describing the symbolic angles the spec
    /// refers to. Circuits built from the spec inherit this table.
    pub fn with_params(mut self, params: ParamTable) -> Self {
        self.params = params;
        self
    }

    /// The shared `2p` parameter table of a level-`p` parametric QAOA
    /// spec: `gamma0, beta0, gamma1, beta1, …` — level `k`'s cost angle is
    /// `ParamId(2k)` and its mixer angle `ParamId(2k + 1)`, matching the
    /// flat `[γ1, β1, γ2, β2, …]` layout of [`QaoaParams::to_flat`].
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn parametric_table(p: usize) -> ParamTable {
        assert!(p > 0, "QAOA needs at least one level");
        let mut table = ParamTable::new();
        for k in 0..p {
            table.declare(format!("gamma{k}"));
            table.declare(format!("beta{k}"));
        }
        table
    }

    /// Builds the spec of a general Ising instance (§VI): one weighted
    /// CPHASE per coupling (`Rzz(2γJ)`) and one field rotation
    /// (`Rz(2γh)`) per nonzero field, per level.
    pub fn from_ising(
        problem: &qaoa::ising::IsingProblem,
        params: &qaoa::QaoaParams,
        measure: bool,
    ) -> Self {
        let levels: Vec<(Vec<CphaseOp>, f64)> = params
            .levels()
            .iter()
            .map(|&(gamma, beta)| {
                let ops = problem
                    .couplings()
                    .iter()
                    .map(|&(u, v, j)| CphaseOp::new(u, v, 2.0 * gamma * j))
                    .collect();
                (ops, beta)
            })
            .collect();
        let fields: Vec<Vec<(usize, f64)>> = params
            .levels()
            .iter()
            .map(|&(gamma, _)| {
                problem
                    .fields()
                    .iter()
                    .enumerate()
                    .filter(|(_, &h)| h != 0.0)
                    .map(|(q, &h)| (q, 2.0 * gamma * h))
                    .collect()
            })
            .collect();
        QaoaSpec::new(problem.num_spins(), levels, measure).with_fields(fields)
    }

    /// The parametric form of [`QaoaSpec::from_ising`]: one spec with `2p`
    /// shared symbolic parameters instead of one spec per `(γ, β)` point.
    /// Level `k` uses `Rzz(2J·γ_k)` couplings and `Rz(2h·γ_k)` fields with
    /// `γ_k = ParamId(2k)` and mixer parameter `β_k = ParamId(2k + 1)`
    /// (see [`QaoaSpec::parametric_table`]). Bind with the flat
    /// `[γ1, β1, …]` values of [`QaoaParams::to_flat`].
    pub fn from_ising_parametric(
        problem: &qaoa::ising::IsingProblem,
        p: usize,
        measure: bool,
    ) -> Self {
        let levels: Vec<(Vec<CphaseOp>, Angle)> = (0..p)
            .map(|k| {
                let gamma = Angle::sym(ParamId(2 * k as u32));
                let ops = problem
                    .couplings()
                    .iter()
                    .map(|&(u, v, j)| CphaseOp::new(u, v, gamma.scaled(2.0 * j)))
                    .collect();
                (ops, Angle::sym(ParamId(2 * k as u32 + 1)))
            })
            .collect();
        let fields: Vec<Vec<(usize, Angle)>> = (0..p)
            .map(|k| {
                let gamma = Angle::sym(ParamId(2 * k as u32));
                problem
                    .fields()
                    .iter()
                    .enumerate()
                    .filter(|(_, &h)| h != 0.0)
                    .map(|(q, &h)| (q, gamma.scaled(2.0 * h)))
                    .collect()
            })
            .collect();
        QaoaSpec::new(problem.num_spins(), levels, measure)
            .with_fields(fields)
            .with_params(QaoaSpec::parametric_table(p))
    }

    /// Builds the spec of a QAOA-MaxCut instance: one CPHASE per problem
    /// edge per level, with the conventions of [`qaoa::qaoa_circuit`].
    pub fn from_maxcut(problem: &MaxCut, params: &QaoaParams, measure: bool) -> Self {
        let levels: Vec<(Vec<CphaseOp>, f64)> = params
            .levels()
            .iter()
            .map(|&(gamma, beta)| {
                let ops = problem
                    .graph()
                    .edges()
                    .map(|e| CphaseOp::new(e.a(), e.b(), -gamma))
                    .collect();
                (ops, beta)
            })
            .collect();
        QaoaSpec::new(problem.num_vars(), levels, measure)
    }

    /// The parametric form of [`QaoaSpec::from_maxcut`]: one spec with
    /// `2p` shared symbolic parameters. Level `k`'s cost gates are
    /// `Rzz(-γ_k)` with `γ_k = ParamId(2k)` and its mixer parameter is
    /// `β_k = ParamId(2k + 1)` (see [`QaoaSpec::parametric_table`]). Bind
    /// with the flat `[γ1, β1, …]` values of [`QaoaParams::to_flat`].
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn from_maxcut_parametric(problem: &MaxCut, p: usize, measure: bool) -> Self {
        let levels: Vec<(Vec<CphaseOp>, Angle)> = (0..p)
            .map(|k| {
                let gamma = Angle::sym(ParamId(2 * k as u32));
                let ops = problem
                    .graph()
                    .edges()
                    .map(|e| CphaseOp::new(e.a(), e.b(), gamma.scaled(-1.0)))
                    .collect();
                (ops, Angle::sym(ParamId(2 * k as u32 + 1)))
            })
            .collect();
        QaoaSpec::new(problem.num_vars(), levels, measure)
            .with_params(QaoaSpec::parametric_table(p))
    }

    /// Number of logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The levels: `(cost gate list, mixer angle β)` per level.
    pub fn levels(&self) -> &[(Vec<CphaseOp>, Angle)] {
        &self.levels
    }

    /// The per-level field rotations `(qubit, angle)`.
    pub fn field_terms(&self, level: usize) -> &[(usize, Angle)] {
        &self.fields[level]
    }

    /// Whether the compiled circuit ends with measurements.
    pub fn measure(&self) -> bool {
        self.measure
    }

    /// The spec's parameter table (empty for fully bound specs).
    pub fn param_table(&self) -> &ParamTable {
        &self.params
    }

    /// Number of declared symbolic parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Whether any angle in the spec is symbolic.
    pub fn is_parametric(&self) -> bool {
        self.levels
            .iter()
            .any(|(ops, beta)| beta.is_sym() || ops.iter().any(|op| op.angle.is_sym()))
            || self
                .fields
                .iter()
                .any(|level| level.iter().any(|(_, a)| a.is_sym()))
    }

    /// Substitutes `values` into every symbolic angle, producing a fully
    /// bound spec (empty parameter table) with identical structure.
    ///
    /// # Errors
    ///
    /// Fails when `values` does not cover the declared parameters.
    pub fn bind(&self, values: &ParamValues) -> Result<QaoaSpec, CircuitError> {
        if !self.params.is_empty() && values.len() != self.params.len() {
            return Err(CircuitError::ParamCountMismatch {
                expected: self.params.len(),
                found: values.len(),
            });
        }
        let levels = self
            .levels
            .iter()
            .map(|(ops, beta)| {
                let ops = ops
                    .iter()
                    .map(|op| {
                        Ok(CphaseOp {
                            a: op.a,
                            b: op.b,
                            angle: op.angle.bind(values)?,
                        })
                    })
                    .collect::<Result<Vec<_>, CircuitError>>()?;
                Ok((ops, beta.bind(values)?))
            })
            .collect::<Result<Vec<_>, CircuitError>>()?;
        let fields = self
            .fields
            .iter()
            .map(|level| {
                level
                    .iter()
                    .map(|&(q, a)| Ok((q, a.bind(values)?)))
                    .collect::<Result<Vec<_>, CircuitError>>()
            })
            .collect::<Result<Vec<_>, CircuitError>>()?;
        Ok(QaoaSpec {
            num_qubits: self.num_qubits,
            levels,
            fields,
            params: ParamTable::new(),
            measure: self.measure,
        })
    }

    /// Total number of cost gates across all levels.
    pub fn total_cphase_count(&self) -> usize {
        self.levels.iter().map(|(ops, _)| ops.len()).sum()
    }

    /// The *logical interaction graph*: nodes are logical qubits, edges the
    /// qubit pairs sharing a CPHASE in any level. QAIM's "logical
    /// neighbors" come from here.
    pub fn interaction_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_qubits);
        for (ops, _) in &self.levels {
            for op in ops {
                g.add_edge(op.a, op.b)
                    .expect("operands validated at construction");
            }
        }
        g
    }

    /// The program profile over all levels.
    pub fn profile(&self) -> ProgramProfile {
        let mut ops_per_qubit = vec![0usize; self.num_qubits];
        for (ops, _) in &self.levels {
            for op in ops {
                ops_per_qubit[op.a] += 1;
                ops_per_qubit[op.b] += 1;
            }
        }
        ProgramProfile { ops_per_qubit }
    }
}

/// A compile-once/rebind-many artifact: the full [`CompiledCircuit`] of a
/// *parametric* spec, reusable across parameter points.
///
/// The compile flow (QAIM/GreedyV mapping, IP/IC/VIC ordering, routing,
/// basis lowering) depends only on the interaction graph and the device —
/// never on the angles — so one compilation of a parametric spec yields a
/// template whose [`CompiledArtifact::bind`] is pure per-gate angle
/// substitution: zero mapping, ordering or routing work, with layouts,
/// pass trace and explain report carried over verbatim. Each rebind bumps
/// the `qcompile/rebind` and `qcompile/rebind_gates` qtrace counters so
/// the compile-vs-rebind economics show up in run manifests.
///
/// Build one with [`crate::compile_artifact`] /
/// [`crate::try_compile_artifact`].
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    template: CompiledCircuit,
    num_params: usize,
}

impl CompiledArtifact {
    pub(crate) fn new(template: CompiledCircuit, num_params: usize) -> Self {
        CompiledArtifact {
            template,
            num_params,
        }
    }

    /// Rebuilds an artifact around a template recovered from persistent
    /// storage (see [`CompiledCircuit::from_recovered_parts`]).
    /// `num_params` must match the spec the template was compiled from;
    /// [`CompiledArtifact::bind`] enforces it against the supplied
    /// values exactly as for a freshly compiled artifact.
    pub fn from_recovered_template(template: CompiledCircuit, num_params: usize) -> Self {
        CompiledArtifact {
            template,
            num_params,
        }
    }

    /// The parametric compiled template (symbolic angles intact).
    pub fn template(&self) -> &CompiledCircuit {
        &self.template
    }

    /// Number of parameters a [`CompiledArtifact::bind`] call must supply.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Whether the template still carries symbolic angles. (False for
    /// artifacts compiled from bound specs; binding is then a clone.)
    pub fn is_parametric(&self) -> bool {
        self.template.physical().is_parametric()
    }

    /// Substitutes `values` into the template, returning a fully bound
    /// [`CompiledCircuit`] with **bit-identical** structure: same gate
    /// order, SWAP count, depth, layouts, pass trace and explain report
    /// as the template — only the angles change.
    ///
    /// # Errors
    ///
    /// [`CompileError::UnboundParameters`] when `values` does not cover
    /// the template's parameters.
    pub fn bind(&self, values: &ParamValues) -> Result<CompiledCircuit, CompileError> {
        self.template.bind(values)
    }

    /// Alias of [`CompiledArtifact::bind`], named for the optimizer-loop
    /// reading: `compile once, rebind every iteration`.
    pub fn rebind(&self, values: &ParamValues) -> Result<CompiledCircuit, CompileError> {
        self.bind(values)
    }
}

/// The program profile of §IV-A: CPHASE operations per logical qubit
/// (Figure 3(c)), shared by QAIM (placement order) and IP (gate ranking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramProfile {
    ops_per_qubit: Vec<usize>,
}

impl ProgramProfile {
    /// Builds a profile directly from a CPHASE list.
    pub fn from_ops(num_qubits: usize, ops: &[CphaseOp]) -> Self {
        let mut ops_per_qubit = vec![0usize; num_qubits];
        for op in ops {
            ops_per_qubit[op.a] += 1;
            ops_per_qubit[op.b] += 1;
        }
        ProgramProfile { ops_per_qubit }
    }

    /// CPHASE count on logical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn ops_on(&self, q: usize) -> usize {
        self.ops_per_qubit[q]
    }

    /// Number of profiled logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.ops_per_qubit.len()
    }

    /// The paper's MOQ: maximum operations on any qubit — the lower bound
    /// on (and initial allocation of) IP's layer count.
    pub fn moq(&self) -> usize {
        self.ops_per_qubit.iter().copied().max().unwrap_or(0)
    }

    /// Logical qubits in descending-ops order (ascending index on ties) —
    /// QAIM's placement order (§IV-A Step 1).
    pub fn ranked_qubits(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.ops_per_qubit.len()).collect();
        order.sort_by(|&x, &y| {
            self.ops_per_qubit[y]
                .cmp(&self.ops_per_qubit[x])
                .then(x.cmp(&y))
        });
        order
    }

    /// The cumulative rank of a CPHASE op: ops on its first operand plus
    /// ops on its second (Figure 4(c)).
    pub fn op_rank(&self, op: &CphaseOp) -> usize {
        self.ops_per_qubit[op.a] + self.ops_per_qubit[op.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> QaoaSpec {
        // Figure 4(a): CPHASE list {(1,5), (2,3), (1,4), (2,4)} (1-based in
        // the paper; kept 1-based here on 6 logical qubits with qubit 0
        // unused, so the figure's numbers read off directly).
        let ops = vec![
            CphaseOp::new(1, 5, 0.3),
            CphaseOp::new(2, 3, 0.3),
            CphaseOp::new(1, 4, 0.3),
            CphaseOp::new(2, 4, 0.3),
        ];
        QaoaSpec::new(6, vec![(ops, 0.2)], false)
    }

    #[test]
    fn profile_matches_figure_4b() {
        let profile = toy_spec().profile();
        assert_eq!(profile.ops_on(1), 2);
        assert_eq!(profile.ops_on(2), 2);
        assert_eq!(profile.ops_on(3), 1);
        assert_eq!(profile.ops_on(4), 2);
        assert_eq!(profile.ops_on(5), 1);
        assert_eq!(profile.moq(), 2);
    }

    #[test]
    fn op_ranks_match_figure_4c() {
        let spec = toy_spec();
        let profile = spec.profile();
        let ops = &spec.levels()[0].0;
        assert_eq!(profile.op_rank(&ops[0]), 3); // (1,5)
        assert_eq!(profile.op_rank(&ops[1]), 3); // (2,3)
        assert_eq!(profile.op_rank(&ops[2]), 4); // (1,4)
        assert_eq!(profile.op_rank(&ops[3]), 4); // (2,4)
    }

    #[test]
    fn ranked_qubits_descending_with_index_ties() {
        let profile = toy_spec().profile();
        assert_eq!(profile.ranked_qubits(), vec![1, 2, 4, 3, 5, 0]);
    }

    #[test]
    fn from_maxcut_builds_one_op_per_edge() {
        let problem = MaxCut::new(qgraph::generators::complete(4));
        let spec = QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.7, 0.2), true);
        assert_eq!(spec.num_qubits(), 4);
        assert_eq!(spec.total_cphase_count(), 6);
        assert!(spec.measure());
        assert!(!spec.is_parametric());
        assert_eq!(spec.levels()[0].1, Angle::Const(0.2));
        assert!(spec.levels()[0]
            .0
            .iter()
            .all(|op| (op.angle.value() + 0.7).abs() < 1e-12));
        assert_eq!(spec.interaction_graph(), *problem.graph());
    }

    #[test]
    fn parametric_maxcut_shares_two_params_per_level() {
        let problem = MaxCut::new(qgraph::generators::complete(4));
        let spec = QaoaSpec::from_maxcut_parametric(&problem, 2, true);
        assert!(spec.is_parametric());
        assert_eq!(spec.num_params(), 4);
        assert_eq!(spec.param_table().name(ParamId(0)), Some("gamma0"));
        assert_eq!(spec.param_table().name(ParamId(3)), Some("beta1"));
        for (k, (ops, beta)) in spec.levels().iter().enumerate() {
            assert_eq!(beta.param(), Some(ParamId(2 * k as u32 + 1)));
            for op in ops {
                assert_eq!(op.angle.param(), Some(ParamId(2 * k as u32)));
            }
        }
        // The interaction structure matches the bound form: same graph,
        // same profile, same op count.
        let bound = QaoaSpec::from_maxcut(&problem, &QaoaParams::new(vec![(0.1, 0.2); 2]), true);
        assert_eq!(spec.interaction_graph(), bound.interaction_graph());
        assert_eq!(spec.profile(), bound.profile());
    }

    #[test]
    fn binding_a_parametric_spec_matches_the_direct_construction() {
        let problem = MaxCut::new(qgraph::generators::cycle(5));
        let params = QaoaParams::new(vec![(0.7, 0.2), (0.4, 0.9)]);
        let spec = QaoaSpec::from_maxcut_parametric(&problem, 2, true);
        let values = ParamValues::new(params.to_flat());
        let bound = spec.bind(&values).unwrap();
        assert!(!bound.is_parametric());
        assert_eq!(bound.num_params(), 0);
        assert_eq!(bound, QaoaSpec::from_maxcut(&problem, &params, true));
    }

    #[test]
    fn binding_validates_value_count() {
        let problem = MaxCut::new(qgraph::generators::cycle(4));
        let spec = QaoaSpec::from_maxcut_parametric(&problem, 2, false);
        let err = spec.bind(&ParamValues::new(vec![0.1, 0.2])).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::ParamCountMismatch {
                expected: 4,
                found: 2
            }
        ));
    }

    #[test]
    fn parametric_ising_scales_by_coupling_and_field() {
        let problem = qaoa::ising::IsingProblem::new(
            3,
            vec![(0, 1, 0.5), (1, 2, -0.75)],
            vec![0.3, 0.0, -0.8],
        );
        let spec = QaoaSpec::from_ising_parametric(&problem, 1, false);
        assert!(spec.is_parametric());
        assert_eq!(spec.field_terms(0).len(), 2); // zero fields compile away
        let params = QaoaParams::p1(0.6, 0.3);
        let bound = spec.bind(&ParamValues::new(params.to_flat())).unwrap();
        assert_eq!(bound, QaoaSpec::from_ising(&problem, &params, false));
    }

    #[test]
    fn multi_level_profile_accumulates() {
        let problem = MaxCut::new(qgraph::generators::path(3));
        let params = QaoaParams::new(vec![(0.1, 0.2), (0.3, 0.4)]);
        let spec = QaoaSpec::from_maxcut(&problem, &params, false);
        let profile = spec.profile();
        assert_eq!(profile.ops_on(1), 4); // middle qubit: 2 edges x 2 levels
        assert_eq!(profile.moq(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_operand_panics() {
        let _ = QaoaSpec::new(2, vec![(vec![CphaseOp::new(0, 2, 0.1)], 0.0)], false);
    }

    #[test]
    #[should_panic]
    fn self_cphase_panics() {
        let _ = CphaseOp::new(3, 3, 0.1);
    }
}
