use qaoa::{MaxCut, QaoaParams};
use qgraph::Graph;

/// One commuting cost-layer gate: the paper's "CPHASE" between logical
/// qubits `a` and `b` with angle `angle` (implemented as
/// [`qcircuit::Gate::Rzz`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CphaseOp {
    /// First logical operand (the figure's control).
    pub a: usize,
    /// Second logical operand (the figure's target).
    pub b: usize,
    /// Rotation angle.
    pub angle: f64,
}

impl CphaseOp {
    /// Creates a cost gate.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: usize, b: usize, angle: f64) -> Self {
        assert_ne!(a, b, "CPHASE on duplicate operand {a}");
        CphaseOp { a, b, angle }
    }
}

/// The compiler's view of a QAOA program: qubit count, one commuting
/// CPHASE list plus mixer angle per level, and whether to measure.
///
/// The structure mirrors what the paper's methodologies actually permute:
/// only the *order* of each level's CPHASE list is a degree of freedom;
/// the surrounding Hadamard, mixer and measurement layers are fixed.
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaSpec {
    num_qubits: usize,
    levels: Vec<(Vec<CphaseOp>, f64)>,
    /// Per-level longitudinal-field rotations `(qubit, angle)`: diagonal
    /// single-qubit `Rz` gates that commute with the cost layer and need
    /// no routing (general Ising problems, §VI).
    fields: Vec<Vec<(usize, f64)>>,
    measure: bool,
}

impl QaoaSpec {
    /// Builds a spec from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or an operand is out of range.
    pub fn new(num_qubits: usize, levels: Vec<(Vec<CphaseOp>, f64)>, measure: bool) -> Self {
        assert!(!levels.is_empty(), "QAOA spec needs at least one level");
        for (ops, _) in &levels {
            for op in ops {
                assert!(
                    op.a < num_qubits && op.b < num_qubits,
                    "operand out of range in ({}, {})",
                    op.a,
                    op.b
                );
            }
        }
        let fields = vec![Vec::new(); levels.len()];
        QaoaSpec {
            num_qubits,
            levels,
            fields,
            measure,
        }
    }

    /// Attaches per-level longitudinal-field rotations (see
    /// [`QaoaSpec::field_terms`]); one list per level.
    ///
    /// # Panics
    ///
    /// Panics if the list count differs from the level count or a field
    /// qubit is out of range.
    pub fn with_fields(mut self, fields: Vec<Vec<(usize, f64)>>) -> Self {
        assert_eq!(fields.len(), self.levels.len(), "one field list per level");
        for level in &fields {
            for &(q, _) in level {
                assert!(q < self.num_qubits, "field qubit {q} out of range");
            }
        }
        self.fields = fields;
        self
    }

    /// Builds the spec of a general Ising instance (§VI): one weighted
    /// CPHASE per coupling (`Rzz(2γJ)`) and one field rotation
    /// (`Rz(2γh)`) per nonzero field, per level.
    pub fn from_ising(
        problem: &qaoa::ising::IsingProblem,
        params: &qaoa::QaoaParams,
        measure: bool,
    ) -> Self {
        let levels: Vec<(Vec<CphaseOp>, f64)> = params
            .levels()
            .iter()
            .map(|&(gamma, beta)| {
                let ops = problem
                    .couplings()
                    .iter()
                    .map(|&(u, v, j)| CphaseOp::new(u, v, 2.0 * gamma * j))
                    .collect();
                (ops, beta)
            })
            .collect();
        let fields = params
            .levels()
            .iter()
            .map(|&(gamma, _)| {
                problem
                    .fields()
                    .iter()
                    .enumerate()
                    .filter(|(_, &h)| h != 0.0)
                    .map(|(q, &h)| (q, 2.0 * gamma * h))
                    .collect()
            })
            .collect();
        QaoaSpec::new(problem.num_spins(), levels, measure).with_fields(fields)
    }

    /// Builds the spec of a QAOA-MaxCut instance: one CPHASE per problem
    /// edge per level, with the conventions of [`qaoa::qaoa_circuit`].
    pub fn from_maxcut(problem: &MaxCut, params: &QaoaParams, measure: bool) -> Self {
        let levels = params
            .levels()
            .iter()
            .map(|&(gamma, beta)| {
                let ops = problem
                    .graph()
                    .edges()
                    .map(|e| CphaseOp::new(e.a(), e.b(), -gamma))
                    .collect();
                (ops, beta)
            })
            .collect();
        QaoaSpec::new(problem.num_vars(), levels, measure)
    }

    /// Number of logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The levels: `(cost gate list, mixer angle β)` per level.
    pub fn levels(&self) -> &[(Vec<CphaseOp>, f64)] {
        &self.levels
    }

    /// The per-level field rotations `(qubit, angle)`.
    pub fn field_terms(&self, level: usize) -> &[(usize, f64)] {
        &self.fields[level]
    }

    /// Whether the compiled circuit ends with measurements.
    pub fn measure(&self) -> bool {
        self.measure
    }

    /// Total number of cost gates across all levels.
    pub fn total_cphase_count(&self) -> usize {
        self.levels.iter().map(|(ops, _)| ops.len()).sum()
    }

    /// The *logical interaction graph*: nodes are logical qubits, edges the
    /// qubit pairs sharing a CPHASE in any level. QAIM's "logical
    /// neighbors" come from here.
    pub fn interaction_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_qubits);
        for (ops, _) in &self.levels {
            for op in ops {
                g.add_edge(op.a, op.b)
                    .expect("operands validated at construction");
            }
        }
        g
    }

    /// The program profile over all levels.
    pub fn profile(&self) -> ProgramProfile {
        let mut ops_per_qubit = vec![0usize; self.num_qubits];
        for (ops, _) in &self.levels {
            for op in ops {
                ops_per_qubit[op.a] += 1;
                ops_per_qubit[op.b] += 1;
            }
        }
        ProgramProfile { ops_per_qubit }
    }
}

/// The program profile of §IV-A: CPHASE operations per logical qubit
/// (Figure 3(c)), shared by QAIM (placement order) and IP (gate ranking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramProfile {
    ops_per_qubit: Vec<usize>,
}

impl ProgramProfile {
    /// Builds a profile directly from a CPHASE list.
    pub fn from_ops(num_qubits: usize, ops: &[CphaseOp]) -> Self {
        let mut ops_per_qubit = vec![0usize; num_qubits];
        for op in ops {
            ops_per_qubit[op.a] += 1;
            ops_per_qubit[op.b] += 1;
        }
        ProgramProfile { ops_per_qubit }
    }

    /// CPHASE count on logical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn ops_on(&self, q: usize) -> usize {
        self.ops_per_qubit[q]
    }

    /// Number of profiled logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.ops_per_qubit.len()
    }

    /// The paper's MOQ: maximum operations on any qubit — the lower bound
    /// on (and initial allocation of) IP's layer count.
    pub fn moq(&self) -> usize {
        self.ops_per_qubit.iter().copied().max().unwrap_or(0)
    }

    /// Logical qubits in descending-ops order (ascending index on ties) —
    /// QAIM's placement order (§IV-A Step 1).
    pub fn ranked_qubits(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.ops_per_qubit.len()).collect();
        order.sort_by(|&x, &y| {
            self.ops_per_qubit[y]
                .cmp(&self.ops_per_qubit[x])
                .then(x.cmp(&y))
        });
        order
    }

    /// The cumulative rank of a CPHASE op: ops on its first operand plus
    /// ops on its second (Figure 4(c)).
    pub fn op_rank(&self, op: &CphaseOp) -> usize {
        self.ops_per_qubit[op.a] + self.ops_per_qubit[op.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> QaoaSpec {
        // Figure 4(a): CPHASE list {(1,5), (2,3), (1,4), (2,4)} (1-based in
        // the paper; kept 1-based here on 6 logical qubits with qubit 0
        // unused, so the figure's numbers read off directly).
        let ops = vec![
            CphaseOp::new(1, 5, 0.3),
            CphaseOp::new(2, 3, 0.3),
            CphaseOp::new(1, 4, 0.3),
            CphaseOp::new(2, 4, 0.3),
        ];
        QaoaSpec::new(6, vec![(ops, 0.2)], false)
    }

    #[test]
    fn profile_matches_figure_4b() {
        let profile = toy_spec().profile();
        assert_eq!(profile.ops_on(1), 2);
        assert_eq!(profile.ops_on(2), 2);
        assert_eq!(profile.ops_on(3), 1);
        assert_eq!(profile.ops_on(4), 2);
        assert_eq!(profile.ops_on(5), 1);
        assert_eq!(profile.moq(), 2);
    }

    #[test]
    fn op_ranks_match_figure_4c() {
        let spec = toy_spec();
        let profile = spec.profile();
        let ops = &spec.levels()[0].0;
        assert_eq!(profile.op_rank(&ops[0]), 3); // (1,5)
        assert_eq!(profile.op_rank(&ops[1]), 3); // (2,3)
        assert_eq!(profile.op_rank(&ops[2]), 4); // (1,4)
        assert_eq!(profile.op_rank(&ops[3]), 4); // (2,4)
    }

    #[test]
    fn ranked_qubits_descending_with_index_ties() {
        let profile = toy_spec().profile();
        assert_eq!(profile.ranked_qubits(), vec![1, 2, 4, 3, 5, 0]);
    }

    #[test]
    fn from_maxcut_builds_one_op_per_edge() {
        let problem = MaxCut::new(qgraph::generators::complete(4));
        let spec = QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.7, 0.2), true);
        assert_eq!(spec.num_qubits(), 4);
        assert_eq!(spec.total_cphase_count(), 6);
        assert!(spec.measure());
        assert_eq!(spec.levels()[0].1, 0.2);
        assert!(spec.levels()[0]
            .0
            .iter()
            .all(|op| (op.angle + 0.7).abs() < 1e-12));
        assert_eq!(spec.interaction_graph(), *problem.graph());
    }

    #[test]
    fn multi_level_profile_accumulates() {
        let problem = MaxCut::new(qgraph::generators::path(3));
        let params = QaoaParams::new(vec![(0.1, 0.2), (0.3, 0.4)]);
        let spec = QaoaSpec::from_maxcut(&problem, &params, false);
        let profile = spec.profile();
        assert_eq!(profile.ops_on(1), 4); // middle qubit: 2 edges x 2 levels
        assert_eq!(profile.moq(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_operand_panics() {
        let _ = QaoaSpec::new(2, vec![(vec![CphaseOp::new(0, 2, 0.1)], 0.0)], false);
    }

    #[test]
    #[should_panic]
    fn self_cphase_panics() {
        let _ = CphaseOp::new(3, 3, 0.1);
    }
}
