//! The paper's contribution: four compilation methodologies for QAOA
//! circuits, layered on a conventional backend compiler.
//!
//! | Methodology | Module | Paper section |
//! |---|---|---|
//! | QAIM — integrated qubit allocation & initial mapping | [`mapping`] | §IV-A |
//! | IP — instruction parallelization (bin-packing) | [`ip`] | §IV-B |
//! | IC — incremental compilation | [`ic`] | §IV-C |
//! | VIC — variation-aware incremental compilation | [`ic`] (reliability metric) | §IV-D |
//!
//! Baselines: **NAIVE** (random initial mapping + random gate order) and
//! **GreedyV** (heaviest-qubit-first placement, Murali et al. ASPLOS'19).
//!
//! The [`pipeline`] module wires everything into the Figure 2 workflow:
//! problem → (mapping strategy) → (ordering / incremental compilation) →
//! backend router → hardware-compliant circuit plus quality metrics.
//! Stages are trait-based [`passes`] over a shared [`qhw::HardwareContext`]
//! (distance matrices and profiles computed once per target), each run
//! records a per-pass [`PassTrace`], fallible entry points return
//! [`CompileError`] instead of panicking, and [`compile_batch`] fans jobs
//! out across threads with bit-for-bit deterministic results.
//!
//! # Examples
//!
//! ```
//! use qaoa::{MaxCut, QaoaParams};
//! use qcompile::{compile, CompileOptions, Compilation, InitialMapping, QaoaSpec};
//! use qhw::Topology;
//! use rand::SeedableRng;
//!
//! let graph = qgraph::generators::cycle(6);
//! let spec = QaoaSpec::from_maxcut(&MaxCut::new(graph), &QaoaParams::p1(0.5, 0.3), true);
//! let topo = Topology::ibmq_20_tokyo();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! let options = CompileOptions::new(InitialMapping::Qaim, Compilation::IncrementalHops);
//! let compiled = compile(&spec, &topo, None, &options, &mut rng);
//! assert!(qroute::satisfies_coupling(compiled.physical(), &topo));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cancel;
pub mod crosstalk;
mod error;
pub mod explain;
pub mod ic;
pub mod ip;
pub mod mapping;
pub mod passes;
pub mod pipeline;
mod program;
#[doc(hidden)]
pub mod reference;
pub mod reverse;
mod trace;

pub use batch::{compile_batch, default_workers, BatchJob};
pub use cancel::CancelToken;
pub use error::CompileError;
pub use explain::{Explain, ExplainLayer, ExplainPass, EXPLAIN_VERSION};
pub use pipeline::{
    compile, compile_artifact, try_compile, try_compile_artifact,
    try_compile_artifact_with_context, try_compile_artifact_with_context_cancellable,
    try_compile_with_context, try_compile_with_context_cancellable, Compilation, CompileOptions,
    CompiledCircuit, InitialMapping, Resilience, FULL_VERIFY_MAX_QUBITS,
};
pub use program::{CompiledArtifact, CphaseOp, ProgramProfile, QaoaSpec};
pub use trace::{FallbackReason, FallbackRecord, PassRecord, PassTrace};
