//! Reverse-traversal refinement of the initial mapping.
//!
//! §III "Initial Mapping" describes the technique of Li et al. (\[57\],
//! ASPLOS'19): compile the circuit, then compile its *reverse* starting
//! from the final layout, and iterate — each pass hands its final mapping
//! to the next as the initial mapping. Because a circuit and its reverse
//! have identical routing structure, a mapping that ends a forward pass is
//! a good start for a reverse pass, and the mapping converges toward one
//! that suits both ends of the circuit. The paper cites "a few (3)
//! reverse traversals" as showing significant improvement at the cost of
//! repeated compilations — this module lets the repository quantify that
//! trade-off against QAIM (see the `ablation_reverse` bench binary).

use qcircuit::Circuit;
use qhw::Topology;
use qroute::{route, Layout, RoutingMetric};

use crate::QaoaSpec;

/// Refines `initial` by `traversals` forward/backward compilation rounds
/// of the full (unordered) QAOA circuit and returns the refined initial
/// mapping.
///
/// One *traversal* is a forward pass followed by a reverse pass; the
/// layout that begins the next forward pass is the refined mapping. The
/// routing uses hop distances (refinement happens before any
/// variation-aware compilation).
///
/// # Panics
///
/// Panics if the program does not fit the topology.
pub fn reverse_traversal_refine(
    spec: &QaoaSpec,
    topology: &Topology,
    initial: Layout,
    traversals: usize,
) -> Layout {
    let metric = RoutingMetric::hops(topology);
    let forward = spec_circuit(spec);
    let backward = forward.reversed();
    let mut layout = initial;
    for _ in 0..traversals {
        let f = route(&forward, topology, layout, &metric);
        let b = route(&backward, topology, f.final_layout, &metric);
        layout = b.final_layout;
    }
    layout
}

/// The plain logical circuit of a spec (levels in declaration order).
fn spec_circuit(spec: &QaoaSpec) -> Circuit {
    let n = spec.num_qubits();
    let mut c = Circuit::new(n);
    c.set_param_table(spec.param_table().clone());
    for q in 0..n {
        c.h(q);
    }
    for (ops, beta) in spec.levels() {
        for op in ops {
            c.rzz(op.angle, op.a, op.b);
        }
        for q in 0..n {
            c.rx(beta.scaled(2.0), q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mapping, CphaseOp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_spec(seed: u64) -> QaoaSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = qgraph::generators::connected_erdos_renyi(12, 0.4, 1000, &mut rng).unwrap();
        let ops = g
            .edges()
            .map(|e| CphaseOp::new(e.a(), e.b(), 0.5))
            .collect();
        QaoaSpec::new(12, vec![(ops, 0.3)], false)
    }

    /// Refinement must yield a valid (injective, in-range) layout.
    #[test]
    fn refined_layout_is_valid() {
        let spec = dense_spec(1);
        let topo = qhw::Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let start = mapping::naive(&spec, &topo, &mut rng);
        let refined = reverse_traversal_refine(&spec, &topo, start, 3);
        let mut seen = std::collections::HashSet::new();
        for (_, p) in refined.iter() {
            assert!(p < 20);
            assert!(seen.insert(p));
        }
        assert_eq!(refined.num_logical(), 12);
    }

    /// Starting from a random mapping, three traversals should reduce the
    /// SWAPs of a subsequent compilation on average (the \[57\] claim).
    #[test]
    fn refinement_reduces_swaps_from_random_start() {
        let topo = qhw::Topology::ibmq_20_tokyo();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(3);
        let (mut raw, mut refined) = (0usize, 0usize);
        for seed in 0..6 {
            let spec = dense_spec(100 + seed);
            let circuit = spec_circuit(&spec);
            let start = mapping::naive(&spec, &topo, &mut rng);
            raw += route(&circuit, &topo, start.clone(), &metric).swap_count;
            let better = reverse_traversal_refine(&spec, &topo, start, 3);
            refined += route(&circuit, &topo, better, &metric).swap_count;
        }
        assert!(
            refined < raw,
            "refined swaps {refined} should beat raw random {raw}"
        );
    }

    /// Zero traversals is the identity.
    #[test]
    fn zero_traversals_is_identity() {
        let spec = dense_spec(1);
        let topo = qhw::Topology::ibmq_20_tokyo();
        let start = mapping::qaim(&spec, &topo);
        let same = reverse_traversal_refine(&spec, &topo, start.clone(), 0);
        assert_eq!(same, start);
    }
}
