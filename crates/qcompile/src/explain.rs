//! The compile **explain report**: a structured, deterministic account of
//! what one compilation run decided and what it cost.
//!
//! Aggregate telemetry (qtrace manifests) answers "how much"; the explain
//! report answers "why": which initial layout the mapper chose, which
//! CPHASE gates each IC/IP layer contained, how many SWAPs each layer's
//! routing inserted and at what routed depth, and — when the
//! graceful-degradation ladder was involved — the narrative of which rung
//! failed for which reason.
//!
//! The report deliberately excludes every wall-clock quantity, so for a
//! fixed seed the JSON rendering is **byte-reproducible across runs and
//! worker-thread counts** (compilation itself is deterministic per seed;
//! see `compile_batch`). It renders two ways: canonical JSON
//! ([`Explain::to_json`], parseable by `qtrace::json`) and human-readable
//! text ([`Explain::render_text`] / [`fmt::Display`]).

use std::fmt;

use crate::trace::{FallbackRecord, PassTrace};

/// Schema version of the explain JSON document.
pub const EXPLAIN_VERSION: u64 = 1;

/// One formed gate layer, as seen by the routing backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainLayer {
    /// QAOA level the layer belongs to; `None` for full-circuit routing
    /// (IP / random order), where ASAP layers may span levels.
    pub level: Option<usize>,
    /// The layer's two-qubit gates as `(logical_a, logical_b)` pairs.
    pub gates: Vec<(usize, usize)>,
    /// SWAPs inserted to route this layer.
    pub swaps: usize,
    /// Depth of the routed partial circuit; `None` for full-circuit
    /// routing, where per-layer depth is not separable.
    pub routed_depth: Option<usize>,
}

/// One pass's non-timing contribution (timing lives in [`PassTrace`] and
/// the qtrace manifest; it is excluded here for reproducibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainPass {
    /// Pass name (`"qaim"`, `"route"`, `"incremental-hops"`, …).
    pub name: &'static str,
    /// SWAPs the pass inserted.
    pub swaps_added: usize,
    /// Circuit depth after the pass, when it produces a circuit.
    pub depth_after: Option<usize>,
}

/// The structured explain report for one compilation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explain {
    /// The paper configuration name actually used for the final circuit
    /// (`"IC"`, `"VIC"`, … — after any ladder steps).
    pub config: String,
    /// Logical qubits in the program.
    pub num_logical: usize,
    /// Physical qubits on the target.
    pub num_physical: usize,
    /// Initial logical→physical mapping (`initial_layout[q]` is the
    /// physical qubit logical `q` starts on).
    pub initial_layout: Vec<usize>,
    /// The mapping after all SWAP insertion.
    pub final_layout: Vec<usize>,
    /// Pass sequence in execution order.
    pub passes: Vec<ExplainPass>,
    /// Formed gate layers in execution order.
    pub layers: Vec<ExplainLayer>,
    /// Degradation-ladder narrative; empty when the run compiled on its
    /// requested configuration.
    pub fallbacks: Vec<FallbackRecord>,
    /// Total SWAPs inserted.
    pub swap_count: usize,
    /// Depth of the basis-lowered circuit (the paper's depth metric).
    pub basis_depth: usize,
    /// Gate count of the basis-lowered circuit.
    pub gate_count: usize,
    /// CNOT count of the basis-lowered circuit.
    pub cx_count: usize,
}

impl Explain {
    // One argument per report field; a builder would be ceremony for a
    // single crate-internal call site.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        config: String,
        num_logical: usize,
        num_physical: usize,
        initial_layout: Vec<usize>,
        final_layout: Vec<usize>,
        trace: &PassTrace,
        layers: Vec<ExplainLayer>,
        swap_count: usize,
        basis_depth: usize,
        gate_count: usize,
        cx_count: usize,
    ) -> Explain {
        Explain {
            config,
            num_logical,
            num_physical,
            initial_layout,
            final_layout,
            passes: trace
                .records()
                .iter()
                .map(|r| ExplainPass {
                    name: r.name,
                    swaps_added: r.swaps_added,
                    depth_after: r.depth_after,
                })
                .collect(),
            layers,
            fallbacks: trace.fallbacks().to_vec(),
            swap_count,
            basis_depth,
            gate_count,
            cx_count,
        }
    }

    /// Serializes the report as canonical JSON: fixed field order, one
    /// layer/pass per line, no wall-clock data. Byte-reproducible for a
    /// fixed seed; parseable by `qtrace::json::parse`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"explain_version\": {EXPLAIN_VERSION},\n"));
        out.push_str(&format!("  \"config\": \"{}\",\n", escape(&self.config)));
        out.push_str(&format!(
            "  \"qubits\": {{\"logical\": {}, \"physical\": {}}},\n",
            self.num_logical, self.num_physical
        ));
        out.push_str(&format!(
            "  \"initial_layout\": {},\n",
            usize_array(&self.initial_layout)
        ));
        out.push_str(&format!(
            "  \"final_layout\": {},\n",
            usize_array(&self.final_layout)
        ));
        list(&mut out, "passes", &self.passes, |p| {
            format!(
                "{{\"name\": \"{}\", \"swaps_added\": {}, \"depth_after\": {}}}",
                escape(p.name),
                p.swaps_added,
                opt_num(p.depth_after),
            )
        });
        list(&mut out, "layers", &self.layers, |l| {
            let gates: Vec<String> = l.gates.iter().map(|(a, b)| format!("[{a}, {b}]")).collect();
            format!(
                "{{\"level\": {}, \"gates\": [{}], \"swaps\": {}, \"routed_depth\": {}}}",
                opt_num(l.level),
                gates.join(", "),
                l.swaps,
                opt_num(l.routed_depth),
            )
        });
        list(&mut out, "fallbacks", &self.fallbacks, |f| {
            format!(
                "{{\"from\": \"{}\", \"to\": \"{}\", \"reason\": \"{}\"}}",
                escape(&f.from),
                escape(&f.to),
                f.reason.slug(),
            )
        });
        out.push_str(&format!(
            "  \"totals\": {{\"swaps\": {}, \"basis_depth\": {}, \"gates\": {}, \"cx\": {}}}\n",
            self.swap_count, self.basis_depth, self.gate_count, self.cx_count
        ));
        out.push_str("}\n");
        out
    }

    /// Renders the report as human-readable text (also available via
    /// `Display`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("compile explain: {}\n", self.config));
        out.push_str(&format!(
            "  qubits: {} logical on {} physical\n",
            self.num_logical, self.num_physical
        ));
        out.push_str("  initial layout:");
        for (q, p) in self.initial_layout.iter().enumerate() {
            out.push_str(&format!(" q{q}->{p}"));
        }
        out.push('\n');
        out.push_str("  final layout:  ");
        for (q, p) in self.final_layout.iter().enumerate() {
            out.push_str(&format!(" q{q}->{p}"));
        }
        out.push('\n');
        if self.fallbacks.is_empty() {
            out.push_str("  fallbacks: none\n");
        } else {
            out.push_str("  fallbacks:\n");
            for f in &self.fallbacks {
                out.push_str(&format!(
                    "    {} -> {} ({})\n",
                    f.from,
                    f.to,
                    f.reason.slug()
                ));
            }
        }
        out.push_str("  passes:\n");
        for p in &self.passes {
            out.push_str(&format!("    {}", p.name));
            if p.swaps_added > 0 {
                out.push_str(&format!("  +{} swaps", p.swaps_added));
            }
            if let Some(d) = p.depth_after {
                out.push_str(&format!("  depth {d}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("  layers: {} formed\n", self.layers.len()));
        for (i, l) in self.layers.iter().enumerate() {
            out.push_str(&format!("    #{i}"));
            if let Some(level) = l.level {
                out.push_str(&format!(" level {level}"));
            }
            out.push_str(&format!(
                ": {} gate{}, {} swap{}",
                l.gates.len(),
                if l.gates.len() == 1 { "" } else { "s" },
                l.swaps,
                if l.swaps == 1 { "" } else { "s" },
            ));
            if let Some(d) = l.routed_depth {
                out.push_str(&format!(", routed depth {d}"));
            }
            let pairs: Vec<String> = l.gates.iter().map(|(a, b)| format!("({a},{b})")).collect();
            out.push_str(&format!("  [{}]\n", pairs.join(" ")));
        }
        out.push_str(&format!(
            "  totals: {} swaps, basis depth {}, {} gates ({} cx)\n",
            self.swap_count, self.basis_depth, self.gate_count, self.cx_count
        ));
        out
    }

    /// Writes the JSON rendering to `path`.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Renders one `"key": [entries…]` array section followed by `,\n`.
fn list<T>(out: &mut String, key: &str, entries: &[T], render: impl Fn(&T) -> String) {
    if entries.is_empty() {
        out.push_str(&format!("  \"{key}\": [],\n"));
        return;
    }
    out.push_str(&format!("  \"{key}\": [\n"));
    for (i, entry) in entries.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&render(entry));
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
}

fn usize_array(values: &[usize]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn opt_num(v: Option<usize>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_owned(),
    }
}

/// Minimal JSON string escaping (mirrors qtrace's manifest writer).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FallbackReason;
    use qtrace::json::Json;

    fn sample() -> Explain {
        let mut trace = PassTrace::new();
        trace.push("qaim", std::time::Duration::from_millis(1), 0, None);
        trace.push(
            "incremental-hops",
            std::time::Duration::from_millis(2),
            3,
            Some(17),
        );
        trace.push_fallback("VIC", "IC", FallbackReason::MissingCalibration);
        Explain::from_parts(
            "IC".into(),
            3,
            5,
            vec![4, 0, 2],
            vec![0, 4, 2],
            &trace,
            vec![
                ExplainLayer {
                    level: Some(0),
                    gates: vec![(0, 1), (1, 2)],
                    swaps: 2,
                    routed_depth: Some(4),
                },
                ExplainLayer {
                    level: None,
                    gates: vec![(0, 2)],
                    swaps: 0,
                    routed_depth: None,
                },
            ],
            2,
            17,
            40,
            12,
        )
    }

    #[test]
    fn json_is_valid_and_complete() {
        let e = sample();
        let doc = Json::parse(&e.to_json()).expect("explain JSON parses");
        assert_eq!(
            doc.get("explain_version").and_then(Json::as_u64),
            Some(EXPLAIN_VERSION)
        );
        assert_eq!(doc.get("config").and_then(Json::as_str), Some("IC"));
        let layers = doc.get("layers").and_then(Json::as_arr).unwrap();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].get("swaps").and_then(Json::as_u64), Some(2));
        assert_eq!(layers[1].get("level"), Some(&Json::Null));
        let fallbacks = doc.get("fallbacks").and_then(Json::as_arr).unwrap();
        assert_eq!(
            fallbacks[0].get("reason").and_then(Json::as_str),
            Some("missing-calibration")
        );
        let totals = doc.get("totals").unwrap();
        assert_eq!(totals.get("swaps").and_then(Json::as_u64), Some(2));
        assert_eq!(totals.get("cx").and_then(Json::as_u64), Some(12));
    }

    #[test]
    fn json_excludes_wall_clock_fields() {
        // Reproducibility depends on no timing data leaking in.
        let json = sample().to_json();
        for needle in ["_ns", "_ms", "elapsed", "time"] {
            assert!(!json.contains(needle), "found '{needle}' in explain JSON");
        }
    }

    #[test]
    fn text_narrates_the_run() {
        let text = sample().render_text();
        assert!(text.contains("compile explain: IC"));
        assert!(text.contains("VIC -> IC (missing-calibration)"));
        assert!(text.contains("#0 level 0: 2 gates, 2 swaps, routed depth 4"));
        assert!(text.contains("[(0,1) (1,2)]"));
        assert!(text.contains("totals: 2 swaps, basis depth 17, 40 gates (12 cx)"));
        assert_eq!(text, sample().to_string());
    }
}
