//! Initial logical→physical mapping strategies: QAIM (§IV-A), the GreedyV
//! baseline (Murali et al., ASPLOS'19) and the NAIVE random mapping.

use qgraph::shortest_path::DistanceMatrix;
use qhw::{HardwareContext, HardwareProfile, Topology};
use qroute::Layout;
use rand::Rng;

use crate::error::CompileError;
use crate::QaoaSpec;

/// Checks the program fits the topology.
pub(crate) fn check_fits(spec: &QaoaSpec, topology: &Topology) -> Result<(), CompileError> {
    let logical = spec.num_qubits();
    let physical = topology.num_qubits();
    if logical > physical {
        Err(CompileError::ProgramTooLarge { logical, physical })
    } else {
        Ok(())
    }
}

/// Ablation variants of the QAIM decision metric (§IV-A).
///
/// QAIM's candidate score is `connectivity_strength / cumulative_distance`.
/// The variants drop one ingredient each, quantifying its contribution
/// (see the `ablation_qaim` experiment binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QaimVariant {
    /// The full metric as published.
    #[default]
    Full,
    /// Replace connectivity strength with plain degree (no second
    /// neighbors) — tests the "expected activities in the neighboring
    /// qubits" rationale.
    DegreeStrength,
    /// Ignore distances to placed neighbors (pure strength ranking).
    NoDistance,
    /// Ignore strength (pure closest-to-placed-neighbors placement).
    NoStrength,
}

/// QAIM: integrated qubit allocation and initial mapping (§IV-A).
///
/// Combines hardware profiling (connectivity strength = first + second
/// neighbors) with program profiling (CPHASE count per logical qubit):
///
/// 1. Logical qubits are sorted by descending CPHASE count.
/// 2. The first is assigned to the physical qubit with the highest
///    connectivity strength.
/// 3. Each next logical qubit: if none of its logical neighbors is placed,
///    it takes the strongest unallocated physical qubit; otherwise it takes
///    the unallocated physical neighbor of its placed neighbors maximizing
///    `connectivity_strength / cumulative_distance_to_placed_neighbors`.
///
/// All ties break toward the lowest physical index (the paper breaks them
/// randomly; a fixed rule keeps experiments reproducible).
///
/// # Panics
///
/// Panics if the program needs more qubits than the topology has, or if the
/// coupling graph is disconnected across the required qubits.
pub fn qaim(spec: &QaoaSpec, topology: &Topology) -> Layout {
    qaim_variant(spec, topology, QaimVariant::Full)
}

/// QAIM with an ablated decision metric — see [`QaimVariant`].
///
/// Recomputes the hardware profile and distance matrix on every call;
/// prefer [`try_qaim_with_context`] when a [`HardwareContext`] is
/// available.
///
/// # Panics
///
/// Same as [`qaim`].
pub fn qaim_variant(spec: &QaoaSpec, topology: &Topology, variant: QaimVariant) -> Layout {
    let profile = match variant {
        QaimVariant::DegreeStrength => topology.profile_with_depth(1),
        _ => topology.profile(),
    };
    let distances = topology.distances();
    match qaim_core(spec, topology, &profile, &distances, variant) {
        Ok(layout) => layout,
        Err(e) => panic!("{e}"),
    }
}

/// QAIM fed from `context`'s cached connectivity profile and distance
/// matrix — no Floyd–Warshall or profiling recomputation (except for
/// [`QaimVariant::DegreeStrength`], whose depth-1 profile is not cached).
pub fn try_qaim_with_context(
    spec: &QaoaSpec,
    context: &HardwareContext,
    variant: QaimVariant,
) -> Result<Layout, CompileError> {
    let shallow;
    let profile = match variant {
        QaimVariant::DegreeStrength => {
            shallow = context.topology().profile_with_depth(1);
            &shallow
        }
        _ => context.profile(),
    };
    qaim_core(
        spec,
        context.topology(),
        profile,
        context.distances(),
        variant,
    )
}

/// The QAIM placement loop over explicit hardware facts.
fn qaim_core(
    spec: &QaoaSpec,
    topology: &Topology,
    profile: &HardwareProfile,
    distances: &DistanceMatrix,
    variant: QaimVariant,
) -> Result<Layout, CompileError> {
    check_fits(spec, topology)?;
    let n_logical = spec.num_qubits();
    let n_physical = topology.num_qubits();
    let program = spec.profile();

    // Flat deduplicated interaction adjacency (CSR), replacing the
    // BTree-backed `spec.interaction_graph()` build on every compile.
    // Neighbors appear in program order rather than sorted — placement
    // decisions cannot observe the difference: the candidate list derived
    // from them is sorted and deduplicated before use, and the
    // cumulative-distance score is a commutative integer sum.
    let mut scatter = vec![0usize; n_logical + 1];
    for (ops, _) in spec.levels() {
        for op in ops {
            scatter[op.a + 1] += 1;
            scatter[op.b + 1] += 1;
        }
    }
    for i in 0..n_logical {
        scatter[i + 1] += scatter[i];
    }
    let mut raw = vec![0usize; scatter[n_logical]];
    {
        let mut cursor = scatter.clone();
        for (ops, _) in spec.levels() {
            for op in ops {
                raw[cursor[op.a]] = op.b;
                cursor[op.a] += 1;
                raw[cursor[op.b]] = op.a;
                cursor[op.b] += 1;
            }
        }
    }
    // Per-bucket dedup via version stamps (multi-level specs repeat ops;
    // a duplicate neighbor would double-count its distance).
    let mut stamp = vec![usize::MAX; n_logical];
    let mut adj = Vec::with_capacity(raw.len());
    let mut adj_offsets = vec![0usize; n_logical + 1];
    for a in 0..n_logical {
        for &b in &raw[scatter[a]..scatter[a + 1]] {
            if stamp[b] != a {
                stamp[b] = a;
                adj.push(b);
            }
        }
        adj_offsets[a + 1] = adj.len();
    }
    let neighbors_of = |l: usize| &adj[adj_offsets[l]..adj_offsets[l + 1]];

    let mut assignment = vec![usize::MAX; n_logical];
    let mut allocated = vec![false; n_physical];

    let strongest_free = |allocated: &[bool]| -> usize {
        (0..n_physical)
            .filter(|&p| !allocated[p])
            .max_by(|&x, &y| {
                profile
                    .connectivity_strength(x)
                    .cmp(&profile.connectivity_strength(y))
                    .then(y.cmp(&x)) // lowest index wins ties
            })
            .expect("at least one free physical qubit")
    };

    // Hoisted per-placement buffers: the loop below runs once per logical
    // qubit and previously allocated both vectors afresh each round.
    let mut placed_neighbors: Vec<usize> = Vec::new();
    let mut candidates: Vec<usize> = Vec::new();
    for logical in program.ranked_qubits() {
        placed_neighbors.clear();
        placed_neighbors.extend(
            neighbors_of(logical)
                .iter()
                .filter(|&&m| assignment[m] != usize::MAX)
                .map(|&m| assignment[m]),
        );
        let choice = if placed_neighbors.is_empty() {
            strongest_free(&allocated)
        } else {
            // Candidates: unallocated physical neighbors of the placed
            // neighbors' homes; fall back to all unallocated qubits when
            // the neighborhood is saturated.
            candidates.clear();
            candidates.extend(
                placed_neighbors
                    .iter()
                    .flat_map(|&p| topology.neighbors(p).iter().copied())
                    .filter(|&p| !allocated[p]),
            );
            candidates.sort_unstable();
            candidates.dedup();
            if candidates.is_empty() {
                candidates.extend((0..n_physical).filter(|&p| !allocated[p]));
            }
            best_by_cost(&candidates, &placed_neighbors, profile, distances, variant)?
        };
        assignment[logical] = choice;
        allocated[choice] = true;
    }
    Ok(Layout::from_mapping(assignment, n_physical))
}

/// Picks the candidate maximizing `strength / cumulative distance`,
/// breaking ties toward the lowest index.
fn best_by_cost(
    candidates: &[usize],
    placed: &[usize],
    profile: &HardwareProfile,
    distances: &DistanceMatrix,
    variant: QaimVariant,
) -> Result<usize, CompileError> {
    let flat = distances.flat();
    let n = distances.node_count();
    let mut best: Option<(f64, usize)> = None;
    for &p in candidates {
        let mut cum = 0usize;
        for &q in placed {
            let d = flat[p * n + q];
            if d == usize::MAX {
                return Err(CompileError::Disconnected { a: p, b: q });
            }
            cum += d;
        }
        let strength = profile.connectivity_strength(p) as f64;
        let cost = match variant {
            QaimVariant::NoDistance => strength,
            QaimVariant::NoStrength => 1.0 / cum.max(1) as f64,
            _ => strength / cum.max(1) as f64,
        };
        let better = match best {
            None => true,
            Some((best_cost, best_p)) => match cost.total_cmp(&best_cost) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => p < best_p,
                std::cmp::Ordering::Less => false,
            },
        };
        if better {
            best = Some((cost, p));
        }
    }
    Ok(best.expect("candidate list is non-empty").1)
}

/// The GreedyV baseline (\[59\], Murali et al.): program qubits in
/// heaviest-first order are placed on physical qubits in descending-degree
/// order, with no distance term.
///
/// # Panics
///
/// Panics if the program needs more qubits than the topology has.
pub fn greedy_v(spec: &QaoaSpec, topology: &Topology) -> Layout {
    let n_logical = spec.num_qubits();
    let n_physical = topology.num_qubits();
    assert!(
        n_logical <= n_physical,
        "{n_logical} logical qubits cannot fit on {n_physical} physical qubits"
    );
    let mut physical: Vec<usize> = (0..n_physical).collect();
    physical.sort_by(|&x, &y| {
        topology
            .graph()
            .degree(y)
            .cmp(&topology.graph().degree(x))
            .then(x.cmp(&y))
    });
    let mut assignment = vec![usize::MAX; n_logical];
    for (slot, logical) in spec.profile().ranked_qubits().into_iter().enumerate() {
        assignment[logical] = physical[slot];
    }
    Layout::from_mapping(assignment, n_physical)
}

/// The dense-layout baseline of §III "Qubit Allocation": select the
/// `k`-node subgraph of the hardware coupling graph with the most internal
/// edges (greedy peeling approximation), then place logical qubits on it
/// heaviest-first by physical degree within the subgraph. This is the
/// topology-selection strategy the paper attributes to qiskit's optimizer.
///
/// # Panics
///
/// Panics if the program needs more qubits than the topology has.
pub fn dense_layout(spec: &QaoaSpec, topology: &Topology) -> Layout {
    let n_logical = spec.num_qubits();
    let n_physical = topology.num_qubits();
    assert!(
        n_logical <= n_physical,
        "{n_logical} logical qubits cannot fit on {n_physical} physical qubits"
    );
    // Greedy peeling: repeatedly remove the lowest-degree node until only
    // k remain — a classic 2-approximation for the densest-k-subgraph
    // flavor qiskit's DenseLayout approximates.
    let g = topology.graph();
    let mut alive: Vec<bool> = vec![true; n_physical];
    let mut degree: Vec<usize> = (0..n_physical).map(|p| g.degree(p)).collect();
    let mut remaining = n_physical;
    while remaining > n_logical {
        let victim = (0..n_physical)
            .filter(|&p| alive[p])
            .min_by_key(|&p| (degree[p], p))
            .expect("some node is alive");
        alive[victim] = false;
        remaining -= 1;
        for w in g.neighbors(victim) {
            if alive[w] {
                degree[w] -= 1;
            }
        }
    }
    let mut chosen: Vec<usize> = (0..n_physical).filter(|&p| alive[p]).collect();
    // Heaviest physical (by in-subgraph degree) first, paired with the
    // heaviest logical qubits.
    chosen.sort_by(|&x, &y| degree[y].cmp(&degree[x]).then(x.cmp(&y)));
    let mut assignment = vec![usize::MAX; n_logical];
    for (slot, logical) in spec.profile().ranked_qubits().into_iter().enumerate() {
        assignment[logical] = chosen[slot];
    }
    Layout::from_mapping(assignment, n_physical)
}

/// The NAIVE baseline: a uniformly random logical→physical mapping.
pub fn naive<R: Rng + ?Sized>(spec: &QaoaSpec, topology: &Topology, rng: &mut R) -> Layout {
    Layout::random(spec.num_qubits(), topology.num_qubits(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CphaseOp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The toy QAOA cost Hamiltonian of Figure 3(c)/Example 1 and Example
    /// 3: CPHASEs {(0,1), (0,2), (0,3), (0,4), (1,2), (1,4), (3,4)}.
    fn fig3_spec() -> QaoaSpec {
        let ops = [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 4), (3, 4)]
            .into_iter()
            .map(|(a, b)| CphaseOp::new(a, b, 0.4))
            .collect();
        QaoaSpec::new(5, vec![(ops, 0.3)], false)
    }

    #[test]
    fn fig3_example1_placements() {
        // Paper Example 1 on ibmq_20_tokyo: q0→7, q1→12, q4→8, q2→13.
        // (The paper places q3 on physical 2; with our reconstruction of
        // the Tokyo lattice — the exact Figure 3(b) strength table is not
        // recoverable from the text — the cost metric selects physical 6,
        // which ties the paper's choice on distance and exceeds it on
        // connectivity strength. All prose-stated anchors hold.)
        let layout = qaim(&fig3_spec(), &Topology::ibmq_20_tokyo());
        assert_eq!(layout.phys(0), 7);
        assert_eq!(layout.phys(1), 12);
        assert_eq!(layout.phys(4), 8);
        assert_eq!(layout.phys(2), 13);
        // q3 must land adjacent to q0's home (its only requirement that
        // distinguishes quality here) with maximal cost metric.
        let q3 = layout.phys(3);
        let topo = Topology::ibmq_20_tokyo();
        assert!(
            topo.are_coupled(q3, 7) || topo.are_coupled(q3, 8),
            "q3 at {q3} should neighbor q0@7 or q4@8"
        );
    }

    #[test]
    fn qaim_places_first_logical_on_strongest_qubit() {
        // On tokyo the strongest physical qubit is 7.
        let layout = qaim(&fig3_spec(), &Topology::ibmq_20_tokyo());
        assert_eq!(layout.phys(0), 7);
        // On a 6x6 grid the strongest are the four central qubits; the
        // lowest-index one is 14 (row 2, col 2).
        let grid = Topology::grid(6, 6);
        let layout = qaim(&fig3_spec(), &grid);
        let strongest = grid.profile().strongest();
        assert_eq!(layout.phys(0), strongest);
    }

    #[test]
    fn qaim_keeps_interacting_qubits_close() {
        // Compare mean distance between logically-adjacent qubits under
        // QAIM vs the mean over random mappings: QAIM must be much closer.
        let spec = fig3_spec();
        let topo = Topology::ibmq_20_tokyo();
        let d = topo.distances();
        let interaction = spec.interaction_graph();
        let mean_dist = |l: &Layout| -> f64 {
            let total: usize = interaction
                .edges()
                .map(|e| d.get(l.phys(e.a()), l.phys(e.b())).unwrap())
                .sum();
            total as f64 / interaction.edge_count() as f64
        };
        let qaim_mean = mean_dist(&qaim(&spec, &topo));
        let mut rng = StdRng::seed_from_u64(3);
        let random_mean: f64 = (0..50)
            .map(|_| mean_dist(&naive(&spec, &topo, &mut rng)))
            .sum::<f64>()
            / 50.0;
        assert!(
            qaim_mean < random_mean,
            "QAIM mean distance {qaim_mean} should beat random {random_mean}"
        );
        assert!(
            qaim_mean <= 1.2,
            "QAIM should make almost all pairs adjacent: {qaim_mean}"
        );
    }

    #[test]
    fn greedy_v_pairs_heavy_with_high_degree() {
        let spec = fig3_spec();
        let topo = Topology::ibmq_20_tokyo();
        let layout = greedy_v(&spec, &topo);
        // Heaviest logical qubit (q0, 4 ops) gets the highest-degree
        // physical qubit (degree 6; lowest index 6 on our tokyo).
        let deg = |p: usize| topo.graph().degree(p);
        assert_eq!(deg(layout.phys(0)), 6);
        // All assignments distinct.
        let mut seen = std::collections::HashSet::new();
        for (_, p) in layout.iter() {
            assert!(seen.insert(p));
        }
    }

    #[test]
    fn naive_is_seeded() {
        let spec = fig3_spec();
        let topo = Topology::ibmq_20_tokyo();
        let a = naive(&spec, &topo, &mut StdRng::seed_from_u64(5));
        let b = naive(&spec, &topo, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn qaim_handles_program_larger_than_neighborhood() {
        // A dense 12-qubit program on melbourne (15 qubits): the candidate
        // neighborhoods saturate, exercising the fallback path.
        let mut rng = StdRng::seed_from_u64(9);
        let g = qgraph::generators::connected_erdos_renyi(12, 0.6, 100, &mut rng).unwrap();
        let problem = qaoa::MaxCut::new(g);
        let spec = QaoaSpec::from_maxcut(&problem, &qaoa::QaoaParams::p1(0.3, 0.2), false);
        let layout = qaim(&spec, &Topology::ibmq_16_melbourne());
        let mut seen = std::collections::HashSet::new();
        for (_, p) in layout.iter() {
            assert!(p < 15);
            assert!(seen.insert(p));
        }
    }

    #[test]
    #[should_panic]
    fn oversized_program_panics() {
        let ops = vec![CphaseOp::new(0, 1, 0.1)];
        let spec = QaoaSpec::new(5, vec![(ops, 0.0)], false);
        let _ = qaim(&spec, &Topology::linear(3));
    }

    #[test]
    fn qaim_on_exact_fit() {
        // Program size == device size still works.
        let ops = vec![
            CphaseOp::new(0, 1, 0.1),
            CphaseOp::new(1, 2, 0.1),
            CphaseOp::new(2, 3, 0.1),
        ];
        let spec = QaoaSpec::new(4, vec![(ops, 0.0)], false);
        let layout = qaim(&spec, &Topology::linear(4));
        let mut homes: Vec<usize> = (0..4).map(|l| layout.phys(l)).collect();
        homes.sort_unstable();
        assert_eq!(homes, vec![0, 1, 2, 3]);
    }
}

#[cfg(test)]
mod dense_tests {
    use super::*;
    use crate::CphaseOp;

    fn spec(n: usize) -> QaoaSpec {
        let ops = (0..n - 1).map(|i| CphaseOp::new(i, i + 1, 0.3)).collect();
        QaoaSpec::new(n, vec![(ops, 0.2)], false)
    }

    #[test]
    fn dense_layout_avoids_weak_corners() {
        // On tokyo the degree-2 corners (0, 15) should be peeled away for
        // small programs.
        let topo = Topology::ibmq_20_tokyo();
        let layout = dense_layout(&spec(8), &topo);
        for (_, p) in layout.iter() {
            assert!(p != 0 && p != 15, "corner qubit {p} should be avoided");
        }
    }

    #[test]
    fn dense_layout_is_injective() {
        let topo = Topology::ibmq_16_melbourne();
        let layout = dense_layout(&spec(12), &topo);
        let mut seen = std::collections::HashSet::new();
        for (_, p) in layout.iter() {
            assert!(seen.insert(p));
        }
    }

    #[test]
    fn dense_subgraph_beats_random_on_internal_edges() {
        let topo = Topology::ibmq_20_tokyo();
        let layout = dense_layout(&spec(10), &topo);
        let chosen: std::collections::HashSet<usize> = layout.iter().map(|(_, p)| p).collect();
        let internal = topo
            .graph()
            .edges()
            .filter(|e| chosen.contains(&e.a()) && chosen.contains(&e.b()))
            .count();
        // A 10-node subgraph of tokyo can reach ~18 internal edges; greedy
        // peeling should find a clearly dense one.
        assert!(internal >= 14, "only {internal} internal edges");
    }

    #[test]
    fn exact_fit_uses_all_qubits() {
        let topo = Topology::linear(5);
        let layout = dense_layout(&spec(5), &topo);
        let mut homes: Vec<usize> = layout.iter().map(|(_, p)| p).collect();
        homes.sort_unstable();
        assert_eq!(homes, vec![0, 1, 2, 3, 4]);
    }
}
