//! Per-pass instrumentation of a compilation run.
//!
//! Since the `qtrace` integration, the pipeline measures every pass with
//! a [`qtrace`] span (path `qcompile/compile/<pass>`); [`PassTrace`] is
//! the **per-run view** over those same measurements — the span guard
//! returns its elapsed time, which the pipeline folds in here together
//! with the swap/depth deltas — while the global `qtrace` recorder
//! aggregates across runs into the machine-readable run manifest.

use std::fmt;
use std::time::Duration;

/// Why the degradation ladder stepped down one rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The requested mode needs calibration and none was supplied.
    MissingCalibration,
    /// Calibration was supplied but failed validation.
    UnusableCalibration,
    /// A pass exceeded its time budget.
    PassBudget,
    /// The run exceeded its swap budget.
    SwapBudget,
    /// The rung's compilation failed with a recoverable error.
    CompileFailed,
    /// The rung produced a circuit that failed post-routing
    /// verification.
    VerificationFailed,
}

impl FallbackReason {
    /// A stable kebab-case slug, used as the qtrace counter suffix
    /// (`qcompile/fallbacks/<slug>`).
    pub fn slug(self) -> &'static str {
        match self {
            FallbackReason::MissingCalibration => "missing-calibration",
            FallbackReason::UnusableCalibration => "unusable-calibration",
            FallbackReason::PassBudget => "pass-budget",
            FallbackReason::SwapBudget => "swap-budget",
            FallbackReason::CompileFailed => "compile-failed",
            FallbackReason::VerificationFailed => "verification-failed",
        }
    }
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// One degradation-ladder step taken during a run (e.g. VIC → IC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackRecord {
    /// Configuration name the run stepped down from (`"VIC"`, `"IC"`, …).
    pub from: String,
    /// Configuration name it stepped down to.
    pub to: String,
    /// Why the step was taken.
    pub reason: FallbackReason,
}

/// One pass's contribution to a compilation run.
#[derive(Debug, Clone)]
pub struct PassRecord {
    /// The pass name (`"qaim"`, `"random-order"`, `"route"`, …).
    pub name: &'static str,
    /// Wall-clock time the pass took.
    pub elapsed: Duration,
    /// SWAPs the pass inserted (0 for non-routing passes).
    pub swaps_added: usize,
    /// Circuit depth after the pass, when the pass produces a circuit.
    pub depth_after: Option<usize>,
}

/// The ordered list of [`PassRecord`]s a compilation run produced.
///
/// Replaces the old single `elapsed` field on
/// [`crate::CompiledCircuit`]: the total wall-clock time is still
/// available ([`PassTrace::total_elapsed`]), but per-pass timing and
/// swap/depth deltas are now attributable to the pass that caused them.
#[derive(Debug, Clone, Default)]
pub struct PassTrace {
    records: Vec<PassRecord>,
    fallbacks: Vec<FallbackRecord>,
}

impl PassTrace {
    /// An empty trace.
    pub fn new() -> Self {
        PassTrace::default()
    }

    /// Appends a record for pass `name`.
    pub fn push(
        &mut self,
        name: &'static str,
        elapsed: Duration,
        swaps_added: usize,
        depth_after: Option<usize>,
    ) {
        self.records.push(PassRecord {
            name,
            elapsed,
            swaps_added,
            depth_after,
        });
    }

    /// The recorded passes, in execution order.
    pub fn records(&self) -> &[PassRecord] {
        &self.records
    }

    /// Total wall-clock time across all passes.
    pub fn total_elapsed(&self) -> Duration {
        self.records.iter().map(|r| r.elapsed).sum()
    }

    /// Total SWAPs inserted across all passes.
    pub fn swaps_added(&self) -> usize {
        self.records.iter().map(|r| r.swaps_added).sum()
    }

    /// The first record named `name`, if any.
    pub fn find(&self, name: &str) -> Option<&PassRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Records one degradation-ladder step.
    pub fn push_fallback(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        reason: FallbackReason,
    ) {
        self.fallbacks.push(FallbackRecord {
            from: from.into(),
            to: to.into(),
            reason,
        });
    }

    /// Prepends `steps` to this trace's fallback history — used when the
    /// ladder's final rung produces the trace but earlier rungs already
    /// recorded their steps.
    pub fn adopt_fallbacks(&mut self, mut steps: Vec<FallbackRecord>) {
        steps.append(&mut self.fallbacks);
        self.fallbacks = steps;
    }

    /// The degradation-ladder steps this run took, in order; empty for a
    /// run that compiled on its requested configuration.
    pub fn fallbacks(&self) -> &[FallbackRecord] {
        &self.fallbacks
    }

    /// Whether the run fell back at least once.
    pub fn degraded(&self) -> bool {
        !self.fallbacks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_records() {
        let mut t = PassTrace::new();
        t.push("a", Duration::from_millis(2), 0, None);
        t.push("b", Duration::from_millis(3), 5, Some(40));
        assert_eq!(t.total_elapsed(), Duration::from_millis(5));
        assert_eq!(t.swaps_added(), 5);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.find("b").unwrap().depth_after, Some(40));
        assert!(t.find("c").is_none());
    }

    #[test]
    fn fallback_history_is_ordered_and_adoptable() {
        let mut t = PassTrace::new();
        assert!(!t.degraded());
        t.push_fallback("IC", "NAIVE", FallbackReason::SwapBudget);
        let earlier = vec![FallbackRecord {
            from: "VIC".into(),
            to: "IC".into(),
            reason: FallbackReason::UnusableCalibration,
        }];
        t.adopt_fallbacks(earlier);
        assert!(t.degraded());
        let steps: Vec<(&str, &str)> = t
            .fallbacks()
            .iter()
            .map(|f| (f.from.as_str(), f.to.as_str()))
            .collect();
        assert_eq!(steps, [("VIC", "IC"), ("IC", "NAIVE")]);
        assert_eq!(t.fallbacks()[0].reason.slug(), "unusable-calibration");
        assert_eq!(FallbackReason::PassBudget.to_string(), "pass-budget");
    }
}
