//! Per-pass instrumentation of a compilation run.
//!
//! Since the `qtrace` integration, the pipeline measures every pass with
//! a [`qtrace`] span (path `qcompile/compile/<pass>`); [`PassTrace`] is
//! the **per-run view** over those same measurements — the span guard
//! returns its elapsed time, which the pipeline folds in here together
//! with the swap/depth deltas — while the global `qtrace` recorder
//! aggregates across runs into the machine-readable run manifest.

use std::time::Duration;

/// One pass's contribution to a compilation run.
#[derive(Debug, Clone)]
pub struct PassRecord {
    /// The pass name (`"qaim"`, `"random-order"`, `"route"`, …).
    pub name: &'static str,
    /// Wall-clock time the pass took.
    pub elapsed: Duration,
    /// SWAPs the pass inserted (0 for non-routing passes).
    pub swaps_added: usize,
    /// Circuit depth after the pass, when the pass produces a circuit.
    pub depth_after: Option<usize>,
}

/// The ordered list of [`PassRecord`]s a compilation run produced.
///
/// Replaces the old single `elapsed` field on
/// [`crate::CompiledCircuit`]: the total wall-clock time is still
/// available ([`PassTrace::total_elapsed`]), but per-pass timing and
/// swap/depth deltas are now attributable to the pass that caused them.
#[derive(Debug, Clone, Default)]
pub struct PassTrace {
    records: Vec<PassRecord>,
}

impl PassTrace {
    /// An empty trace.
    pub fn new() -> Self {
        PassTrace::default()
    }

    /// Appends a record for pass `name`.
    pub fn push(
        &mut self,
        name: &'static str,
        elapsed: Duration,
        swaps_added: usize,
        depth_after: Option<usize>,
    ) {
        self.records.push(PassRecord {
            name,
            elapsed,
            swaps_added,
            depth_after,
        });
    }

    /// The recorded passes, in execution order.
    pub fn records(&self) -> &[PassRecord] {
        &self.records
    }

    /// Total wall-clock time across all passes.
    pub fn total_elapsed(&self) -> Duration {
        self.records.iter().map(|r| r.elapsed).sum()
    }

    /// Total SWAPs inserted across all passes.
    pub fn swaps_added(&self) -> usize {
        self.records.iter().map(|r| r.swaps_added).sum()
    }

    /// The first record named `name`, if any.
    pub fn find(&self, name: &str) -> Option<&PassRecord> {
        self.records.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_records() {
        let mut t = PassTrace::new();
        t.push("a", Duration::from_millis(2), 0, None);
        t.push("b", Duration::from_millis(3), 5, Some(40));
        assert_eq!(t.total_elapsed(), Duration::from_millis(5));
        assert_eq!(t.swaps_added(), 5);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.find("b").unwrap().depth_after, Some(40));
        assert!(t.find("c").is_none());
    }
}
