//! Frozen pre-optimization reference engines.
//!
//! This module is a verbatim copy (telemetry stripped) of the compile hot
//! path as it stood **before** the allocation-disciplined engine rewrite:
//! the per-layer-allocating router, the clone-per-restart incremental
//! compiler and the `Vec<Vec<bool>>` bin-packer. It exists for exactly two
//! consumers and must never gain callers beyond them:
//!
//! 1. the `compile_equivalence` property suite, which pins the live
//!    engines **bit-for-bit identical** to these references across seeds,
//!    topologies and metrics (the optimization is pure mechanism — same
//!    decisions, same instruction streams, fewer allocations);
//! 2. the `compile_throughput` benchmark, which measures the live/reference
//!    ratio and asserts the engine-level speedup floor in-process.
//!
//! Do not "fix" or modernize this code: its value is that it does not
//! move. If the live engine's observable behavior must change, the change
//! lands here too, in the same commit, with the equivalence suite
//! re-derived.

#![allow(missing_docs)]

use qcircuit::layers::asap_layers;
use qcircuit::{Circuit, Instruction};
use qhw::Topology;
use qroute::{Layout, RouteError, RouteLayerStat, RouteResult, RoutingMetric};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::CompileError;
use crate::ic::{IncrementalResult, LayerRecord};
use crate::{CphaseOp, ProgramProfile, QaoaSpec};

/// The pre-rewrite [`qroute::try_route`], minus telemetry.
pub fn try_route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
) -> Result<RouteResult, RouteError> {
    if circuit.num_qubits() > topology.num_qubits() {
        return Err(RouteError::CircuitTooLarge {
            needed: circuit.num_qubits(),
            available: topology.num_qubits(),
            topology: topology.name().to_owned(),
        });
    }
    if initial_layout.num_logical() < circuit.num_qubits() {
        return Err(RouteError::LayoutTooSmall {
            covers: initial_layout.num_logical(),
            needed: circuit.num_qubits(),
        });
    }
    if initial_layout.num_physical() != topology.num_qubits() {
        return Err(RouteError::LayoutMismatch {
            layout_physical: initial_layout.num_physical(),
            topology_physical: topology.num_qubits(),
        });
    }

    let mut layout = initial_layout;
    let mut out = Circuit::new(topology.num_qubits());
    out.set_param_table(circuit.param_table().clone());
    let mut swap_count = 0usize;
    let mut layer_stats: Vec<RouteLayerStat> = Vec::new();

    for layer in asap_layers(circuit) {
        let mut two_qubit: Vec<&Instruction> = Vec::new();
        for instr in &layer {
            if instr.gate().arity() == 1 {
                emit(&mut out, instr.remap(|l| layout.phys(l)));
            } else {
                two_qubit.push(instr);
            }
        }
        let layer_swaps = route_layer(&two_qubit, topology, metric, &mut layout, &mut out)?;
        if !two_qubit.is_empty() {
            layer_stats.push(RouteLayerStat {
                gates: two_qubit.iter().map(|i| (i.q0(), i.q1())).collect(),
                swaps: layer_swaps,
            });
        }
        swap_count += layer_swaps;
    }

    Ok(RouteResult {
        circuit: out,
        final_layout: layout,
        swap_count,
        layer_stats,
    })
}

/// The pre-rewrite `route_layer`: allocates `unsat`, `gates_on` and `seen`
/// afresh on every descent iteration.
fn route_layer(
    layer: &[&Instruction],
    topology: &Topology,
    metric: &RoutingMetric,
    layout: &mut Layout,
    out: &mut Circuit,
) -> Result<usize, RouteError> {
    let mut swap_count = 0usize;
    if layer.is_empty() {
        return Ok(0);
    }
    let n = topology.num_qubits();
    let mut stalls_left = 4;
    let _ = n;
    loop {
        let unsat: Vec<(usize, usize)> = layer
            .iter()
            .map(|i| (layout.phys(i.q0()), layout.phys(i.q1())))
            .filter(|&(pa, pb)| !topology.are_coupled(pa, pb))
            .collect();
        if unsat.is_empty() {
            for gate in layer {
                let pa = layout.phys(gate.q0());
                let pb = layout.phys(gate.q1());
                emit(out, Instruction::two(gate.gate(), pa, pb));
            }
            return Ok(swap_count);
        }
        let mut gates_on: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (gi, i) in layer.iter().enumerate() {
            gates_on[layout.phys(i.q0())].push(gi);
            gates_on[layout.phys(i.q1())].push(gi);
        }
        let mut best: Option<(i64, f64, usize, usize)> = None;
        let mut seen = vec![false; n];
        for &(pa, pb) in &unsat {
            for endpoint in [pa, pb] {
                if seen[endpoint] {
                    continue;
                }
                seen[endpoint] = true;
                for w in topology.graph().neighbors(endpoint) {
                    let reloc = |p: usize| -> usize {
                        if p == endpoint {
                            w
                        } else if p == w {
                            endpoint
                        } else {
                            p
                        }
                    };
                    let mut delta_hops: i64 = 0;
                    let mut delta_weighted = 0.0;
                    let mut counted = [usize::MAX; 8];
                    let mut ncounted = 0;
                    for &gi in gates_on[endpoint].iter().chain(&gates_on[w]) {
                        if counted[..ncounted].contains(&gi) {
                            continue;
                        }
                        if ncounted < counted.len() {
                            counted[ncounted] = gi;
                            ncounted += 1;
                        }
                        let i = layer[gi];
                        let (a0, b0) = (layout.phys(i.q0()), layout.phys(i.q1()));
                        let (a1, b1) = (reloc(a0), reloc(b0));
                        delta_hops +=
                            metric.hop_dist(a1, b1) as i64 - metric.hop_dist(a0, b0) as i64;
                        delta_weighted += metric.dist(a1, b1) - metric.dist(a0, b0);
                    }
                    let candidate = (delta_hops, delta_weighted, endpoint, w);
                    let better = match best {
                        Some((dh, dw, be, bw)) => {
                            delta_hops < dh
                                || (delta_hops == dh
                                    && (delta_weighted < dw - 1e-12
                                        || ((delta_weighted - dw).abs() <= 1e-12
                                            && (endpoint, w) < (be, bw))))
                        }
                        None => true,
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
        }
        match best {
            Some((delta_hops, _, e, w)) if delta_hops < 0 => {
                emit(out, Instruction::two(qcircuit::Gate::Swap, e, w));
                layout.swap_physical(e, w);
                swap_count += 1;
            }
            _ if stalls_left > 0 => {
                stalls_left -= 1;
                let &(pa, pb) = unsat
                    .iter()
                    .max_by(|x, y| metric.dist(x.0, x.1).total_cmp(&metric.dist(y.0, y.1)))
                    .expect("unsat is non-empty");
                let path = cheapest_path(topology, metric, pa, pb, None).ok_or_else(|| {
                    RouteError::Disconnected {
                        a: pa,
                        b: pb,
                        topology: topology.name().to_owned(),
                    }
                })?;
                emit(
                    out,
                    Instruction::two(qcircuit::Gate::Swap, path[0], path[1]),
                );
                layout.swap_physical(path[0], path[1]);
                swap_count += 1;
            }
            _ => break,
        }
    }
    let mut remaining: Vec<&&Instruction> = layer.iter().collect();
    while !remaining.is_empty() {
        remaining.retain(|gate| {
            let pa = layout.phys(gate.q0());
            let pb = layout.phys(gate.q1());
            if topology.are_coupled(pa, pb) {
                emit(out, Instruction::two(gate.gate(), pa, pb));
                false
            } else {
                true
            }
        });
        let Some(gate) = remaining.first().copied() else {
            break;
        };
        let pa = layout.phys(gate.q0());
        let pb = layout.phys(gate.q1());
        let path = cheapest_path(topology, metric, pa, pb, None).ok_or_else(|| {
            RouteError::Disconnected {
                a: pa,
                b: pb,
                topology: topology.name().to_owned(),
            }
        })?;
        swap_count += walk_path(&path, layout, out);
    }
    Ok(swap_count)
}

fn walk_path(path: &[usize], layout: &mut Layout, out: &mut Circuit) -> usize {
    let mut current = path[0];
    let mut swaps = 0;
    for &next in &path[1..path.len() - 1] {
        emit(out, Instruction::two(qcircuit::Gate::Swap, current, next));
        layout.swap_physical(current, next);
        current = next;
        swaps += 1;
    }
    swaps
}

fn cheapest_path(
    topology: &Topology,
    metric: &RoutingMetric,
    from: usize,
    to: usize,
    frozen: Option<&[bool]>,
) -> Option<Vec<usize>> {
    let n = topology.num_qubits();
    let blocked =
        |p: usize| -> bool { p != from && p != to && frozen.map(|f| f[p]).unwrap_or(false) };
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut visited = vec![false; n];
    dist[from] = 0.0;
    for _ in 0..n {
        let u = (0..n)
            .filter(|&u| !visited[u] && dist[u].is_finite())
            .min_by(|&a, &b| dist[a].total_cmp(&dist[b]))?;
        if u == to {
            break;
        }
        visited[u] = true;
        for w in topology.graph().neighbors(u) {
            if visited[w] || blocked(w) {
                continue;
            }
            let cost = dist[u] + metric.swap_cost(u, w);
            if cost < dist[w] - 1e-9 {
                dist[w] = cost;
                prev[w] = u;
            }
        }
    }
    if !dist[to].is_finite() {
        return None;
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[cur];
        if cur == usize::MAX {
            return None;
        }
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

fn emit(out: &mut Circuit, instr: Instruction) {
    out.push(instr).expect("router emits in-range instructions");
}

/// The pre-rewrite `try_compile_incremental_with`: clones the op list per
/// restart and routes each packed layer through a freshly allocated
/// partial circuit.
pub fn try_compile_incremental_with<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    packing_limit: Option<usize>,
    resort: bool,
    rng: &mut R,
) -> Result<IncrementalResult, CompileError> {
    if packing_limit == Some(0) {
        return Err(CompileError::ZeroPackingLimit);
    }
    let n_logical = spec.num_qubits();
    let n_physical = topology.num_qubits();
    let mut layout = initial_layout;
    let mut out = Circuit::new(n_physical);
    out.set_param_table(spec.param_table().clone());
    let mut swap_count = 0usize;
    let mut cphase_layers = 0usize;
    let mut layers: Vec<LayerRecord> = Vec::new();

    for q in 0..n_logical {
        out.h(layout.phys(q));
    }

    for (level, (ops, beta)) in spec.levels().iter().enumerate() {
        let mut remaining: Vec<CphaseOp> = ops.clone();
        while !remaining.is_empty() {
            remaining.shuffle(rng);
            if resort {
                remaining.sort_by(|x, y| {
                    let dx = metric.dist(layout.phys(x.a), layout.phys(x.b));
                    let dy = metric.dist(layout.phys(y.a), layout.phys(y.b));
                    dx.total_cmp(&dy)
                });
            }
            let mut occupied = vec![false; n_logical];
            let mut layer = Vec::new();
            let mut spill = Vec::new();
            for op in remaining.drain(..) {
                let fits = !occupied[op.a]
                    && !occupied[op.b]
                    && packing_limit.is_none_or(|lim| layer.len() < lim);
                if fits {
                    occupied[op.a] = true;
                    occupied[op.b] = true;
                    layer.push(op);
                } else {
                    spill.push(op);
                }
            }
            remaining = spill;
            cphase_layers += 1;
            let mut partial = Circuit::new(n_logical);
            for op in &layer {
                partial.rzz(op.angle, op.a, op.b);
            }
            let routed = try_route(&partial, topology, layout, metric)?;
            layers.push(LayerRecord {
                level,
                gates: layer.iter().map(|op| (op.a, op.b)).collect(),
                swaps: routed.swap_count,
                routed_depth: routed.circuit.depth(),
            });
            out.append(&routed.circuit).expect("same physical width");
            layout = routed.final_layout;
            swap_count += routed.swap_count;
        }
        for &(q, angle) in spec.field_terms(level) {
            out.rz(angle, layout.phys(q));
        }
        for q in 0..n_logical {
            out.rx(beta.scaled(2.0), layout.phys(q));
        }
    }

    if spec.measure() {
        for q in 0..n_logical {
            out.measure(layout.phys(q));
        }
    }

    Ok(IncrementalResult {
        circuit: out,
        final_layout: layout,
        swap_count,
        cphase_layers,
        layers,
    })
}

/// The pre-rewrite `pack_layers`: `Vec<Vec<bool>>` occupancy bins.
pub fn pack_layers<R: Rng + ?Sized>(
    num_qubits: usize,
    ops: &[CphaseOp],
    packing_limit: Option<usize>,
    rng: &mut R,
) -> Vec<Vec<CphaseOp>> {
    if let Some(limit) = packing_limit {
        assert!(limit > 0, "packing limit must be positive");
    }
    let mut layers: Vec<Vec<CphaseOp>> = Vec::new();
    let mut remaining: Vec<CphaseOp> = ops.to_vec();
    while !remaining.is_empty() {
        let profile = ProgramProfile::from_ops(num_qubits, &remaining);
        remaining.shuffle(rng);
        remaining.sort_by_key(|op| std::cmp::Reverse(profile.op_rank(op)));
        let moq = profile.moq();
        let base = layers.len();
        layers.extend(std::iter::repeat_with(Vec::new).take(moq));
        let mut occupied: Vec<Vec<bool>> = vec![vec![false; num_qubits]; moq];
        let mut spill = Vec::new();
        for op in remaining.drain(..) {
            let slot = (0..moq).find(|&l| {
                !occupied[l][op.a]
                    && !occupied[l][op.b]
                    && packing_limit.is_none_or(|lim| layers[base + l].len() < lim)
            });
            match slot {
                Some(l) => {
                    occupied[l][op.a] = true;
                    occupied[l][op.b] = true;
                    layers[base + l].push(op);
                }
                None => spill.push(op),
            }
        }
        remaining = spill;
        layers.retain(|l| !l.is_empty());
    }
    layers
}
