//! Structured compilation failures.

use std::fmt;

use qroute::RouteError;

/// Why the pipeline could not produce a [`crate::CompiledCircuit`].
///
/// The fallible entry points ([`crate::try_compile`],
/// [`crate::try_compile_with_context`], [`crate::compile_batch`]) return
/// these instead of panicking, so failures cross thread and API boundaries
/// as values. The legacy [`crate::compile`] wrapper converts them back
/// into panics with the same messages the pre-refactor asserts produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program needs more logical qubits than the topology provides.
    ProgramTooLarge {
        /// Logical qubits the program uses.
        logical: usize,
        /// Physical qubits the topology provides.
        physical: usize,
    },
    /// VIC (reliability-weighted incremental compilation) was requested
    /// but the hardware context carries no calibration data.
    MissingCalibration,
    /// `packing_limit` was `Some(0)`, which would make layer formation
    /// diverge.
    ZeroPackingLimit,
    /// Two physical qubits the mapper must relate are disconnected in the
    /// coupling graph.
    Disconnected {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// The backend router failed.
    Routing(RouteError),
    /// The routed circuit could not be lowered to the target basis.
    BasisLowering(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ProgramTooLarge { logical, physical } => write!(
                f,
                "{logical} logical qubits cannot fit on {physical} physical qubits"
            ),
            CompileError::MissingCalibration => {
                write!(f, "VIC (IncrementalReliability) requires calibration data")
            }
            CompileError::ZeroPackingLimit => write!(f, "packing limit must be positive"),
            CompileError::Disconnected { a, b } => {
                write!(f, "physical qubits {a} and {b} are disconnected")
            }
            CompileError::Routing(e) => write!(f, "routing failed: {e}"),
            CompileError::BasisLowering(msg) => write!(f, "basis lowering failed: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Routing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RouteError> for CompileError {
    fn from(e: RouteError) -> Self {
        CompileError::Routing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_messages() {
        assert_eq!(
            CompileError::ProgramTooLarge {
                logical: 21,
                physical: 20
            }
            .to_string(),
            "21 logical qubits cannot fit on 20 physical qubits"
        );
        assert_eq!(
            CompileError::MissingCalibration.to_string(),
            "VIC (IncrementalReliability) requires calibration data"
        );
        assert_eq!(
            CompileError::ZeroPackingLimit.to_string(),
            "packing limit must be positive"
        );
    }

    #[test]
    fn route_errors_convert_and_chain() {
        let e: CompileError = RouteError::LayoutTooSmall {
            covers: 3,
            needed: 5,
        }
        .into();
        assert!(matches!(e, CompileError::Routing(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
