//! Structured compilation failures.

use std::fmt;

use qroute::RouteError;

/// Why the pipeline could not produce a [`crate::CompiledCircuit`].
///
/// The fallible entry points ([`crate::try_compile`],
/// [`crate::try_compile_with_context`], [`crate::compile_batch`]) return
/// these instead of panicking, so failures cross thread and API boundaries
/// as values. The legacy [`crate::compile`] wrapper converts them back
/// into panics with the same messages the pre-refactor asserts produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program needs more logical qubits than the topology provides.
    ProgramTooLarge {
        /// Logical qubits the program uses.
        logical: usize,
        /// Physical qubits the topology provides.
        physical: usize,
    },
    /// VIC (reliability-weighted incremental compilation) was requested
    /// but the hardware context carries no calibration data.
    MissingCalibration,
    /// `packing_limit` was `Some(0)`, which would make layer formation
    /// diverge.
    ZeroPackingLimit,
    /// Two physical qubits the mapper must relate are disconnected in the
    /// coupling graph.
    Disconnected {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// The backend router failed.
    Routing(RouteError),
    /// The routed circuit could not be lowered to the target basis.
    BasisLowering(String),
    /// The coupling graph is not a single connected component, so some
    /// qubit pairs can never be routed. Surfaced up front instead of the
    /// unreachable-distance artifacts the mapper/router would hit later.
    DisconnectedTopology {
        /// Number of connected components found.
        components: usize,
    },
    /// Calibration data is present but failed validation (NaN or
    /// out-of-range rates, missing/unknown couplings), so VIC's
    /// reliability weights cannot be trusted.
    UnusableCalibration(qhw::CalibrationError),
    /// A pass exceeded its configured time or swap budget
    /// ([`crate::Resilience`]).
    BudgetExceeded {
        /// The pass that blew the budget.
        pass: &'static str,
    },
    /// A fallback-produced circuit failed post-routing verification
    /// (coupling compliance or functional equivalence) and no further
    /// degradation rung was available.
    Verification {
        /// Which check failed (`"coupling"` or `"equivalence"`).
        stage: &'static str,
    },
    /// Binding a [`crate::CompiledArtifact`] failed: the supplied values
    /// do not cover the template's symbolic parameters.
    UnboundParameters {
        /// Parameters the template requires (declared count, or the
        /// 1-based index of the first uncovered parameter).
        expected: usize,
        /// Values supplied.
        found: usize,
    },
    /// A compilation panicked; the panic was caught at the batch
    /// boundary and converted into this structured error so one poisoned
    /// job cannot abort its batch.
    Internal(String),
    /// The caller tripped the run's [`crate::CancelToken`] (deadline
    /// expiry, shutdown); the pipeline aborted at the next pass boundary.
    Cancelled,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ProgramTooLarge { logical, physical } => write!(
                f,
                "{logical} logical qubits cannot fit on {physical} physical qubits"
            ),
            CompileError::MissingCalibration => {
                write!(f, "VIC (IncrementalReliability) requires calibration data")
            }
            CompileError::ZeroPackingLimit => write!(f, "packing limit must be positive"),
            CompileError::Disconnected { a, b } => {
                write!(f, "physical qubits {a} and {b} are disconnected")
            }
            CompileError::Routing(e) => write!(f, "routing failed: {e}"),
            CompileError::BasisLowering(msg) => write!(f, "basis lowering failed: {msg}"),
            CompileError::DisconnectedTopology { components } => write!(
                f,
                "coupling graph has {components} connected components; routing needs one"
            ),
            CompileError::UnusableCalibration(e) => {
                write!(f, "calibration data is unusable: {e}")
            }
            CompileError::BudgetExceeded { pass } => {
                write!(f, "pass '{pass}' exceeded its compile budget")
            }
            CompileError::Verification { stage } => {
                write!(f, "fallback circuit failed {stage} verification")
            }
            CompileError::UnboundParameters { expected, found } => write!(
                f,
                "parameter values do not cover the compiled template: need {expected}, got {found}"
            ),
            CompileError::Internal(msg) => write!(f, "internal compiler error: {msg}"),
            CompileError::Cancelled => write!(f, "compilation cancelled by caller"),
        }
    }
}

impl CompileError {
    /// Whether the degradation ladder may retry this failure on a less
    /// demanding configuration. Input contract violations
    /// ([`CompileError::ProgramTooLarge`], [`CompileError::ZeroPackingLimit`])
    /// and structurally unroutable targets
    /// ([`CompileError::DisconnectedTopology`]) fail every rung the same
    /// way, so falling back would only waste the budget. A cancelled run
    /// ([`CompileError::Cancelled`]) must stop immediately — the caller
    /// that tripped the token no longer wants *any* rung's answer.
    pub fn recoverable(&self) -> bool {
        !matches!(
            self,
            CompileError::ProgramTooLarge { .. }
                | CompileError::ZeroPackingLimit
                | CompileError::DisconnectedTopology { .. }
                | CompileError::Cancelled
        )
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Routing(e) => Some(e),
            CompileError::UnusableCalibration(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RouteError> for CompileError {
    fn from(e: RouteError) -> Self {
        CompileError::Routing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_messages() {
        assert_eq!(
            CompileError::ProgramTooLarge {
                logical: 21,
                physical: 20
            }
            .to_string(),
            "21 logical qubits cannot fit on 20 physical qubits"
        );
        assert_eq!(
            CompileError::MissingCalibration.to_string(),
            "VIC (IncrementalReliability) requires calibration data"
        );
        assert_eq!(
            CompileError::ZeroPackingLimit.to_string(),
            "packing limit must be positive"
        );
    }

    #[test]
    fn resilience_variants_display_and_classify() {
        assert_eq!(
            CompileError::DisconnectedTopology { components: 3 }.to_string(),
            "coupling graph has 3 connected components; routing needs one"
        );
        assert_eq!(
            CompileError::BudgetExceeded { pass: "route" }.to_string(),
            "pass 'route' exceeded its compile budget"
        );
        let cal = CompileError::UnusableCalibration(qhw::CalibrationError::NonFiniteCnotRate {
            u: 1,
            v: 2,
        });
        assert!(cal.to_string().contains("not finite"));
        assert!(std::error::Error::source(&cal).is_some());
        // Recoverability drives the ladder.
        assert!(cal.recoverable());
        assert!(CompileError::MissingCalibration.recoverable());
        assert!(CompileError::BudgetExceeded { pass: "qaim" }.recoverable());
        assert!(CompileError::Internal("boom".into()).recoverable());
        assert!(!CompileError::Cancelled.recoverable());
        assert_eq!(
            CompileError::Cancelled.to_string(),
            "compilation cancelled by caller"
        );
        assert!(!CompileError::DisconnectedTopology { components: 2 }.recoverable());
        assert!(!CompileError::ZeroPackingLimit.recoverable());
        assert!(!CompileError::ProgramTooLarge {
            logical: 9,
            physical: 5
        }
        .recoverable());
    }

    #[test]
    fn route_errors_convert_and_chain() {
        let e: CompileError = RouteError::LayoutTooSmall {
            covers: 3,
            needed: 5,
        }
        .into();
        assert!(matches!(e, CompileError::Routing(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
