//! Trait-based compilation passes over a shared [`CompileContext`].
//!
//! The pipeline used to be one enum-dispatch monolith; it is now three
//! orthogonal stages selected from [`crate::CompileOptions`]:
//!
//! 1. a [`MappingPass`] producing the initial logical→physical
//!    [`Layout`],
//! 2. an optional [`OrderingPass`] reordering each level's CPHASE list
//!    (full-circuit routing only), and
//! 3. a [`RoutingStage`] — one backend pass over the whole circuit, or
//!    the paper's incremental layer-by-layer compilation.
//!
//! Every pass reads hardware facts through the context's
//! [`qhw::HardwareContext`], so distance matrices and connectivity
//! profiles are computed once per target and shared by reference.

use qroute::Layout;
use rand::seq::SliceRandom;
use rand::RngCore;

use crate::error::CompileError;
use crate::mapping::{self, QaimVariant};
use crate::pipeline::{Compilation, CompileOptions, InitialMapping};
use crate::{ip, CphaseOp, QaoaSpec};

/// Everything a pass may read: the program, the hardware context with its
/// cached matrices, and the run's options.
#[derive(Debug, Clone, Copy)]
pub struct CompileContext<'a> {
    /// The QAOA program being compiled.
    pub spec: &'a QaoaSpec,
    /// The target hardware with cached distance matrices and profile.
    pub hw: &'a qhw::HardwareContext,
    /// Options for this run.
    pub options: &'a CompileOptions,
}

/// An initial logical→physical mapping strategy.
pub trait MappingPass: Sync {
    /// The pass name used in [`crate::PassTrace`] records.
    fn name(&self) -> &'static str;
    /// Produces the initial layout.
    fn run(&self, cx: &CompileContext<'_>, rng: &mut dyn RngCore) -> Result<Layout, CompileError>;
}

/// A gate-ordering strategy applied to each level's CPHASE list before
/// full-circuit routing.
pub trait OrderingPass: Sync {
    /// The pass name used in [`crate::PassTrace`] records.
    fn name(&self) -> &'static str;
    /// Returns `ops` in execution order.
    fn order_level(
        &self,
        cx: &CompileContext<'_>,
        ops: &[CphaseOp],
        rng: &mut dyn RngCore,
    ) -> Vec<CphaseOp>;
}

/// How the ordered program reaches hardware compliance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingStage {
    /// One backend routing pass over the fully built logical circuit.
    Full,
    /// Incremental compilation: form a layer, route it, re-profile
    /// (§IV-C/§IV-D).
    Incremental {
        /// Use the reliability-weighted metric (VIC) instead of hops (IC).
        variation_aware: bool,
    },
}

/// Random placement (the paper's NAIVE baseline).
struct NaiveMapping;

impl MappingPass for NaiveMapping {
    fn name(&self) -> &'static str {
        "naive"
    }
    fn run(&self, cx: &CompileContext<'_>, rng: &mut dyn RngCore) -> Result<Layout, CompileError> {
        mapping::check_fits(cx.spec, cx.hw.topology())?;
        Ok(mapping::naive(cx.spec, cx.hw.topology(), rng))
    }
}

/// Heaviest-qubit-first placement (the GreedyV baseline of \[59\]).
struct GreedyVMapping;

impl MappingPass for GreedyVMapping {
    fn name(&self) -> &'static str {
        "greedy-v"
    }
    fn run(&self, cx: &CompileContext<'_>, _rng: &mut dyn RngCore) -> Result<Layout, CompileError> {
        mapping::check_fits(cx.spec, cx.hw.topology())?;
        Ok(mapping::greedy_v(cx.spec, cx.hw.topology()))
    }
}

/// Densest-subgraph topology selection (the qiskit optimizer baseline).
struct DenseMapping;

impl MappingPass for DenseMapping {
    fn name(&self) -> &'static str {
        "dense"
    }
    fn run(&self, cx: &CompileContext<'_>, _rng: &mut dyn RngCore) -> Result<Layout, CompileError> {
        mapping::check_fits(cx.spec, cx.hw.topology())?;
        Ok(mapping::dense_layout(cx.spec, cx.hw.topology()))
    }
}

/// The paper's QAIM (§IV-A), fed from the context's cached profile and
/// distance matrix.
struct QaimMapping;

impl MappingPass for QaimMapping {
    fn name(&self) -> &'static str {
        "qaim"
    }
    fn run(&self, cx: &CompileContext<'_>, _rng: &mut dyn RngCore) -> Result<Layout, CompileError> {
        mapping::try_qaim_with_context(cx.spec, cx.hw, QaimVariant::Full)
    }
}

/// Randomly shuffled CPHASE order (NAIVE / QAIM-only configurations).
struct RandomOrdering;

impl OrderingPass for RandomOrdering {
    fn name(&self) -> &'static str {
        "random-order"
    }
    fn order_level(
        &self,
        _cx: &CompileContext<'_>,
        ops: &[CphaseOp],
        rng: &mut dyn RngCore,
    ) -> Vec<CphaseOp> {
        let mut shuffled = ops.to_vec();
        shuffled.shuffle(rng);
        // A packing limit under full-circuit compilation only constrains
        // IP's layer former; random order ignores it, as in the paper.
        shuffled
    }
}

/// Instruction Parallelization: bin-packed gate order (§IV-B).
struct IpOrdering;

impl OrderingPass for IpOrdering {
    fn name(&self) -> &'static str {
        "ip-pack"
    }
    fn order_level(
        &self,
        cx: &CompileContext<'_>,
        ops: &[CphaseOp],
        rng: &mut dyn RngCore,
    ) -> Vec<CphaseOp> {
        ip::flatten(&ip::pack_layers(
            cx.spec.num_qubits(),
            ops,
            cx.options.packing_limit,
            rng,
        ))
    }
}

impl InitialMapping {
    /// The pass implementing this strategy.
    pub fn pass(self) -> &'static dyn MappingPass {
        match self {
            InitialMapping::Naive => &NaiveMapping,
            InitialMapping::GreedyV => &GreedyVMapping,
            InitialMapping::Dense => &DenseMapping,
            InitialMapping::Qaim => &QaimMapping,
        }
    }
}

impl Compilation {
    /// The ordering pass this mode uses, `None` for incremental modes
    /// (which interleave ordering with routing).
    pub fn ordering_pass(self) -> Option<&'static dyn OrderingPass> {
        match self {
            Compilation::RandomOrder => Some(&RandomOrdering),
            Compilation::Ip => Some(&IpOrdering),
            Compilation::IncrementalHops | Compilation::IncrementalReliability => None,
        }
    }

    /// How this mode reaches hardware compliance.
    pub fn routing_stage(self) -> RoutingStage {
        match self {
            Compilation::RandomOrder | Compilation::Ip => RoutingStage::Full,
            Compilation::IncrementalHops => RoutingStage::Incremental {
                variation_aware: false,
            },
            Compilation::IncrementalReliability => RoutingStage::Incremental {
                variation_aware: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qhw::{HardwareContext, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_spec() -> QaoaSpec {
        let ops = [(0, 1), (1, 2), (2, 3)]
            .into_iter()
            .map(|(a, b)| CphaseOp::new(a, b, 0.4))
            .collect();
        QaoaSpec::new(4, vec![(ops, 0.3)], false)
    }

    #[test]
    fn every_mapping_strategy_resolves_to_a_named_pass() {
        let spec = small_spec();
        let hw = HardwareContext::new(Topology::ibmq_20_tokyo());
        let options = CompileOptions::naive();
        let cx = CompileContext {
            spec: &spec,
            hw: &hw,
            options: &options,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for (strategy, name) in [
            (InitialMapping::Naive, "naive"),
            (InitialMapping::GreedyV, "greedy-v"),
            (InitialMapping::Dense, "dense"),
            (InitialMapping::Qaim, "qaim"),
        ] {
            let pass = strategy.pass();
            assert_eq!(pass.name(), name);
            let layout = pass.run(&cx, &mut rng).expect("small program fits");
            assert_eq!(layout.num_logical(), 4);
        }
    }

    #[test]
    fn mapping_passes_reject_oversized_programs() {
        let ops = vec![CphaseOp::new(0, 1, 0.1)];
        let spec = QaoaSpec::new(5, vec![(ops, 0.0)], false);
        let hw = HardwareContext::new(Topology::linear(3));
        let options = CompileOptions::naive();
        let cx = CompileContext {
            spec: &spec,
            hw: &hw,
            options: &options,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for strategy in [
            InitialMapping::Naive,
            InitialMapping::GreedyV,
            InitialMapping::Dense,
            InitialMapping::Qaim,
        ] {
            let err = strategy.pass().run(&cx, &mut rng).unwrap_err();
            assert_eq!(
                err,
                CompileError::ProgramTooLarge {
                    logical: 5,
                    physical: 3
                },
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn routing_stages_match_modes() {
        assert_eq!(Compilation::RandomOrder.routing_stage(), RoutingStage::Full);
        assert_eq!(Compilation::Ip.routing_stage(), RoutingStage::Full);
        assert_eq!(
            Compilation::IncrementalHops.routing_stage(),
            RoutingStage::Incremental {
                variation_aware: false
            }
        );
        assert_eq!(
            Compilation::IncrementalReliability.routing_stage(),
            RoutingStage::Incremental {
                variation_aware: true
            }
        );
        assert!(Compilation::IncrementalHops.ordering_pass().is_none());
        assert_eq!(
            Compilation::Ip.ordering_pass().map(|p| p.name()),
            Some("ip-pack")
        );
    }
}
