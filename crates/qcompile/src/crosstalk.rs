//! Crosstalk-aware sequentialization (§VI "Crosstalk").
//!
//! The paper notes that excessive gate parallelization can increase
//! crosstalk errors and points to Murali et al. (\[66\], ASPLOS'20): on real
//! devices only a small subset of coupling pairs is highly crosstalk-prone
//! (5 of 221 on IBM Poughkeepsie), so it suffices to *sequentialize* the
//! parallel operations on exactly those pairs post-compilation. This
//! module implements that post-pass.

use std::collections::BTreeSet;

use qcircuit::layers::{asap_layers, from_layers};
use qcircuit::{Circuit, Instruction};
use qgraph::Edge;

/// A set of coupling pairs whose simultaneous operation is crosstalk-prone.
///
/// Pairs are *coupling edges* of the physical device; two two-qubit gates
/// conflict when each executes on one edge of a listed conflicting edge
/// pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrosstalkPairs {
    conflicts: BTreeSet<(Edge, Edge)>,
}

impl CrosstalkPairs {
    /// No known conflicts (the pass becomes the identity).
    pub fn none() -> Self {
        CrosstalkPairs::default()
    }

    /// Builds from explicit `((a, b), (c, d))` edge pairs.
    ///
    /// # Panics
    ///
    /// Panics if an edge pair shares a qubit: such gates can never run in
    /// the same layer anyway, so listing them indicates a configuration
    /// error.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = ((usize, usize), (usize, usize))>,
    {
        let mut conflicts = BTreeSet::new();
        for ((a, b), (c, d)) in pairs {
            let e1 = Edge::new(a, b);
            let e2 = Edge::new(c, d);
            assert!(
                !(e1.contains(c) || e1.contains(d)),
                "conflicting edges ({a},{b}) and ({c},{d}) share a qubit"
            );
            // store canonically ordered
            let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
            conflicts.insert((lo, hi));
        }
        CrosstalkPairs { conflicts }
    }

    /// Whether simultaneous two-qubit gates on `e1` and `e2` conflict.
    pub fn conflicts(&self, e1: Edge, e2: Edge) -> bool {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        self.conflicts.contains(&(lo, hi))
    }

    /// Number of registered conflicting pairs.
    pub fn len(&self) -> usize {
        self.conflicts.len()
    }

    /// Whether no conflicts are registered.
    pub fn is_empty(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// An explicit gate schedule: instructions grouped into time steps.
///
/// A plain [`Circuit`] cannot express "hold this gate back" — its depth is
/// recomputed by ASAP scheduling, which would re-parallelize deferred
/// gates. The crosstalk pass therefore returns the schedule explicitly;
/// this is also the natural input for pulse-level scheduling, which is
/// where crosstalk constraints are ultimately enforced (\[66\]).
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    num_qubits: usize,
    layers: Vec<Vec<Instruction>>,
}

impl Schedule {
    /// Number of time steps.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The scheduled time steps.
    pub fn layers(&self) -> &[Vec<Instruction>] {
        &self.layers
    }

    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Whether the schedule holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.layers.iter().all(Vec::is_empty)
    }

    /// Flattens back to a circuit (dropping the explicit hold-backs — the
    /// gate order and semantics are preserved).
    pub fn to_circuit(&self) -> Circuit {
        from_layers(self.num_qubits, &self.layers)
    }
}

/// Sequentializes crosstalk-prone parallel operations: whenever a
/// concurrency layer contains two-qubit gates on a conflicting edge pair,
/// the later gate is deferred to a fresh time step. All other parallelism
/// is preserved; the gate sequence (and hence the semantics) is unchanged —
/// only the schedule stretches.
///
/// Returns the adjusted schedule and the number of deferral events.
pub fn sequentialize(circuit: &Circuit, pairs: &CrosstalkPairs) -> (Schedule, usize) {
    if pairs.is_empty() {
        return (
            Schedule {
                num_qubits: circuit.num_qubits(),
                layers: asap_layers(circuit),
            },
            0,
        );
    }
    let mut deferred_count = 0usize;
    let mut out_layers: Vec<Vec<Instruction>> = Vec::new();
    let mut pending: Vec<Instruction> = Vec::new();
    for layer in asap_layers(circuit) {
        // Pre-pend any gates deferred from the previous layer, then the
        // layer's own gates, keeping only a conflict-free prefix set.
        let mut this: Vec<Instruction> = Vec::new();
        let mut next_pending: Vec<Instruction> = Vec::new();
        for instr in pending.into_iter().chain(layer) {
            let conflict = instr.gate().arity() == 2
                && this.iter().any(|placed| {
                    placed.gate().arity() == 2
                        && pairs.conflicts(
                            Edge::new(instr.q0(), instr.q1()),
                            Edge::new(placed.q0(), placed.q1()),
                        )
                });
            // A deferred gate's qubits may also be busy in this layer.
            let busy = instr
                .qubit_vec()
                .iter()
                .any(|&q| this.iter().any(|placed| placed.acts_on(q)));
            if conflict || busy {
                deferred_count += 1;
                next_pending.push(instr);
            } else {
                this.push(instr);
            }
        }
        out_layers.push(this);
        pending = next_pending;
    }
    // Flush remaining deferred gates, one conflict-free batch per layer.
    while !pending.is_empty() {
        let mut this: Vec<Instruction> = Vec::new();
        let mut next_pending: Vec<Instruction> = Vec::new();
        for instr in pending {
            let conflict = instr.gate().arity() == 2
                && this.iter().any(|placed| {
                    placed.gate().arity() == 2
                        && pairs.conflicts(
                            Edge::new(instr.q0(), instr.q1()),
                            Edge::new(placed.q0(), placed.q1()),
                        )
                });
            let busy = instr
                .qubit_vec()
                .iter()
                .any(|&q| this.iter().any(|placed| placed.acts_on(q)));
            if conflict || busy {
                next_pending.push(instr);
            } else {
                this.push(instr);
            }
        }
        out_layers.push(this);
        pending = next_pending;
    }
    out_layers.retain(|l| !l.is_empty());
    (
        Schedule {
            num_qubits: circuit.num_qubits(),
            layers: out_layers,
        },
        deferred_count,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two parallel CNOTs on conflicting edges get split across layers.
    #[test]
    fn conflicting_parallel_gates_are_split() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        assert_eq!(c.depth(), 1);
        let pairs = CrosstalkPairs::from_pairs([((0, 1), (2, 3))]);
        let (out, deferred) = sequentialize(&c, &pairs);
        assert_eq!(deferred, 1);
        assert_eq!(out.depth(), 2);
        assert_eq!(out.len(), 2);
        assert!(!out.is_empty());
        assert_eq!(out.to_circuit().len(), 2);
    }

    /// Unlisted pairs keep their parallelism.
    #[test]
    fn non_conflicting_gates_stay_parallel() {
        let mut c = Circuit::new(6);
        c.cx(0, 1);
        c.cx(2, 3);
        c.cx(4, 5);
        let pairs = CrosstalkPairs::from_pairs([((0, 1), (2, 3))]);
        let (out, deferred) = sequentialize(&c, &pairs);
        assert_eq!(deferred, 1);
        // (0,1) ∥ (4,5) in layer 1; (2,3) alone in layer 2.
        assert_eq!(out.depth(), 2);
    }

    /// The empty conflict set is the identity pass.
    #[test]
    fn empty_pairs_is_identity() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rzz(0.3, 1, 2);
        let (out, deferred) = sequentialize(&c, &CrosstalkPairs::none());
        assert_eq!(deferred, 0);
        assert_eq!(out.to_circuit(), c);
        assert_eq!(out.depth(), c.depth());
    }

    /// Gate multiset and per-qubit order are preserved (semantics intact).
    #[test]
    fn semantics_preserved() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        c.rzz(0.1, 0, 1);
        c.rzz(0.2, 2, 3);
        c.rzz(0.3, 0, 2);
        c.rx(0.9, 0);
        let pairs = CrosstalkPairs::from_pairs([((0, 1), (2, 3))]);
        let (out, _) = sequentialize(&c, &pairs);
        assert_eq!(out.len(), c.len());
        // Statevector equality (sequentialization never reorders
        // overlapping gates).
        let a = qsim::StateVector::from_circuit(&c);
        let b = qsim::StateVector::from_circuit(&out.to_circuit());
        assert!(a.fidelity(&b) > 1.0 - 1e-10);
    }

    /// Chains of conflicts serialize fully.
    #[test]
    fn pairwise_chain_serializes() {
        let mut c = Circuit::new(6);
        c.cx(0, 1);
        c.cx(2, 3);
        c.cx(4, 5);
        let pairs =
            CrosstalkPairs::from_pairs([((0, 1), (2, 3)), ((2, 3), (4, 5)), ((0, 1), (4, 5))]);
        let (out, deferred) = sequentialize(&c, &pairs);
        assert_eq!(out.depth(), 3);
        assert!(deferred >= 2);
    }

    #[test]
    #[should_panic]
    fn shared_qubit_pair_panics() {
        let _ = CrosstalkPairs::from_pairs([((0, 1), (1, 2))]);
    }

    #[test]
    fn conflict_lookup_is_symmetric() {
        let pairs = CrosstalkPairs::from_pairs([((0, 1), (2, 3))]);
        assert!(pairs.conflicts(Edge::new(2, 3), Edge::new(0, 1)));
        assert!(pairs.conflicts(Edge::new(1, 0), Edge::new(3, 2)));
        assert!(!pairs.conflicts(Edge::new(0, 1), Edge::new(4, 5)));
        assert_eq!(pairs.len(), 1);
        assert!(!pairs.is_empty());
    }
}
