//! Incremental Compilation (IC, §IV-C) and its variation-aware form
//! (VIC, §IV-D).
//!
//! IC forms CPHASE layers *one at a time*: before each layer it re-sorts
//! the remaining gates by the **current** physical distance of their
//! operands (the logical→physical mapping drifts as the backend inserts
//! SWAPs), greedily packs one layer, routes just that layer, and feeds the
//! post-routing mapping into the next round. The compiled partial circuits
//! are stitched into the final hardware-compliant circuit (Figure 5).
//!
//! VIC is IC with the reliability-weighted distance metric of Figure 6(d):
//! unreliable couplings look longer, so the layer former defers gates that
//! would execute on bad links and the router detours around them —
//! maximizing the compiled circuit's success probability.

use std::cell::RefCell;

use qcircuit::Circuit;
use qhw::Topology;
use qroute::{route_append, Layout, RoutingMetric};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::CompileError;
use crate::{CphaseOp, QaoaSpec};

/// Output of [`compile_incremental`].
#[derive(Debug, Clone)]
pub struct IncrementalResult {
    /// The stitched hardware-compliant circuit.
    pub circuit: Circuit,
    /// Logical→physical mapping after all partial compilations.
    pub final_layout: Layout,
    /// Total SWAPs inserted across all partial circuits.
    pub swap_count: usize,
    /// Number of CPHASE layers formed (across all levels).
    pub cphase_layers: usize,
    /// One record per formed CPHASE layer, in formation order — the raw
    /// material for the compile explain report.
    pub layers: Vec<LayerRecord>,
}

/// What one incrementally formed CPHASE layer contained and cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerRecord {
    /// QAOA level (0-based) the layer belongs to.
    pub level: usize,
    /// The layer's CPHASE gates as `(logical_a, logical_b)` pairs, in
    /// packing order.
    pub gates: Vec<(usize, usize)>,
    /// SWAPs the backend inserted to route this layer.
    pub swaps: usize,
    /// Depth of the routed partial circuit for this layer.
    pub routed_depth: usize,
}

/// Compiles a QAOA program incrementally (IC when `metric` is
/// [`RoutingMetric::hops`], VIC when it is [`RoutingMetric::reliability`]).
///
/// `packing_limit` caps the gates per formed layer (§V-H); ties in the
/// distance sort break randomly via `rng`, as in the paper.
///
/// # Panics
///
/// Panics if the program does not fit the topology or `packing_limit` is
/// `Some(0)`.
pub fn compile_incremental<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    packing_limit: Option<usize>,
    rng: &mut R,
) -> IncrementalResult {
    compile_incremental_with(
        spec,
        topology,
        initial_layout,
        metric,
        packing_limit,
        true,
        rng,
    )
}

/// [`compile_incremental`] with an ablation switch: when `resort` is
/// false, the remaining-gate list is shuffled but **not** re-sorted by
/// current distance before each layer, removing IC's exploitation of "the
/// dynamic changes in logical-to-physical qubit mapping" (§IV-C). The
/// `ablation_ic` binary quantifies what the re-sorting buys.
///
/// # Panics
///
/// Same as [`compile_incremental`].
pub fn compile_incremental_with<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    packing_limit: Option<usize>,
    resort: bool,
    rng: &mut R,
) -> IncrementalResult {
    match try_compile_incremental_with(
        spec,
        topology,
        initial_layout,
        metric,
        packing_limit,
        resort,
        rng,
    ) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// A CPHASE op with its cached current physical distance — the sort key
/// of IC's Step 1. The cache is maintained incrementally: after each
/// routed layer, only ops whose operands' physical positions actually
/// moved are re-scored, instead of re-deriving every gate→distance pair
/// from the distance matrix per round.
#[derive(Debug, Clone, Copy)]
struct ScoredOp {
    op: CphaseOp,
    dist: f64,
}

/// Reusable per-thread scratch for the incremental compiler: every
/// per-round buffer (remaining/spill/layer op lists, the occupancy
/// bitset, the dirty-qubit table, the previous-mapping snapshot, the
/// partial circuit handed to the router and the telemetry marks) is
/// allocated once per thread and reset per use, so a steady-state compile
/// performs no per-layer heap allocation on this path.
struct IcScratch {
    remaining: Vec<ScoredOp>,
    spill: Vec<ScoredOp>,
    layer: Vec<ScoredOp>,
    dirty: Vec<bool>,
    prev_mapping: Vec<usize>,
    /// Logical-qubit occupancy of the layer being packed, one bit per
    /// qubit in `u64` words.
    occupied: Vec<u64>,
    partial: Circuit,
    layer_marks: Vec<u64>,
    /// Bucket offsets and the output buffer of the stable hop-key
    /// counting sort ([`sort_remaining_by_dist`]).
    sort_counts: Vec<usize>,
    sort_tmp: Vec<ScoredOp>,
}

impl Default for IcScratch {
    fn default() -> Self {
        IcScratch {
            remaining: Vec::new(),
            spill: Vec::new(),
            layer: Vec::new(),
            dirty: Vec::new(),
            prev_mapping: Vec::new(),
            occupied: Vec::new(),
            partial: Circuit::new(0),
            layer_marks: Vec::new(),
            sort_counts: Vec::new(),
            sort_tmp: Vec::new(),
        }
    }
}

/// Sorts `ops` ascending by cached distance, preserving the order of
/// equal keys (the random tie-break order the preceding shuffle chose).
///
/// For the unit metric the keys are small non-negative integers (hop
/// counts, plus `INFINITY` for disconnected pairs), so a stable counting
/// sort over reusable scratch produces **exactly** the permutation
/// `sort_by(total_cmp)` would — both are stable and induce the same key
/// order — without the stable merge sort's per-call buffer allocation.
/// Weighted (VIC) keys are arbitrary floats and take the comparison sort.
fn sort_remaining_by_dist(
    ops: &mut Vec<ScoredOp>,
    unit_metric: bool,
    max_hops: usize,
    counts: &mut Vec<usize>,
    tmp: &mut Vec<ScoredOp>,
) {
    if !unit_metric {
        ops.sort_by(|x, y| x.dist.total_cmp(&y.dist));
        return;
    }
    if ops.len() <= 1 {
        return;
    }
    // One bucket per finite hop count up to the topology-wide bound the
    // caller hoisted, plus a trailing one for INFINITY (total_cmp orders
    // it after every finite key).
    let inf_bucket = max_hops + 1;
    counts.clear();
    counts.resize(inf_bucket + 1, 0);
    let key = |s: &ScoredOp| {
        if s.dist.is_finite() {
            s.dist as usize
        } else {
            inf_bucket
        }
    };
    for s in ops.iter() {
        counts[key(s)] += 1;
    }
    let mut start = 0usize;
    for c in counts.iter_mut() {
        let bucket = *c;
        *c = start;
        start += bucket;
    }
    // `resize` without `clear` only touches the grown suffix; the scatter
    // below overwrites every slot in `[0, ops.len())` anyway.
    tmp.resize(ops.len(), ops[0]);
    for s in ops.iter() {
        let slot = &mut counts[key(s)];
        tmp[*slot] = *s;
        *slot += 1;
    }
    std::mem::swap(ops, tmp);
}

thread_local! {
    static IC_SCRATCH: RefCell<IcScratch> = RefCell::new(IcScratch::default());
}

/// Capacity floor for the stitched output circuit: the Hadamard wall,
/// every CPHASE, each level's field rotations and mixer wall, the final
/// measurements, plus SWAP headroom (fig09-class compiles stay well under
/// 4 SWAPs per CPHASE; the zero-reallocation test pins the bound).
fn stitch_reserve(spec: &QaoaSpec) -> usize {
    let n = spec.num_qubits();
    let cphase = spec.total_cphase_count();
    let field: usize = (0..spec.levels().len())
        .map(|l| spec.field_terms(l).len())
        .sum();
    let measures = if spec.measure() { n } else { 0 };
    n + cphase + field + spec.levels().len() * n + measures + 4 * cphase + 64
}

/// Fallible form of [`compile_incremental_with`]: returns a structured
/// [`CompileError`] instead of panicking, so incremental compilation can
/// cross thread and API boundaries (the batch driver relies on this).
///
/// This is the allocation-disciplined engine: op lists, occupancy bitsets
/// and the per-layer partial circuit live in thread-local scratch; routed
/// layers are emitted straight into the output via
/// [`qroute::route_append`] (no intermediate circuit + `append` copy);
/// and the distance sort keys are maintained incrementally under the
/// drifting layout. Its observable output is **bit-for-bit identical** to
/// the frozen pre-rewrite engine in `crate::reference` — the
/// `compile_equivalence` suite pins that across seeds, topologies and
/// metrics.
pub fn try_compile_incremental_with<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    packing_limit: Option<usize>,
    resort: bool,
    rng: &mut R,
) -> Result<IncrementalResult, CompileError> {
    if packing_limit == Some(0) {
        return Err(CompileError::ZeroPackingLimit);
    }
    let n_logical = spec.num_qubits();
    let n_physical = topology.num_qubits();
    let q = qtrace::global();

    IC_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let IcScratch {
            remaining,
            spill,
            layer,
            dirty,
            prev_mapping,
            occupied,
            partial,
            layer_marks,
            sort_counts,
            sort_tmp,
        } = &mut *scratch;
        layer_marks.clear();
        if partial.num_qubits() != n_logical {
            *partial = Circuit::new(n_logical);
        }
        dirty.clear();
        dirty.resize(n_logical, false);
        let words = n_logical.div_ceil(64);
        // Hoisted dense metric-distance table for the (re)scoring loops.
        let dist_flat = metric.dist_flat();
        let n_table = metric.num_physical();
        let unit_metric = !metric.is_variation_aware();
        // Topology-wide hop bound, hoisted so the counting sort skips a
        // per-call max scan. Unit-metric keys are exactly these hop counts.
        let max_hops = if unit_metric {
            metric
                .hops_flat()
                .iter()
                .copied()
                .filter(|&h| h != usize::MAX)
                .max()
                .unwrap_or(0)
        } else {
            0
        };

        let mut layout = initial_layout;
        let mut out = Circuit::new(n_physical);
        // The stitched circuit inherits the spec's parameter table; the
        // router only permutes qubits, so direct emission merges cleanly.
        out.set_param_table(spec.param_table().clone());
        out.reserve(stitch_reserve(spec));
        let mut swap_count = 0usize;
        let mut cphase_layers = 0usize;
        let mut layers: Vec<LayerRecord> = Vec::new();

        // Initial Hadamard wall.
        for q in 0..n_logical {
            out.h(layout.phys(q));
        }

        for (level, (ops, beta)) in spec.levels().iter().enumerate() {
            remaining.clear();
            remaining.extend(ops.iter().map(|&op| ScoredOp {
                dist: dist_flat[layout.phys(op.a) * n_table + layout.phys(op.b)],
                op,
            }));
            while !remaining.is_empty() {
                // Step 1: sort by current physical distance (ties random).
                // The shuffle consumes randomness as a function of length
                // alone and the cached keys equal what the old comparator
                // recomputed, so seed-for-seed the order is unchanged.
                remaining.shuffle(rng);
                if resort {
                    sort_remaining_by_dist(remaining, unit_metric, max_hops, sort_counts, sort_tmp);
                }
                // Greedily pack a single layer of qubit bins.
                occupied.clear();
                occupied.resize(words, 0);
                layer.clear();
                spill.clear();
                for s in remaining.drain(..) {
                    let (wa, ba) = (s.op.a / 64, 1u64 << (s.op.a % 64));
                    let (wb, bb) = (s.op.b / 64, 1u64 << (s.op.b % 64));
                    let fits = (occupied[wa] & ba) == 0
                        && (occupied[wb] & bb) == 0
                        && packing_limit.is_none_or(|lim| layer.len() < lim);
                    if fits {
                        occupied[wa] |= ba;
                        occupied[wb] |= bb;
                        layer.push(s);
                    } else {
                        spill.push(s);
                    }
                }
                std::mem::swap(remaining, spill);
                cphase_layers += 1;
                // Route the partial circuit holding just this layer,
                // emitting straight into the stitched output.
                partial.clear();
                for s in layer.iter() {
                    partial.rzz(s.op.angle, s.op.a, s.op.b);
                }
                prev_mapping.clear();
                prev_mapping.extend_from_slice(layout.as_mapping());
                let routed = route_append(partial, topology, layout, metric, &mut out)?;
                // Timeline marker per packed layer; timestamps buffer
                // locally and flush in one batch after the level loop.
                if q.events_enabled() {
                    layer_marks.push(qtrace::event::now_ns());
                }
                layers.push(LayerRecord {
                    level,
                    gates: layer.iter().map(|s| (s.op.a, s.op.b)).collect(),
                    swaps: routed.swap_count,
                    routed_depth: routed.routed_depth,
                });
                layout = routed.final_layout;
                swap_count += routed.swap_count;
                // Re-score only the ops whose operands the router moved.
                if resort && !remaining.is_empty() {
                    let mut any_moved = false;
                    for (l, &was) in prev_mapping.iter().enumerate().take(n_logical) {
                        let moved = layout.phys(l) != was;
                        dirty[l] = moved;
                        any_moved |= moved;
                    }
                    if any_moved {
                        for s in remaining.iter_mut() {
                            if dirty[s.op.a] || dirty[s.op.b] {
                                s.dist =
                                    dist_flat[layout.phys(s.op.a) * n_table + layout.phys(s.op.b)];
                            }
                        }
                    }
                }
            }
            // Field rotations (diagonal; commute with the cost layer) and
            // the mixer wall for this level.
            for &(q, angle) in spec.field_terms(level) {
                out.rz(angle, layout.phys(q));
            }
            for q in 0..n_logical {
                out.rx(beta.scaled(2.0), layout.phys(q));
            }
        }

        if spec.measure() {
            for q in 0..n_logical {
                out.measure(layout.phys(q));
            }
        }
        q.instants_at("qcompile/ic/layer", layer_marks);

        Ok(IncrementalResult {
            circuit: out,
            final_layout: layout,
            swap_count,
            cphase_layers,
            layers,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qhw::Calibration;
    use qroute::satisfies_coupling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The Figure 3(c)/Example 3 program with the Example 1 mapping
    /// {q0→7, q1→12, q2→13, q3→2, q4→8}.
    fn fig5_setup() -> (QaoaSpec, Topology, Layout) {
        let ops = [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 4), (3, 4)]
            .into_iter()
            .map(|(a, b)| CphaseOp::new(a, b, 0.4))
            .collect();
        let spec = QaoaSpec::new(5, vec![(ops, 0.3)], false);
        let topo = Topology::ibmq_20_tokyo();
        let layout = Layout::from_mapping(vec![7, 12, 13, 2, 8], 20);
        (spec, topo, layout)
    }

    #[test]
    fn fig5_layer_and_swap_budget() {
        // Paper Example 3: 4 layers formed, 2 SWAPs added. Layer contents
        // depend on random tie-breaks, so assert the structural facts: the
        // layer count equals MOQ (q0 appears in 4 ops → at least 4 layers;
        // greedy packing achieves it or comes within one), and the SWAP
        // budget stays at the paper's level.
        let (spec, topo, layout) = fig5_setup();
        let metric = RoutingMetric::hops(&topo);
        let mut best_layers = usize::MAX;
        let mut best_swaps = usize::MAX;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = compile_incremental(&spec, &topo, layout.clone(), &metric, None, &mut rng);
            assert!(satisfies_coupling(&r.circuit, &topo));
            assert!(r.cphase_layers >= 4);
            best_layers = best_layers.min(r.cphase_layers);
            best_swaps = best_swaps.min(r.swap_count);
        }
        assert_eq!(best_layers, 4, "greedy should reach the MOQ bound");
        assert!(
            best_swaps <= 2,
            "paper reports 2 SWAPs; got best {best_swaps}"
        );
    }

    #[test]
    fn incremental_result_is_equivalent_to_logical_circuit() {
        let (spec, topo, layout) = fig5_setup();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(3);
        let r = compile_incremental(&spec, &topo, layout.clone(), &metric, None, &mut rng);

        // Reference: the same program compiled trivially (H wall, ops in
        // spec order, mixer), simulated on logical qubits; compare via the
        // embedding + inverse-permutation trick of qroute::verify. The
        // circuits only use 8 physical qubits of tokyo in practice, but
        // verification simulates all 20 — still fine (~1M amplitudes).
        let mut logical = Circuit::new(5);
        for q in 0..5 {
            logical.h(q);
        }
        for op in &spec.levels()[0].0 {
            logical.rzz(op.angle, op.a, op.b);
        }
        for q in 0..5 {
            logical.rx(spec.levels()[0].1.scaled(2.0), q);
        }
        assert!(qroute::routed_equivalent(
            &logical,
            &r.circuit,
            &layout,
            &r.final_layout
        ));
    }

    #[test]
    fn vic_prefers_reliable_couplings() {
        // The paper's Figure 10 protocol: mean success probability over a
        // set of problem instances, VIC vs IC, on melbourne with the real
        // 2020-04-08 calibration. VIC must win on average.
        let (topo, cal) = Calibration::melbourne_2020_04_08();
        let ic_metric = RoutingMetric::hops(&topo);
        let vic_metric = RoutingMetric::reliability(&topo, &cal);
        let (mut sp_ic, mut sp_vic) = (0.0f64, 0.0f64);
        let instances = 12;
        for seed in 0..instances {
            let mut g_rng = StdRng::seed_from_u64(500 + seed);
            let g = qgraph::generators::connected_erdos_renyi(12, 0.5, 1000, &mut g_rng).unwrap();
            let problem = qaoa::MaxCut::without_optimum(g);
            let spec = QaoaSpec::from_maxcut(&problem, &qaoa::QaoaParams::p1(0.4, 0.3), true);
            let layout = crate::mapping::qaim(&spec, &topo);
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let ric = compile_incremental(&spec, &topo, layout.clone(), &ic_metric, None, &mut rng);
            let rvic =
                compile_incremental(&spec, &topo, layout.clone(), &vic_metric, None, &mut rng);
            sp_ic += qroute::success_probability(&ric.circuit, &cal);
            sp_vic += qroute::success_probability(&rvic.circuit, &cal);
        }
        assert!(
            sp_vic > sp_ic,
            "mean VIC success probability {} should beat IC {}",
            sp_vic / instances as f64,
            sp_ic / instances as f64
        );
    }

    #[test]
    fn packing_limit_reduces_layer_occupancy() {
        let (spec, topo, layout) = fig5_setup();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(1);
        let limited = compile_incremental(&spec, &topo, layout.clone(), &metric, Some(1), &mut rng);
        // 7 ops, one per layer.
        assert_eq!(limited.cphase_layers, 7);
        assert!(satisfies_coupling(&limited.circuit, &topo));
    }

    #[test]
    fn multi_level_compilation_stitches_all_levels() {
        let problem = qaoa::MaxCut::new(qgraph::generators::cycle(5));
        let params = qaoa::QaoaParams::new(vec![(0.3, 0.2), (0.5, 0.4)]);
        let spec = QaoaSpec::from_maxcut(&problem, &params, true);
        let topo = Topology::ibmq_16_melbourne();
        let layout = crate::mapping::qaim(&spec, &topo);
        let mut rng = StdRng::seed_from_u64(7);
        let metric = RoutingMetric::hops(&topo);
        let r = compile_incremental(&spec, &topo, layout, &metric, None, &mut rng);
        assert_eq!(r.circuit.count_gate("rzz"), 10);
        assert_eq!(r.circuit.count_gate("rx"), 10);
        assert_eq!(r.circuit.count_gate("h"), 5);
        assert_eq!(r.circuit.count_gate("measure"), 5);
        assert!(satisfies_coupling(&r.circuit, &topo));
    }

    #[test]
    #[should_panic]
    fn zero_packing_limit_panics() {
        let (spec, topo, layout) = fig5_setup();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = compile_incremental(&spec, &topo, layout, &metric, Some(0), &mut rng);
    }

    #[test]
    fn stitching_never_reallocates_on_fig09_class() {
        // The up-front reserve must cover the whole stitched circuit:
        // an untouched capacity proves zero mid-compile reallocation
        // (any overflow would grow the buffer past the initial reserve).
        let topo = Topology::ibmq_20_tokyo();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(0xF19);
        for seed in 0..6 {
            let mut g_rng = StdRng::seed_from_u64(7000 + seed);
            let g = qgraph::generators::connected_erdos_renyi(20, 0.5, 1000, &mut g_rng).unwrap();
            let problem = qaoa::MaxCut::without_optimum(g);
            let spec = QaoaSpec::from_maxcut(&problem, &qaoa::QaoaParams::p1(0.4, 0.3), true);
            let layout = crate::mapping::qaim(&spec, &topo);
            let r = compile_incremental(&spec, &topo, layout, &metric, None, &mut rng);
            assert_eq!(
                r.circuit.capacity(),
                super::stitch_reserve(&spec),
                "stitch buffer reallocated mid-compile (len {})",
                r.circuit.len()
            );
            assert!(r.circuit.len() <= super::stitch_reserve(&spec));
        }
    }
}
