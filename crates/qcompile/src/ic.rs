//! Incremental Compilation (IC, §IV-C) and its variation-aware form
//! (VIC, §IV-D).
//!
//! IC forms CPHASE layers *one at a time*: before each layer it re-sorts
//! the remaining gates by the **current** physical distance of their
//! operands (the logical→physical mapping drifts as the backend inserts
//! SWAPs), greedily packs one layer, routes just that layer, and feeds the
//! post-routing mapping into the next round. The compiled partial circuits
//! are stitched into the final hardware-compliant circuit (Figure 5).
//!
//! VIC is IC with the reliability-weighted distance metric of Figure 6(d):
//! unreliable couplings look longer, so the layer former defers gates that
//! would execute on bad links and the router detours around them —
//! maximizing the compiled circuit's success probability.

use qcircuit::Circuit;
use qhw::Topology;
use qroute::{try_route, Layout, RoutingMetric};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::CompileError;
use crate::{CphaseOp, QaoaSpec};

/// Output of [`compile_incremental`].
#[derive(Debug, Clone)]
pub struct IncrementalResult {
    /// The stitched hardware-compliant circuit.
    pub circuit: Circuit,
    /// Logical→physical mapping after all partial compilations.
    pub final_layout: Layout,
    /// Total SWAPs inserted across all partial circuits.
    pub swap_count: usize,
    /// Number of CPHASE layers formed (across all levels).
    pub cphase_layers: usize,
    /// One record per formed CPHASE layer, in formation order — the raw
    /// material for the compile explain report.
    pub layers: Vec<LayerRecord>,
}

/// What one incrementally formed CPHASE layer contained and cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerRecord {
    /// QAOA level (0-based) the layer belongs to.
    pub level: usize,
    /// The layer's CPHASE gates as `(logical_a, logical_b)` pairs, in
    /// packing order.
    pub gates: Vec<(usize, usize)>,
    /// SWAPs the backend inserted to route this layer.
    pub swaps: usize,
    /// Depth of the routed partial circuit for this layer.
    pub routed_depth: usize,
}

/// Compiles a QAOA program incrementally (IC when `metric` is
/// [`RoutingMetric::hops`], VIC when it is [`RoutingMetric::reliability`]).
///
/// `packing_limit` caps the gates per formed layer (§V-H); ties in the
/// distance sort break randomly via `rng`, as in the paper.
///
/// # Panics
///
/// Panics if the program does not fit the topology or `packing_limit` is
/// `Some(0)`.
pub fn compile_incremental<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    packing_limit: Option<usize>,
    rng: &mut R,
) -> IncrementalResult {
    compile_incremental_with(
        spec,
        topology,
        initial_layout,
        metric,
        packing_limit,
        true,
        rng,
    )
}

/// [`compile_incremental`] with an ablation switch: when `resort` is
/// false, the remaining-gate list is shuffled but **not** re-sorted by
/// current distance before each layer, removing IC's exploitation of "the
/// dynamic changes in logical-to-physical qubit mapping" (§IV-C). The
/// `ablation_ic` binary quantifies what the re-sorting buys.
///
/// # Panics
///
/// Same as [`compile_incremental`].
pub fn compile_incremental_with<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    packing_limit: Option<usize>,
    resort: bool,
    rng: &mut R,
) -> IncrementalResult {
    match try_compile_incremental_with(
        spec,
        topology,
        initial_layout,
        metric,
        packing_limit,
        resort,
        rng,
    ) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`compile_incremental_with`]: returns a structured
/// [`CompileError`] instead of panicking, so incremental compilation can
/// cross thread and API boundaries (the batch driver relies on this).
pub fn try_compile_incremental_with<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    packing_limit: Option<usize>,
    resort: bool,
    rng: &mut R,
) -> Result<IncrementalResult, CompileError> {
    if packing_limit == Some(0) {
        return Err(CompileError::ZeroPackingLimit);
    }
    let n_logical = spec.num_qubits();
    let n_physical = topology.num_qubits();
    let mut layout = initial_layout;
    let mut out = Circuit::new(n_physical);
    // The stitched circuit inherits the spec's parameter table; the
    // routed partial circuits carry none (their tables are empty), so
    // appending them below merges cleanly.
    out.set_param_table(spec.param_table().clone());
    let mut swap_count = 0usize;
    let mut cphase_layers = 0usize;
    let mut layers: Vec<LayerRecord> = Vec::new();
    let mut layer_marks: Vec<u64> = Vec::new();
    let q = qtrace::global();

    // Initial Hadamard wall.
    for q in 0..n_logical {
        out.h(layout.phys(q));
    }

    for (level, (ops, beta)) in spec.levels().iter().enumerate() {
        let mut remaining: Vec<CphaseOp> = ops.clone();
        while !remaining.is_empty() {
            // Step 1: sort by current physical distance (ties random).
            remaining.shuffle(rng);
            if resort {
                remaining.sort_by(|x, y| {
                    let dx = metric.dist(layout.phys(x.a), layout.phys(x.b));
                    let dy = metric.dist(layout.phys(y.a), layout.phys(y.b));
                    dx.total_cmp(&dy)
                });
            }
            // Greedily pack a single layer of qubit bins.
            let mut occupied = vec![false; n_logical];
            let mut layer = Vec::new();
            let mut spill = Vec::new();
            for op in remaining.drain(..) {
                let fits = !occupied[op.a]
                    && !occupied[op.b]
                    && packing_limit.is_none_or(|lim| layer.len() < lim);
                if fits {
                    occupied[op.a] = true;
                    occupied[op.b] = true;
                    layer.push(op);
                } else {
                    spill.push(op);
                }
            }
            remaining = spill;
            cphase_layers += 1;
            // Compile the partial circuit holding just this layer.
            let mut partial = Circuit::new(n_logical);
            for op in &layer {
                partial.rzz(op.angle, op.a, op.b);
            }
            let routed = try_route(&partial, topology, layout, metric)?;
            // Timeline marker per packed layer; timestamps buffer locally
            // and flush in one batch after the level loop.
            if q.events_enabled() {
                layer_marks.push(qtrace::event::now_ns());
            }
            layers.push(LayerRecord {
                level,
                gates: layer.iter().map(|op| (op.a, op.b)).collect(),
                swaps: routed.swap_count,
                routed_depth: routed.circuit.depth(),
            });
            out.append(&routed.circuit).expect("same physical width");
            layout = routed.final_layout;
            swap_count += routed.swap_count;
        }
        // Field rotations (diagonal; commute with the cost layer) and the
        // mixer wall for this level.
        for &(q, angle) in spec.field_terms(level) {
            out.rz(angle, layout.phys(q));
        }
        for q in 0..n_logical {
            out.rx(beta.scaled(2.0), layout.phys(q));
        }
    }

    if spec.measure() {
        for q in 0..n_logical {
            out.measure(layout.phys(q));
        }
    }
    q.instants_at("qcompile/ic/layer", &layer_marks);

    Ok(IncrementalResult {
        circuit: out,
        final_layout: layout,
        swap_count,
        cphase_layers,
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qhw::Calibration;
    use qroute::satisfies_coupling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The Figure 3(c)/Example 3 program with the Example 1 mapping
    /// {q0→7, q1→12, q2→13, q3→2, q4→8}.
    fn fig5_setup() -> (QaoaSpec, Topology, Layout) {
        let ops = [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 4), (3, 4)]
            .into_iter()
            .map(|(a, b)| CphaseOp::new(a, b, 0.4))
            .collect();
        let spec = QaoaSpec::new(5, vec![(ops, 0.3)], false);
        let topo = Topology::ibmq_20_tokyo();
        let layout = Layout::from_mapping(vec![7, 12, 13, 2, 8], 20);
        (spec, topo, layout)
    }

    #[test]
    fn fig5_layer_and_swap_budget() {
        // Paper Example 3: 4 layers formed, 2 SWAPs added. Layer contents
        // depend on random tie-breaks, so assert the structural facts: the
        // layer count equals MOQ (q0 appears in 4 ops → at least 4 layers;
        // greedy packing achieves it or comes within one), and the SWAP
        // budget stays at the paper's level.
        let (spec, topo, layout) = fig5_setup();
        let metric = RoutingMetric::hops(&topo);
        let mut best_layers = usize::MAX;
        let mut best_swaps = usize::MAX;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = compile_incremental(&spec, &topo, layout.clone(), &metric, None, &mut rng);
            assert!(satisfies_coupling(&r.circuit, &topo));
            assert!(r.cphase_layers >= 4);
            best_layers = best_layers.min(r.cphase_layers);
            best_swaps = best_swaps.min(r.swap_count);
        }
        assert_eq!(best_layers, 4, "greedy should reach the MOQ bound");
        assert!(
            best_swaps <= 2,
            "paper reports 2 SWAPs; got best {best_swaps}"
        );
    }

    #[test]
    fn incremental_result_is_equivalent_to_logical_circuit() {
        let (spec, topo, layout) = fig5_setup();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(3);
        let r = compile_incremental(&spec, &topo, layout.clone(), &metric, None, &mut rng);

        // Reference: the same program compiled trivially (H wall, ops in
        // spec order, mixer), simulated on logical qubits; compare via the
        // embedding + inverse-permutation trick of qroute::verify. The
        // circuits only use 8 physical qubits of tokyo in practice, but
        // verification simulates all 20 — still fine (~1M amplitudes).
        let mut logical = Circuit::new(5);
        for q in 0..5 {
            logical.h(q);
        }
        for op in &spec.levels()[0].0 {
            logical.rzz(op.angle, op.a, op.b);
        }
        for q in 0..5 {
            logical.rx(spec.levels()[0].1.scaled(2.0), q);
        }
        assert!(qroute::routed_equivalent(
            &logical,
            &r.circuit,
            &layout,
            &r.final_layout
        ));
    }

    #[test]
    fn vic_prefers_reliable_couplings() {
        // The paper's Figure 10 protocol: mean success probability over a
        // set of problem instances, VIC vs IC, on melbourne with the real
        // 2020-04-08 calibration. VIC must win on average.
        let (topo, cal) = Calibration::melbourne_2020_04_08();
        let ic_metric = RoutingMetric::hops(&topo);
        let vic_metric = RoutingMetric::reliability(&topo, &cal);
        let (mut sp_ic, mut sp_vic) = (0.0f64, 0.0f64);
        let instances = 12;
        for seed in 0..instances {
            let mut g_rng = StdRng::seed_from_u64(500 + seed);
            let g = qgraph::generators::connected_erdos_renyi(12, 0.5, 1000, &mut g_rng).unwrap();
            let problem = qaoa::MaxCut::without_optimum(g);
            let spec = QaoaSpec::from_maxcut(&problem, &qaoa::QaoaParams::p1(0.4, 0.3), true);
            let layout = crate::mapping::qaim(&spec, &topo);
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let ric = compile_incremental(&spec, &topo, layout.clone(), &ic_metric, None, &mut rng);
            let rvic =
                compile_incremental(&spec, &topo, layout.clone(), &vic_metric, None, &mut rng);
            sp_ic += qroute::success_probability(&ric.circuit, &cal);
            sp_vic += qroute::success_probability(&rvic.circuit, &cal);
        }
        assert!(
            sp_vic > sp_ic,
            "mean VIC success probability {} should beat IC {}",
            sp_vic / instances as f64,
            sp_ic / instances as f64
        );
    }

    #[test]
    fn packing_limit_reduces_layer_occupancy() {
        let (spec, topo, layout) = fig5_setup();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(1);
        let limited = compile_incremental(&spec, &topo, layout.clone(), &metric, Some(1), &mut rng);
        // 7 ops, one per layer.
        assert_eq!(limited.cphase_layers, 7);
        assert!(satisfies_coupling(&limited.circuit, &topo));
    }

    #[test]
    fn multi_level_compilation_stitches_all_levels() {
        let problem = qaoa::MaxCut::new(qgraph::generators::cycle(5));
        let params = qaoa::QaoaParams::new(vec![(0.3, 0.2), (0.5, 0.4)]);
        let spec = QaoaSpec::from_maxcut(&problem, &params, true);
        let topo = Topology::ibmq_16_melbourne();
        let layout = crate::mapping::qaim(&spec, &topo);
        let mut rng = StdRng::seed_from_u64(7);
        let metric = RoutingMetric::hops(&topo);
        let r = compile_incremental(&spec, &topo, layout, &metric, None, &mut rng);
        assert_eq!(r.circuit.count_gate("rzz"), 10);
        assert_eq!(r.circuit.count_gate("rx"), 10);
        assert_eq!(r.circuit.count_gate("h"), 5);
        assert_eq!(r.circuit.count_gate("measure"), 5);
        assert!(satisfies_coupling(&r.circuit, &topo));
    }

    #[test]
    #[should_panic]
    fn zero_packing_limit_panics() {
        let (spec, topo, layout) = fig5_setup();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = compile_incremental(&spec, &topo, layout, &metric, Some(0), &mut rng);
    }
}
