//! Instruction Parallelization (IP, §IV-B): bin-packing the commuting
//! CPHASE gates into maximally parallel layers.
//!
//! IP formulates layer formation as binary bin-packing solved with the
//! first-fit-decreasing greedy heuristic (Figure 4):
//!
//! 1. Rank each CPHASE by the total operation count of its two qubits.
//! 2. Create `MOQ` empty layers (MOQ = max operations on any single qubit
//!    — the best-case layer count).
//! 3. Assign gates in rank order to the first layer where both qubit bins
//!    are free; unassignable gates go to a spill list.
//! 4. Repeat from step 2 on the spill list until empty.
//!
//! The layered order is handed to the backend compiler as a flat gate
//! sequence; the backend's own layer partitioner then recovers the
//! parallelism.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{CphaseOp, ProgramProfile};

/// Packs `ops` into parallel layers with the first-fit-decreasing
/// heuristic.
///
/// `packing_limit` caps the number of gates per layer (§V-H's packing
/// density knob); `None` packs layers to the fullest. Equal-rank gates are
/// shuffled with `rng` before the stable rank sort, reproducing the
/// paper's "similar ranked CPHASE operations are ordered randomly".
///
/// # Panics
///
/// Panics if `packing_limit` is `Some(0)`.
pub fn pack_layers<R: Rng + ?Sized>(
    num_qubits: usize,
    ops: &[CphaseOp],
    packing_limit: Option<usize>,
    rng: &mut R,
) -> Vec<Vec<CphaseOp>> {
    if let Some(limit) = packing_limit {
        assert!(limit > 0, "packing limit must be positive");
    }
    let mut layers: Vec<Vec<CphaseOp>> = Vec::new();
    let mut remaining: Vec<CphaseOp> = ops.to_vec();
    while !remaining.is_empty() {
        // Step 1: rank by cumulative qubit usage of the remaining set.
        let profile = ProgramProfile::from_ops(num_qubits, &remaining);
        remaining.shuffle(rng);
        remaining.sort_by_key(|op| std::cmp::Reverse(profile.op_rank(op)));
        // Step 2: MOQ empty layers for this round.
        let moq = profile.moq();
        let base = layers.len();
        layers.extend(std::iter::repeat_with(Vec::new).take(moq));
        // Per-layer qubit occupancy as bitset rows (one bit per qubit in
        // u64 words): the first-fit probe reads two words per layer
        // instead of chasing a Vec<Vec<bool>> row per candidate.
        let words = num_qubits.div_ceil(64);
        let mut occupied = vec![0u64; moq * words];
        // Step 3: first-fit assignment.
        let mut spill = Vec::new();
        for op in remaining.drain(..) {
            let (wa, ba) = (op.a / 64, 1u64 << (op.a % 64));
            let (wb, bb) = (op.b / 64, 1u64 << (op.b % 64));
            let slot = (0..moq).find(|&l| {
                (occupied[l * words + wa] & ba) == 0
                    && (occupied[l * words + wb] & bb) == 0
                    && packing_limit.is_none_or(|lim| layers[base + l].len() < lim)
            });
            match slot {
                Some(l) => {
                    occupied[l * words + wa] |= ba;
                    occupied[l * words + wb] |= bb;
                    layers[base + l].push(op);
                }
                None => spill.push(op),
            }
        }
        // Step 4: loop on the spill list.
        remaining = spill;
        // Drop layers the round left empty (possible under tight packing
        // limits).
        layers.retain(|l| !l.is_empty());
    }
    layers
}

/// Flattens packed layers into the gate sequence handed to the backend.
pub fn flatten(layers: &[Vec<CphaseOp>]) -> Vec<CphaseOp> {
    layers.iter().flatten().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn fig4_ops() -> Vec<CphaseOp> {
        // Figure 4(a): {(1,5), (2,3), (1,4), (2,4)} on qubits 1..=5.
        vec![
            CphaseOp::new(1, 5, 0.1),
            CphaseOp::new(2, 3, 0.1),
            CphaseOp::new(1, 4, 0.1),
            CphaseOp::new(2, 4, 0.1),
        ]
    }

    fn layer_pairs(layer: &[CphaseOp]) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = layer
            .iter()
            .map(|op| (op.a.min(op.b), op.a.max(op.b)))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn fig4_walkthrough() {
        // MOQ = 2, so exactly two layers; the rank-4 gates (1,4) and (2,4)
        // land in different layers (they share qubit 4), and the rank-3
        // gates fill the gaps: L1 = {(1,4), (2,3)}, L2 = {(2,4), (1,5)}.
        let layers = pack_layers(6, &fig4_ops(), None, &mut rng());
        assert_eq!(layers.len(), 2);
        let l1 = layer_pairs(&layers[0]);
        let l2 = layer_pairs(&layers[1]);
        // (1,4) and (2,4) must be split across the layers.
        assert_ne!(
            l1.contains(&(1, 4)),
            l2.contains(&(1, 4)),
            "(1,4) in exactly one layer"
        );
        assert!(l1.contains(&(1, 4)) ^ l1.contains(&(2, 4)));
        // Each layer holds two ops on disjoint qubits.
        assert_eq!(l1.len(), 2);
        assert_eq!(l2.len(), 2);
    }

    #[test]
    fn layers_have_disjoint_qubits() {
        let mut r = rng();
        let g = qgraph::generators::connected_erdos_renyi(12, 0.5, 100, &mut r).unwrap();
        let ops: Vec<CphaseOp> = g
            .edges()
            .map(|e| CphaseOp::new(e.a(), e.b(), 0.2))
            .collect();
        for layer in pack_layers(12, &ops, None, &mut r) {
            let mut used = std::collections::HashSet::new();
            for op in &layer {
                assert!(used.insert(op.a), "qubit {} reused", op.a);
                assert!(used.insert(op.b), "qubit {} reused", op.b);
            }
        }
    }

    #[test]
    fn all_ops_preserved() {
        let mut r = rng();
        let g = qgraph::generators::connected_random_regular(14, 5, 100, &mut r).unwrap();
        let ops: Vec<CphaseOp> = g
            .edges()
            .map(|e| CphaseOp::new(e.a(), e.b(), 0.2))
            .collect();
        let layers = pack_layers(14, &ops, None, &mut r);
        let flat = flatten(&layers);
        assert_eq!(flat.len(), ops.len());
        let mut want: Vec<(usize, usize)> =
            ops.iter().map(|o| (o.a.min(o.b), o.a.max(o.b))).collect();
        let mut got: Vec<(usize, usize)> =
            flat.iter().map(|o| (o.a.min(o.b), o.a.max(o.b))).collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got);
    }

    #[test]
    fn layer_count_is_at_least_moq() {
        let mut r = rng();
        for k in [3usize, 5, 8] {
            let g = qgraph::generators::connected_random_regular(16, k, 100, &mut r).unwrap();
            let ops: Vec<CphaseOp> = g
                .edges()
                .map(|e| CphaseOp::new(e.a(), e.b(), 0.2))
                .collect();
            let layers = pack_layers(16, &ops, None, &mut r);
            // Every node has k ops, so MOQ = k; packing cannot beat it.
            assert!(layers.len() >= k, "k={k}: {} layers", layers.len());
            // FFD on regular graphs lands near the bound.
            assert!(layers.len() <= k + 3, "k={k}: {} layers", layers.len());
        }
    }

    #[test]
    fn packing_beats_pathological_order() {
        // The Figure 1(b) order forces 6 sequential layers; packing the
        // same K4 ops reaches the optimal 3.
        let ops: Vec<CphaseOp> = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (0, 3)]
            .into_iter()
            .map(|(a, b)| CphaseOp::new(a, b, 0.1))
            .collect();
        let layers = pack_layers(4, &ops, None, &mut rng());
        assert_eq!(layers.len(), 3);
    }

    #[test]
    fn packing_limit_caps_layer_size() {
        let mut r = rng();
        let g = qgraph::generators::connected_erdos_renyi(16, 0.5, 100, &mut r).unwrap();
        let ops: Vec<CphaseOp> = g
            .edges()
            .map(|e| CphaseOp::new(e.a(), e.b(), 0.2))
            .collect();
        for limit in [1usize, 2, 3, 5] {
            let layers = pack_layers(16, &ops, Some(limit), &mut r);
            assert!(layers.iter().all(|l| l.len() <= limit), "limit {limit}");
            assert_eq!(flatten(&layers).len(), ops.len());
        }
    }

    #[test]
    fn packing_limit_one_gives_one_gate_per_layer() {
        let layers = pack_layers(6, &fig4_ops(), Some(1), &mut rng());
        assert_eq!(layers.len(), 4);
        assert!(layers.iter().all(|l| l.len() == 1));
    }

    #[test]
    #[should_panic]
    fn zero_packing_limit_panics() {
        let _ = pack_layers(6, &fig4_ops(), Some(0), &mut rng());
    }

    #[test]
    fn empty_input_gives_no_layers() {
        let layers = pack_layers(4, &[], None, &mut rng());
        assert!(layers.is_empty());
    }
}
