//! The Figure 2 workflow: initial mapping → gate ordering / incremental
//! compilation → backend routing → hardware-compliant circuit and quality
//! metrics.

use std::time::{Duration, Instant};

use qcircuit::basis::{to_basis, BasisSet};
use qcircuit::Circuit;
use qhw::{Calibration, Topology};
use qroute::{route, Layout, RoutingMetric};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{ic, ip, mapping, CphaseOp, QaoaSpec};

/// The initial logical→physical mapping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialMapping {
    /// Random placement (the paper's NAIVE baseline).
    Naive,
    /// Heaviest-qubit-first placement (the GreedyV baseline of \[59\]).
    GreedyV,
    /// Densest-subgraph topology selection (the qiskit optimizer baseline
    /// of §III).
    Dense,
    /// The paper's QAIM (§IV-A).
    Qaim,
}

/// The gate-ordering / compilation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compilation {
    /// Randomly ordered CPHASE sequence, compiled in one backend pass
    /// (the NAIVE / QAIM-only configurations of §V).
    RandomOrder,
    /// Instruction Parallelization: bin-packed gate order, one backend
    /// pass (§IV-B).
    Ip,
    /// Incremental Compilation with hop distances (§IV-C).
    IncrementalHops,
    /// Variation-aware Incremental Compilation with reliability-weighted
    /// distances (§IV-D). Requires calibration data.
    IncrementalReliability,
}

/// Options controlling one compilation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Initial-mapping strategy.
    pub mapping: InitialMapping,
    /// Compilation mode.
    pub compilation: Compilation,
    /// Maximum CPHASE gates per formed layer (§V-H); `None` packs fully.
    pub packing_limit: Option<usize>,
}

impl CompileOptions {
    /// Options with full layer packing.
    pub fn new(mapping: InitialMapping, compilation: Compilation) -> Self {
        CompileOptions { mapping, compilation, packing_limit: None }
    }

    /// The five named configurations evaluated in the paper (§V-F).
    pub fn naive() -> Self {
        CompileOptions::new(InitialMapping::Naive, Compilation::RandomOrder)
    }

    /// QAIM mapping with random gate order.
    pub fn qaim_only() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::RandomOrder)
    }

    /// IP on top of QAIM.
    pub fn ip() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::Ip)
    }

    /// IC on top of QAIM.
    pub fn ic() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::IncrementalHops)
    }

    /// VIC on top of QAIM.
    pub fn vic() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::IncrementalReliability)
    }

    /// Returns a copy with the given packing limit.
    pub fn with_packing_limit(mut self, limit: usize) -> Self {
        self.packing_limit = Some(limit);
        self
    }
}

/// A compiled QAOA circuit plus the quality metrics the paper reports.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    physical: Circuit,
    basis: Circuit,
    initial_layout: Layout,
    final_layout: Layout,
    swap_count: usize,
    elapsed: Duration,
}

impl CompiledCircuit {
    /// The hardware-compliant circuit in IR gates (Rzz/SWAP preserved).
    pub fn physical(&self) -> &Circuit {
        &self.physical
    }

    /// The circuit lowered to the IBM basis `{U1, U2, U3, CNOT}` — the
    /// paper's depth/gate-count metrics are measured here.
    pub fn basis_circuit(&self) -> &Circuit {
        &self.basis
    }

    /// The initial logical→physical mapping used.
    pub fn initial_layout(&self) -> &Layout {
        &self.initial_layout
    }

    /// The mapping after all SWAP insertion.
    pub fn final_layout(&self) -> &Layout {
        &self.final_layout
    }

    /// Circuit depth of the basis-lowered circuit.
    pub fn depth(&self) -> usize {
        self.basis.depth()
    }

    /// Gate count (excluding measurements) of the basis-lowered circuit.
    pub fn gate_count(&self) -> usize {
        self.basis.gate_count()
    }

    /// CNOT count of the basis-lowered circuit.
    pub fn cx_count(&self) -> usize {
        self.basis.count_gate("cx")
    }

    /// Number of SWAPs the router inserted.
    pub fn swap_count(&self) -> usize {
        self.swap_count
    }

    /// Wall-clock compilation time.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Success probability of the basis circuit under `calibration` (§II).
    pub fn success_probability(&self, calibration: &Calibration) -> f64 {
        qroute::success_probability(&self.basis, calibration)
    }
}

/// Compiles a QAOA program for `topology` under `options`.
///
/// `calibration` is required for [`Compilation::IncrementalReliability`]
/// and otherwise unused.
///
/// # Panics
///
/// Panics if VIC is requested without calibration, the program does not
/// fit the topology, or `options.packing_limit` is `Some(0)`.
pub fn compile<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    calibration: Option<&Calibration>,
    options: &CompileOptions,
    rng: &mut R,
) -> CompiledCircuit {
    let start = Instant::now();
    let initial_layout = match options.mapping {
        InitialMapping::Naive => mapping::naive(spec, topology, rng),
        InitialMapping::GreedyV => mapping::greedy_v(spec, topology),
        InitialMapping::Dense => mapping::dense_layout(spec, topology),
        InitialMapping::Qaim => mapping::qaim(spec, topology),
    };

    let (physical, final_layout, swap_count) = match options.compilation {
        Compilation::RandomOrder | Compilation::Ip => {
            let order_level = |ops: &[CphaseOp], rng: &mut R| -> Vec<CphaseOp> {
                match options.compilation {
                    Compilation::RandomOrder => {
                        let mut shuffled = ops.to_vec();
                        shuffled.shuffle(rng);
                        // A packing limit under full-circuit compilation
                        // only constrains IP's layer former; random order
                        // ignores it, as in the paper.
                        shuffled
                    }
                    _ => ip::flatten(&ip::pack_layers(
                        spec.num_qubits(),
                        ops,
                        options.packing_limit,
                        rng,
                    )),
                }
            };
            let logical = build_logical_circuit(spec, |ops| order_level(ops, rng));
            let metric = RoutingMetric::hops(topology);
            let routed = route(&logical, topology, initial_layout.clone(), &metric);
            (routed.circuit, routed.final_layout, routed.swap_count)
        }
        Compilation::IncrementalHops => {
            let metric = RoutingMetric::hops(topology);
            let r = ic::compile_incremental(
                spec,
                topology,
                initial_layout.clone(),
                &metric,
                options.packing_limit,
                rng,
            );
            (r.circuit, r.final_layout, r.swap_count)
        }
        Compilation::IncrementalReliability => {
            let cal = calibration
                .expect("VIC (IncrementalReliability) requires calibration data");
            let metric = RoutingMetric::reliability(topology, cal);
            let r = ic::compile_incremental(
                spec,
                topology,
                initial_layout.clone(),
                &metric,
                options.packing_limit,
                rng,
            );
            (r.circuit, r.final_layout, r.swap_count)
        }
    };

    let basis = to_basis(&physical, BasisSet::Ibm).expect("all IR gates lower to IBM basis");
    CompiledCircuit {
        physical,
        basis,
        initial_layout,
        final_layout,
        swap_count,
        elapsed: start.elapsed(),
    }
}

/// Builds the full logical circuit with each level's CPHASE list passed
/// through `order`.
fn build_logical_circuit<F>(spec: &QaoaSpec, mut order: F) -> Circuit
where
    F: FnMut(&[CphaseOp]) -> Vec<CphaseOp>,
{
    let n = spec.num_qubits();
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for (level, (ops, beta)) in spec.levels().iter().enumerate() {
        for op in order(ops) {
            c.rzz(op.angle, op.a, op.b);
        }
        for &(q, angle) in spec.field_terms(level) {
            c.rz(angle, q);
        }
        for q in 0..n {
            c.rx(2.0 * *beta, q);
        }
    }
    if spec.measure() {
        c.measure_all();
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaoa::{MaxCut, QaoaParams};
    use qroute::satisfies_coupling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec_20_node(seed: u64, p_edge: f64) -> QaoaSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = qgraph::generators::connected_erdos_renyi(16, p_edge, 1000, &mut rng).unwrap();
        let problem = MaxCut::without_optimum(g);
        QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.5, 0.3), true)
    }

    #[test]
    fn all_strategies_produce_compliant_circuits() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let cal = Calibration::random_normal(&topo, 1e-2, 5e-3, &mut rng);
        for options in [
            CompileOptions::naive(),
            CompileOptions::qaim_only(),
            CompileOptions::ip(),
            CompileOptions::ic(),
            CompileOptions::vic(),
        ] {
            let compiled = compile(&spec, &topo, Some(&cal), &options, &mut rng);
            assert!(
                satisfies_coupling(compiled.physical(), &topo),
                "{options:?} violates coupling"
            );
            assert!(qcircuit::basis::is_in_basis(
                compiled.basis_circuit(),
                BasisSet::Ibm
            ));
            assert!(compiled.depth() > 0);
            assert!(compiled.gate_count() > 0);
            assert!(compiled.cx_count() >= 2 * spec.total_cphase_count());
        }
    }

    #[test]
    fn qaim_reduces_swaps_versus_naive() {
        // Mean over instances: QAIM must insert fewer SWAPs than NAIVE on
        // sparse graphs (the Figure 7 effect).
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(5);
        let (mut naive_swaps, mut qaim_swaps) = (0usize, 0usize);
        for seed in 0..10 {
            let spec = spec_20_node(100 + seed, 0.15);
            naive_swaps +=
                compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng).swap_count();
            qaim_swaps +=
                compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng).swap_count();
        }
        assert!(
            qaim_swaps < naive_swaps,
            "QAIM {qaim_swaps} should beat NAIVE {naive_swaps}"
        );
    }

    #[test]
    fn ip_reduces_depth_versus_random_order() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(6);
        let (mut rand_depth, mut ip_depth) = (0usize, 0usize);
        for seed in 0..8 {
            let spec = spec_20_node(200 + seed, 0.4);
            rand_depth +=
                compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng).depth();
            ip_depth += compile(&spec, &topo, None, &CompileOptions::ip(), &mut rng).depth();
        }
        assert!(
            (ip_depth as f64) < 0.8 * rand_depth as f64,
            "IP depth {ip_depth} should be well below random-order {rand_depth}"
        );
    }

    #[test]
    fn ic_reduces_gate_count_versus_ip() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(7);
        let (mut ip_gates, mut ic_gates) = (0usize, 0usize);
        for seed in 0..8 {
            let spec = spec_20_node(300 + seed, 0.4);
            ip_gates += compile(&spec, &topo, None, &CompileOptions::ip(), &mut rng).gate_count();
            ic_gates += compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng).gate_count();
        }
        assert!(
            ic_gates < ip_gates,
            "IC gates {ic_gates} should beat IP {ip_gates}"
        );
    }

    #[test]
    fn vic_beats_ic_on_success_probability() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(8);
        let cal = Calibration::random_normal(&topo, 2e-2, 1.5e-2, &mut rng);
        let (mut sp_ic, mut sp_vic) = (0.0f64, 0.0f64);
        for seed in 0..16 {
            let spec = spec_20_node(400 + seed, 0.3);
            sp_ic += compile(&spec, &topo, Some(&cal), &CompileOptions::ic(), &mut rng)
                .success_probability(&cal);
            sp_vic += compile(&spec, &topo, Some(&cal), &CompileOptions::vic(), &mut rng)
                .success_probability(&cal);
        }
        assert!(
            sp_vic > sp_ic,
            "VIC success {sp_vic} should beat IC {sp_ic}"
        );
    }

    #[test]
    #[should_panic]
    fn vic_without_calibration_panics() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = compile(&spec, &topo, None, &CompileOptions::vic(), &mut rng);
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let compiled = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);
        assert!(compiled.elapsed() > Duration::ZERO);
    }

    #[test]
    fn packing_limit_flows_through_options() {
        let spec = spec_20_node(1, 0.5);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let limited = CompileOptions::ic().with_packing_limit(2);
        let c = compile(&spec, &topo, None, &limited, &mut rng);
        assert!(satisfies_coupling(c.physical(), &topo));
        assert_eq!(limited.packing_limit, Some(2));
    }
}
