//! The Figure 2 workflow: initial mapping → gate ordering / incremental
//! compilation → backend routing → hardware-compliant circuit and quality
//! metrics.
//!
//! The pipeline is organized around a [`HardwareContext`]: distance
//! matrices and the connectivity profile are computed once per target and
//! shared (by `Arc`) with every pass that needs them. The stages
//! themselves are trait objects selected from [`CompileOptions`] — see
//! [`crate::passes`]. Each run records a [`PassTrace`] of per-pass
//! wall-clock time and swap/depth deltas, and the fallible entry points
//! return [`CompileError`] values instead of panicking.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use qcircuit::basis::{to_basis, BasisSet};
use qcircuit::{Circuit, CircuitError, ParamValues};
use qhw::{Calibration, HardwareContext, Topology};
use qroute::{try_route, Layout, RoutingMetric};
use rand::{Rng, RngCore};

use crate::cancel::CancelToken;
use crate::error::CompileError;
use crate::explain::{Explain, ExplainLayer};
use crate::passes::{CompileContext, RoutingStage};
use crate::trace::{FallbackReason, FallbackRecord, PassTrace};
use crate::{ic, CompiledArtifact, CphaseOp, QaoaSpec};

/// Largest device for which fallback verification runs the full
/// state-vector equivalence check ([`qroute::routed_equivalent`]); larger
/// targets are verified for coupling compliance only (the equivalence
/// check simulates `2^n` amplitudes).
pub const FULL_VERIFY_MAX_QUBITS: usize = 16;

/// The initial logical→physical mapping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialMapping {
    /// Random placement (the paper's NAIVE baseline).
    Naive,
    /// Heaviest-qubit-first placement (the GreedyV baseline of \[59\]).
    GreedyV,
    /// Densest-subgraph topology selection (the qiskit optimizer baseline
    /// of §III).
    Dense,
    /// The paper's QAIM (§IV-A).
    Qaim,
}

/// The gate-ordering / compilation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compilation {
    /// Randomly ordered CPHASE sequence, compiled in one backend pass
    /// (the NAIVE / QAIM-only configurations of §V).
    RandomOrder,
    /// Instruction Parallelization: bin-packed gate order, one backend
    /// pass (§IV-B).
    Ip,
    /// Incremental Compilation with hop distances (§IV-C).
    IncrementalHops,
    /// Variation-aware Incremental Compilation with reliability-weighted
    /// distances (§IV-D). Requires calibration data.
    IncrementalReliability,
}

/// Resilience policy for one compilation run: the graceful-degradation
/// ladder, per-pass budgets, and the batch retry allowance.
///
/// With `fallback` set, a run that cannot complete on its requested
/// configuration steps down the ladder **VIC → IC → NAIVE** (reliability
/// metric → hop metric → random mapping/order) instead of erroring:
/// unusable or missing calibration, recoverable compile failures, and
/// budget exhaustion each cost one rung. Every fallback-produced circuit
/// is re-verified (coupling compliance always; full state-vector
/// equivalence up to [`FULL_VERIFY_MAX_QUBITS`]) before being returned,
/// and every step is recorded in the run's [`PassTrace`] and as
/// `qcompile/fallbacks*` qtrace counters.
///
/// The default policy is inert — no fallback, no budgets, no retries —
/// so existing behavior is unchanged unless opted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resilience {
    /// Degrade down the VIC → IC → NAIVE ladder instead of erroring.
    pub fallback: bool,
    /// Per-pass wall-clock budget; a pass finishing beyond it triggers a
    /// fallback (or [`CompileError::BudgetExceeded`] without `fallback`).
    /// The ladder's final rung is exempt: best effort beats no circuit.
    pub pass_budget: Option<Duration>,
    /// Maximum SWAPs a run may insert before the same treatment.
    pub swap_budget: Option<usize>,
    /// Extra attempts [`crate::compile_batch`] may make for a failing
    /// job; retries force `fallback` on and reseed the job's RNG stream
    /// deterministically.
    pub max_retries: u8,
}

/// Options controlling one compilation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Initial-mapping strategy.
    pub mapping: InitialMapping,
    /// Compilation mode.
    pub compilation: Compilation,
    /// Maximum CPHASE gates per formed layer (§V-H); `None` packs fully.
    pub packing_limit: Option<usize>,
    /// Fault-tolerance policy: degradation ladder, budgets, retries.
    pub resilience: Resilience,
}

impl CompileOptions {
    /// Options with full layer packing.
    pub fn new(mapping: InitialMapping, compilation: Compilation) -> Self {
        CompileOptions {
            mapping,
            compilation,
            packing_limit: None,
            resilience: Resilience::default(),
        }
    }

    /// The five named configurations evaluated in the paper (§V-F).
    pub fn naive() -> Self {
        CompileOptions::new(InitialMapping::Naive, Compilation::RandomOrder)
    }

    /// QAIM mapping with random gate order.
    pub fn qaim_only() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::RandomOrder)
    }

    /// IP on top of QAIM.
    pub fn ip() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::Ip)
    }

    /// IC on top of QAIM.
    pub fn ic() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::IncrementalHops)
    }

    /// VIC on top of QAIM.
    pub fn vic() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::IncrementalReliability)
    }

    /// Returns a copy with the given packing limit.
    pub fn with_packing_limit(mut self, limit: usize) -> Self {
        self.packing_limit = Some(limit);
        self
    }

    /// Returns a copy with the graceful-degradation ladder enabled.
    pub fn with_fallback(mut self) -> Self {
        self.resilience.fallback = true;
        self
    }

    /// Returns a copy with a per-pass wall-clock budget.
    pub fn with_pass_budget(mut self, budget: Duration) -> Self {
        self.resilience.pass_budget = Some(budget);
        self
    }

    /// Returns a copy with a per-run SWAP budget.
    pub fn with_swap_budget(mut self, budget: usize) -> Self {
        self.resilience.swap_budget = Some(budget);
        self
    }

    /// Returns a copy allowing up to `retries` batch retries.
    pub fn with_retries(mut self, retries: u8) -> Self {
        self.resilience.max_retries = retries;
        self
    }

    /// The graceful-degradation ladder for these options, starting with
    /// the options themselves: VIC → IC → NAIVE; IC and IP step straight
    /// to NAIVE; QAIM-only drops its mapping; NAIVE is terminal. This is
    /// exactly the rung sequence the fallback pipeline walks — serving
    /// layers reuse it to shed an overloaded request to a cheaper
    /// (possibly already-cached) configuration before rejecting.
    pub fn ladder(&self) -> Vec<CompileOptions> {
        degradation_rungs(self)
    }

    /// The paper configuration name without resilience decorations, used
    /// for fallback records (`"VIC"`, `"IC"`, `"NAIVE"`, …).
    fn config_name(&self) -> String {
        let mut plain = *self;
        plain.resilience = Resilience::default();
        plain.to_string()
    }
}

/// The NAIVE baseline configuration, as in the paper's comparisons.
impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::naive()
    }
}

/// The paper's configuration names: `NAIVE`, `QAIM`, `IP`, `IC`, `VIC`
/// (§V-F), with a `(limit=n)` suffix when a packing limit is set. Other
/// mapping/compilation combinations print both components.
impl fmt::Display for CompileOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.mapping, self.compilation) {
            (InitialMapping::Naive, Compilation::RandomOrder) => write!(f, "NAIVE")?,
            (InitialMapping::Qaim, Compilation::RandomOrder) => write!(f, "QAIM")?,
            (InitialMapping::Qaim, Compilation::Ip) => write!(f, "IP")?,
            (InitialMapping::Qaim, Compilation::IncrementalHops) => write!(f, "IC")?,
            (InitialMapping::Qaim, Compilation::IncrementalReliability) => write!(f, "VIC")?,
            (m, c) => write!(f, "{m:?}+{c:?}")?,
        }
        if let Some(limit) = self.packing_limit {
            write!(f, "(limit={limit})")?;
        }
        if self.resilience.fallback {
            write!(f, "+fallback")?;
        }
        Ok(())
    }
}

/// A compiled QAOA circuit plus the quality metrics the paper reports.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    physical: Circuit,
    basis: Circuit,
    initial_layout: Layout,
    final_layout: Layout,
    swap_count: usize,
    // Instructions carrying symbolic angles across both circuits,
    // counted once at construction so per-iteration rebinds never scan.
    parametric_gates: usize,
    // Arc-shared so rebinding an artifact carries the (immutable)
    // compile-time metadata at refcount cost instead of a deep clone.
    trace: Arc<PassTrace>,
    explain: Arc<Explain>,
}

impl CompiledCircuit {
    /// Reassembles a compiled circuit from externally persisted parts —
    /// the constructor an artifact store (disk spill, warm-start
    /// recovery) uses after deserializing what [`CompiledCircuit`]
    /// accessors expose. The per-run [`PassTrace`] is not persisted
    /// (wall-clock data is meaningless across restarts), so the
    /// recovered circuit carries an empty trace and a minimal
    /// [`Explain`] report whose `config` is `"RECOVERED"`; circuit
    /// content, layouts, swap count and parametric-gate behavior are
    /// identical to the original.
    pub fn from_recovered_parts(
        physical: Circuit,
        basis: Circuit,
        initial_layout: Layout,
        final_layout: Layout,
        swap_count: usize,
    ) -> CompiledCircuit {
        let trace = PassTrace::new();
        let basis_depth = basis.depth();
        let explain = Explain::from_parts(
            "RECOVERED".to_owned(),
            initial_layout.num_logical(),
            initial_layout.num_physical(),
            initial_layout.as_mapping().to_vec(),
            final_layout.as_mapping().to_vec(),
            &trace,
            Vec::new(),
            swap_count,
            basis_depth,
            basis.gate_count(),
            basis.count_gate("cx"),
        );
        let parametric_gates = physical
            .iter()
            .chain(basis.iter())
            .filter(|i| i.gate().is_parametric())
            .count();
        CompiledCircuit {
            physical,
            basis,
            initial_layout,
            final_layout,
            swap_count,
            parametric_gates,
            trace: Arc::new(trace),
            explain: Arc::new(explain),
        }
    }

    /// The hardware-compliant circuit in IR gates (Rzz/SWAP preserved).
    pub fn physical(&self) -> &Circuit {
        &self.physical
    }

    /// The circuit lowered to the IBM basis `{U1, U2, U3, CNOT}` — the
    /// paper's depth/gate-count metrics are measured here.
    pub fn basis_circuit(&self) -> &Circuit {
        &self.basis
    }

    /// The initial logical→physical mapping used.
    pub fn initial_layout(&self) -> &Layout {
        &self.initial_layout
    }

    /// The mapping after all SWAP insertion.
    pub fn final_layout(&self) -> &Layout {
        &self.final_layout
    }

    /// Circuit depth of the basis-lowered circuit.
    pub fn depth(&self) -> usize {
        self.basis.depth()
    }

    /// Gate count (excluding measurements) of the basis-lowered circuit.
    pub fn gate_count(&self) -> usize {
        self.basis.gate_count()
    }

    /// CNOT count of the basis-lowered circuit.
    pub fn cx_count(&self) -> usize {
        self.basis.count_gate("cx")
    }

    /// Number of SWAPs the router inserted.
    pub fn swap_count(&self) -> usize {
        self.swap_count
    }

    /// Total wall-clock compilation time (the sum over all passes).
    pub fn elapsed(&self) -> Duration {
        self.trace.total_elapsed()
    }

    /// Per-pass wall-clock time and swap/depth deltas for this run.
    pub fn trace(&self) -> &PassTrace {
        &self.trace
    }

    /// The structured explain report for this run: initial layout,
    /// per-layer membership and SWAP cost, fallback narrative. Contains
    /// no wall-clock data, so its JSON/text renderings are
    /// byte-reproducible for a fixed seed.
    pub fn explain(&self) -> &Explain {
        &self.explain
    }

    /// Success probability of the basis circuit under `calibration` (§II).
    pub fn success_probability(&self, calibration: &Calibration) -> f64 {
        qroute::success_probability(&self.basis, calibration)
    }

    /// Whether the compiled circuits still carry symbolic angles.
    pub fn is_parametric(&self) -> bool {
        self.physical.is_parametric()
    }

    /// Instructions carrying symbolic angles across the physical and
    /// basis circuits — exactly what one [`CompiledCircuit::bind`] call
    /// substitutes (and reports as `qcompile/rebind_gates`). Zero for a
    /// bound circuit.
    pub fn parametric_gate_count(&self) -> usize {
        self.parametric_gates
    }

    /// Substitutes `values` into every symbolic angle of the physical and
    /// basis circuits, carrying layouts, SWAP count, pass trace and the
    /// explain report over **verbatim** — no mapping, ordering or routing
    /// work happens here, which is the whole point of compiling a
    /// parametric spec once. Counted as one `qcompile/rebind` (plus the
    /// substituted gate count under `qcompile/rebind_gates`) in qtrace.
    ///
    /// # Errors
    ///
    /// [`CompileError::UnboundParameters`] when `values` does not cover
    /// the circuits' parameters.
    pub fn bind(&self, values: &ParamValues) -> Result<CompiledCircuit, CompileError> {
        let map_err = |e: CircuitError| match e {
            CircuitError::ParamCountMismatch { expected, found } => {
                CompileError::UnboundParameters { expected, found }
            }
            CircuitError::UnboundParameter { param, provided } => CompileError::UnboundParameters {
                expected: param as usize + 1,
                found: provided,
            },
            other => CompileError::Internal(other.to_string()),
        };
        let physical = self.physical.bind(values).map_err(map_err)?;
        let basis = self.basis.bind(values).map_err(map_err)?;
        let q = qtrace::global();
        if q.is_enabled() {
            q.add("qcompile/rebind", 1);
            q.add("qcompile/rebind_gates", self.parametric_gates as u64);
        }
        Ok(CompiledCircuit {
            physical,
            basis,
            initial_layout: self.initial_layout.clone(),
            final_layout: self.final_layout.clone(),
            swap_count: self.swap_count,
            parametric_gates: 0,
            trace: Arc::clone(&self.trace),
            explain: Arc::clone(&self.explain),
        })
    }
}

/// Compiles a QAOA program for `topology` under `options`.
///
/// `calibration` is required for [`Compilation::IncrementalReliability`]
/// and otherwise unused.
///
/// Resolves the [`HardwareContext`] through the process-wide
/// [`HardwareContext::shared`] cache, so repeated calls against the same
/// `(topology, calibration epoch)` pair pay Floyd–Warshall once; hold a
/// context yourself with [`try_compile_with_context`] (or use
/// [`crate::compile_batch`]) to skip even the cache probe.
///
/// # Panics
///
/// Panics if VIC is requested without calibration, the program does not
/// fit the topology, or `options.packing_limit` is `Some(0)`. Use
/// [`try_compile`] to receive these as [`CompileError`] values instead.
pub fn compile<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    calibration: Option<&Calibration>,
    options: &CompileOptions,
    rng: &mut R,
) -> CompiledCircuit {
    match try_compile(spec, topology, calibration, options, rng) {
        Ok(compiled) => compiled,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`compile`]: structured errors instead of panics.
pub fn try_compile<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    calibration: Option<&Calibration>,
    options: &CompileOptions,
    rng: &mut R,
) -> Result<CompiledCircuit, CompileError> {
    // The shared cache means repeated per-call compiles against the same
    // (topology, calibration epoch) — retry loops, ladders, scripts that
    // never build a context — pay Floyd–Warshall once, not per call.
    let context = HardwareContext::shared(topology, calibration);
    try_compile_with_context(spec, &context, options, rng)
}

/// Compiles against a prebuilt [`HardwareContext`], sharing its cached
/// distance matrices and connectivity profile across every pass — no
/// Floyd–Warshall or profiling recomputation happens during the run.
///
/// This is the core entry point; [`compile`]/[`try_compile`] wrap it, and
/// [`crate::compile_batch`] fans it out across worker threads. When
/// `options.resilience.fallback` is set, failures degrade down the
/// VIC → IC → NAIVE ladder (see [`Resilience`]) instead of erroring; a
/// disconnected coupling graph is reported up front as
/// [`CompileError::DisconnectedTopology`] on every configuration.
pub fn try_compile_with_context<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    context: &HardwareContext,
    options: &CompileOptions,
    rng: &mut R,
) -> Result<CompiledCircuit, CompileError> {
    try_compile_with_context_cancellable(spec, context, options, rng, CancelToken::never())
}

/// [`try_compile_with_context`] with a cooperative [`CancelToken`].
///
/// The pipeline polls `cancel` at every pass boundary (the same points
/// the per-pass budgets are checked) and before each degradation-ladder
/// rung; a tripped token aborts the run with
/// [`CompileError::Cancelled`] without attempting further rungs. This
/// is how a serving layer bounds a wedged or slow compile: trip the
/// token from the admission thread and the worker returns within one
/// pass.
pub fn try_compile_with_context_cancellable<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    context: &HardwareContext,
    options: &CompileOptions,
    rng: &mut R,
    cancel: &CancelToken,
) -> Result<CompiledCircuit, CompileError> {
    // Erase the caller's RNG type once so trait-object passes can share it.
    let mut reborrow: &mut R = rng;
    let rng: &mut dyn RngCore = &mut reborrow;
    compile_with_ladder(spec, context, options, rng, cancel)
}

/// Compiles a (typically parametric) QAOA program into a reusable
/// [`CompiledArtifact`]: compile once, then [`CompiledArtifact::bind`]
/// per parameter point with zero mapping/ordering/routing work.
///
/// # Panics
///
/// Same conditions as [`compile`]; use [`try_compile_artifact`] for
/// structured errors.
pub fn compile_artifact<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    calibration: Option<&Calibration>,
    options: &CompileOptions,
    rng: &mut R,
) -> CompiledArtifact {
    match try_compile_artifact(spec, topology, calibration, options, rng) {
        Ok(artifact) => artifact,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`compile_artifact`].
pub fn try_compile_artifact<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    calibration: Option<&Calibration>,
    options: &CompileOptions,
    rng: &mut R,
) -> Result<CompiledArtifact, CompileError> {
    let context = HardwareContext::shared(topology, calibration);
    try_compile_artifact_with_context(spec, &context, options, rng)
}

/// [`try_compile_artifact`] against a prebuilt [`HardwareContext`].
pub fn try_compile_artifact_with_context<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    context: &HardwareContext,
    options: &CompileOptions,
    rng: &mut R,
) -> Result<CompiledArtifact, CompileError> {
    let template = try_compile_with_context(spec, context, options, rng)?;
    Ok(CompiledArtifact::new(template, spec.num_params()))
}

/// [`try_compile_artifact_with_context`] with a cooperative
/// [`CancelToken`] — see
/// [`try_compile_with_context_cancellable`] for the polling contract.
pub fn try_compile_artifact_with_context_cancellable<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    context: &HardwareContext,
    options: &CompileOptions,
    rng: &mut R,
    cancel: &CancelToken,
) -> Result<CompiledArtifact, CompileError> {
    let template = try_compile_with_context_cancellable(spec, context, options, rng, cancel)?;
    Ok(CompiledArtifact::new(template, spec.num_params()))
}

/// The degradation rungs for `options`, starting with `options` itself:
/// VIC steps down to IC then NAIVE; IC/IP step down to NAIVE; NAIVE has
/// nowhere lower to go.
fn degradation_rungs(options: &CompileOptions) -> Vec<CompileOptions> {
    let mut rungs = vec![*options];
    let naive = {
        let mut naive = CompileOptions::naive();
        naive.resilience = options.resilience;
        naive
    };
    match options.compilation {
        Compilation::IncrementalReliability => {
            let mut ic = *options;
            ic.compilation = Compilation::IncrementalHops;
            rungs.push(ic);
            rungs.push(naive);
        }
        Compilation::IncrementalHops | Compilation::Ip => rungs.push(naive),
        Compilation::RandomOrder => {
            if options.mapping != InitialMapping::Naive {
                rungs.push(naive);
            }
        }
    }
    rungs
}

/// Maps a rung failure to the ladder-step reason recorded in traces and
/// telemetry.
fn fallback_reason(error: &CompileError) -> FallbackReason {
    match error {
        CompileError::MissingCalibration => FallbackReason::MissingCalibration,
        CompileError::UnusableCalibration(_) => FallbackReason::UnusableCalibration,
        CompileError::BudgetExceeded { pass: "swaps" } => FallbackReason::SwapBudget,
        CompileError::BudgetExceeded { .. } => FallbackReason::PassBudget,
        CompileError::Verification { .. } => FallbackReason::VerificationFailed,
        _ => FallbackReason::CompileFailed,
    }
}

/// Post-routing verification of a fallback-produced circuit: coupling
/// compliance always, full state-vector equivalence on devices up to
/// [`FULL_VERIFY_MAX_QUBITS`] qubits.
fn verify_fallback(
    spec: &QaoaSpec,
    context: &HardwareContext,
    compiled: CompiledCircuit,
) -> Result<CompiledCircuit, CompileError> {
    if !qroute::satisfies_coupling(compiled.physical(), context.topology()) {
        return Err(CompileError::Verification { stage: "coupling" });
    }
    // Symbolic angles have no amplitudes to compare; parametric specs are
    // verified for coupling compliance only (the equivalence of a rebind
    // follows from the bound-vs-parametric tests in `param_equiv`).
    if context.num_qubits() <= FULL_VERIFY_MAX_QUBITS && !spec.is_parametric() {
        // CPHASEs commute, so the spec-order logical circuit is a valid
        // equivalence reference for every gate ordering a rung chose.
        let logical = build_logical_circuit(spec, |ops| ops.to_vec());
        if !qroute::routed_equivalent(
            &logical,
            compiled.physical(),
            compiled.initial_layout(),
            compiled.final_layout(),
        ) {
            return Err(CompileError::Verification {
                stage: "equivalence",
            });
        }
    }
    Ok(compiled)
}

/// Runs the degradation ladder: try each rung in turn, verifying any
/// fallback product, until a circuit is produced or the ladder (or the
/// recoverability of the failure) is exhausted.
fn compile_with_ladder(
    spec: &QaoaSpec,
    context: &HardwareContext,
    options: &CompileOptions,
    rng: &mut dyn RngCore,
    cancel: &CancelToken,
) -> Result<CompiledCircuit, CompileError> {
    if !context.is_connected() {
        return Err(CompileError::DisconnectedTopology {
            components: context.component_count(),
        });
    }
    let rungs = degradation_rungs(options);
    let allow = options.resilience.fallback;
    let mut steps: Vec<FallbackRecord> = Vec::new();
    let mut rung = 0usize;
    loop {
        // A tripped token stops the ladder between rungs as well as
        // inside them: a cancelled caller wants no rung's answer.
        cancel.check()?;
        let opts = &rungs[rung];
        let last = rung + 1 == rungs.len();
        // Budgets are enforced wherever a lower rung remains; the final
        // rung of an enabled ladder is best-effort (a late circuit beats
        // no circuit). Without the ladder, budgets are hard errors.
        let enforce_budgets = !(allow && last);
        let attempt =
            compile_once(spec, context, opts, rng, enforce_budgets, cancel).and_then(|c| {
                if rung > 0 {
                    verify_fallback(spec, context, c)
                } else {
                    Ok(c)
                }
            });
        match attempt {
            Ok(mut compiled) => {
                if !steps.is_empty() {
                    Arc::make_mut(&mut compiled.trace).adopt_fallbacks(steps);
                    // Keep the explain artifact's narrative in sync with
                    // the authoritative fallback history on the trace.
                    Arc::make_mut(&mut compiled.explain).fallbacks =
                        compiled.trace.fallbacks().to_vec();
                }
                return Ok(compiled);
            }
            Err(e) => {
                if !allow || last || !e.recoverable() {
                    return Err(e);
                }
                let reason = fallback_reason(&e);
                let q = qtrace::global();
                if q.is_enabled() {
                    q.add("qcompile/fallbacks", 1);
                    q.add(&format!("qcompile/fallbacks/{}", reason.slug()), 1);
                }
                steps.push(FallbackRecord {
                    from: rungs[rung].config_name(),
                    to: rungs[rung + 1].config_name(),
                    reason,
                });
                rung += 1;
            }
        }
    }
}

/// Checks a finished pass against the per-pass budget.
fn check_pass_budget(
    options: &CompileOptions,
    enforce: bool,
    pass: &'static str,
    elapsed: Duration,
) -> Result<(), CompileError> {
    match options.resilience.pass_budget {
        Some(budget) if enforce && elapsed > budget => Err(CompileError::BudgetExceeded { pass }),
        _ => Ok(()),
    }
}

/// One compilation attempt on exactly the given configuration — no
/// ladder, no verification; budget checks when `enforce_budgets`,
/// cancellation polled at every pass boundary.
fn compile_once(
    spec: &QaoaSpec,
    context: &HardwareContext,
    options: &CompileOptions,
    rng: &mut dyn RngCore,
    enforce_budgets: bool,
    cancel: &CancelToken,
) -> Result<CompiledCircuit, CompileError> {
    let cx = CompileContext {
        spec,
        hw: context,
        options,
    };
    // Every pass runs under a qtrace span; `PassTrace` is the per-run
    // view over the same measurements (the span guard hands its elapsed
    // time back even when the global recorder is disabled), while the
    // recorder aggregates across runs into the run manifest.
    let run = qtrace::global().span("qcompile/compile");
    let mut trace = PassTrace::new();

    let mapping_pass = options.mapping.pass();
    let pass = run.child(mapping_pass.name());
    let initial_layout = mapping_pass.run(&cx, rng)?;
    let elapsed = pass.finish();
    trace.push(mapping_pass.name(), elapsed, 0, None);
    check_pass_budget(options, enforce_budgets, mapping_pass.name(), elapsed)?;
    cancel.check()?;

    let (physical, final_layout, swap_count, layers) = match options.compilation.routing_stage() {
        RoutingStage::Full => {
            let ordering = options
                .compilation
                .ordering_pass()
                .expect("full-circuit routing always pairs with an ordering pass");
            let pass = run.child(ordering.name());
            let logical = build_logical_circuit(spec, |ops| ordering.order_level(&cx, ops, rng));
            let elapsed = pass.finish();
            trace.push(ordering.name(), elapsed, 0, None);
            check_pass_budget(options, enforce_budgets, ordering.name(), elapsed)?;
            cancel.check()?;

            let pass = run.child("route");
            let metric = RoutingMetric::from_context(context, false)
                .expect("the hop metric never needs calibration");
            let routed = try_route(
                &logical,
                context.topology(),
                initial_layout.clone(),
                &metric,
            )?;
            let elapsed = pass.finish();
            trace.push(
                "route",
                elapsed,
                routed.swap_count,
                Some(routed.circuit.depth()),
            );
            check_pass_budget(options, enforce_budgets, "route", elapsed)?;
            // ASAP layers of the full circuit may span QAOA levels and
            // interleave with mixer walls, so level and per-layer depth
            // are not attributable here. The stats are consumed — the
            // per-layer gate lists move into the report without copies.
            let layers = routed
                .layer_stats
                .into_iter()
                .map(|l| ExplainLayer {
                    level: None,
                    gates: l.gates,
                    swaps: l.swaps,
                    routed_depth: None,
                })
                .collect();
            (
                routed.circuit,
                routed.final_layout,
                routed.swap_count,
                layers,
            )
        }
        RoutingStage::Incremental { variation_aware } => {
            let name = if variation_aware {
                "incremental-reliability"
            } else {
                "incremental-hops"
            };
            let pass = run.child(name);
            // A quarantined calibration table reads as "uncalibrated" to
            // the metric; report *why* so the ladder (and the caller) can
            // tell a corrupt table from an absent one.
            let metric = RoutingMetric::from_context(context, variation_aware).ok_or_else(
                || match context.calibration_issue() {
                    Some(issue) => CompileError::UnusableCalibration(*issue),
                    None => CompileError::MissingCalibration,
                },
            )?;
            let r = ic::try_compile_incremental_with(
                spec,
                context.topology(),
                initial_layout.clone(),
                &metric,
                options.packing_limit,
                true,
                rng,
            )?;
            let elapsed = pass.finish();
            trace.push(name, elapsed, r.swap_count, Some(r.circuit.depth()));
            check_pass_budget(options, enforce_budgets, name, elapsed)?;
            // The result is consumed here, so the per-layer gate lists
            // move into the report without copies.
            let layers = r
                .layers
                .into_iter()
                .map(|l| ExplainLayer {
                    level: Some(l.level),
                    gates: l.gates,
                    swaps: l.swaps,
                    routed_depth: Some(l.routed_depth),
                })
                .collect();
            (r.circuit, r.final_layout, r.swap_count, layers)
        }
    };

    if enforce_budgets {
        if let Some(budget) = options.resilience.swap_budget {
            if swap_count > budget {
                return Err(CompileError::BudgetExceeded { pass: "swaps" });
            }
        }
    }
    cancel.check()?;

    let pass = run.child("lower-to-basis");
    let basis = to_basis(&physical, BasisSet::Ibm)
        .map_err(|e| CompileError::BasisLowering(e.to_string()))?;
    // Depth is an O(gates) walk; compute it once for the pass trace, the
    // telemetry gauge and the explain report.
    let basis_depth = basis.depth();
    trace.push("lower-to-basis", pass.finish(), 0, Some(basis_depth));

    let q = qtrace::global();
    if q.is_enabled() {
        q.add("qcompile/runs", 1);
        q.add("qcompile/swaps", swap_count as u64);
        q.gauge_max("qcompile/basis_depth", basis_depth as u64);
        q.observe("qcompile/run_swaps", swap_count as u64);
    }
    run.finish();

    let layout_vec = |layout: &Layout| (0..spec.num_qubits()).map(|q| layout.phys(q)).collect();
    let explain = Explain::from_parts(
        options.config_name(),
        spec.num_qubits(),
        context.num_qubits(),
        layout_vec(&initial_layout),
        layout_vec(&final_layout),
        &trace,
        layers,
        swap_count,
        basis_depth,
        basis.gate_count(),
        basis.count_gate("cx"),
    );

    let parametric_gates = physical
        .iter()
        .chain(basis.iter())
        .filter(|i| i.gate().is_parametric())
        .count();
    Ok(CompiledCircuit {
        physical,
        basis,
        initial_layout,
        final_layout,
        swap_count,
        parametric_gates,
        trace: Arc::new(trace),
        explain: Arc::new(explain),
    })
}

/// Builds the full logical circuit with each level's CPHASE list passed
/// through `order`.
fn build_logical_circuit<F>(spec: &QaoaSpec, mut order: F) -> Circuit
where
    F: FnMut(&[CphaseOp]) -> Vec<CphaseOp>,
{
    let n = spec.num_qubits();
    let mut c = Circuit::new(n);
    c.set_param_table(spec.param_table().clone());
    for q in 0..n {
        c.h(q);
    }
    for (level, (ops, beta)) in spec.levels().iter().enumerate() {
        for op in order(ops) {
            c.rzz(op.angle, op.a, op.b);
        }
        for &(q, angle) in spec.field_terms(level) {
            c.rz(angle, q);
        }
        for q in 0..n {
            c.rx(beta.scaled(2.0), q);
        }
    }
    if spec.measure() {
        c.measure_all();
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaoa::{MaxCut, QaoaParams};
    use qroute::satisfies_coupling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec_20_node(seed: u64, p_edge: f64) -> QaoaSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = qgraph::generators::connected_erdos_renyi(16, p_edge, 1000, &mut rng).unwrap();
        let problem = MaxCut::without_optimum(g);
        QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.5, 0.3), true)
    }

    #[test]
    fn public_ladder_matches_fallback_rungs() {
        // The serving layer keys shed decisions off this exact sequence.
        let vic = CompileOptions::vic().with_fallback();
        assert_eq!(vic.ladder(), degradation_rungs(&vic));
        let names: Vec<String> = vic.ladder().iter().map(|o| o.config_name()).collect();
        assert_eq!(names, ["VIC", "IC", "NAIVE"]);
        assert_eq!(CompileOptions::ic().ladder().len(), 2);
        assert_eq!(CompileOptions::ip().ladder().len(), 2);
        assert_eq!(CompileOptions::qaim_only().ladder().len(), 2);
        assert_eq!(CompileOptions::naive().ladder(), [CompileOptions::naive()]);
        // Resilience policy rides along unchanged on every rung.
        assert!(vic.ladder().iter().all(|o| o.resilience.fallback));
    }

    #[test]
    fn all_strategies_produce_compliant_circuits() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let cal = Calibration::random_normal(&topo, 1e-2, 5e-3, &mut rng);
        for options in [
            CompileOptions::naive(),
            CompileOptions::qaim_only(),
            CompileOptions::ip(),
            CompileOptions::ic(),
            CompileOptions::vic(),
        ] {
            let compiled = compile(&spec, &topo, Some(&cal), &options, &mut rng);
            assert!(
                satisfies_coupling(compiled.physical(), &topo),
                "{options} violates coupling"
            );
            assert!(qcircuit::basis::is_in_basis(
                compiled.basis_circuit(),
                BasisSet::Ibm
            ));
            assert!(compiled.depth() > 0);
            assert!(compiled.gate_count() > 0);
            assert!(compiled.cx_count() >= 2 * spec.total_cphase_count());
        }
    }

    #[test]
    fn qaim_reduces_swaps_versus_naive() {
        // Mean over instances: QAIM must insert fewer SWAPs than NAIVE on
        // sparse graphs (the Figure 7 effect).
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(5);
        let (mut naive_swaps, mut qaim_swaps) = (0usize, 0usize);
        for seed in 0..10 {
            let spec = spec_20_node(100 + seed, 0.15);
            naive_swaps +=
                compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng).swap_count();
            qaim_swaps +=
                compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng).swap_count();
        }
        assert!(
            qaim_swaps < naive_swaps,
            "QAIM {qaim_swaps} should beat NAIVE {naive_swaps}"
        );
    }

    #[test]
    fn ip_reduces_depth_versus_random_order() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(6);
        let (mut rand_depth, mut ip_depth) = (0usize, 0usize);
        for seed in 0..8 {
            let spec = spec_20_node(200 + seed, 0.4);
            rand_depth +=
                compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng).depth();
            ip_depth += compile(&spec, &topo, None, &CompileOptions::ip(), &mut rng).depth();
        }
        assert!(
            (ip_depth as f64) < 0.8 * rand_depth as f64,
            "IP depth {ip_depth} should be well below random-order {rand_depth}"
        );
    }

    #[test]
    fn ic_reduces_gate_count_versus_ip() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(7);
        let (mut ip_gates, mut ic_gates) = (0usize, 0usize);
        for seed in 0..8 {
            let spec = spec_20_node(300 + seed, 0.4);
            ip_gates += compile(&spec, &topo, None, &CompileOptions::ip(), &mut rng).gate_count();
            ic_gates += compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng).gate_count();
        }
        assert!(
            ic_gates < ip_gates,
            "IC gates {ic_gates} should beat IP {ip_gates}"
        );
    }

    #[test]
    fn vic_beats_ic_on_success_probability() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(8);
        let cal = Calibration::random_normal(&topo, 2e-2, 1.5e-2, &mut rng);
        let (mut sp_ic, mut sp_vic) = (0.0f64, 0.0f64);
        for seed in 0..16 {
            let spec = spec_20_node(400 + seed, 0.3);
            sp_ic += compile(&spec, &topo, Some(&cal), &CompileOptions::ic(), &mut rng)
                .success_probability(&cal);
            sp_vic += compile(&spec, &topo, Some(&cal), &CompileOptions::vic(), &mut rng)
                .success_probability(&cal);
        }
        assert!(
            sp_vic > sp_ic,
            "VIC success {sp_vic} should beat IC {sp_ic}"
        );
    }

    #[test]
    #[should_panic]
    fn vic_without_calibration_panics() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = compile(&spec, &topo, None, &CompileOptions::vic(), &mut rng);
    }

    #[test]
    fn vic_without_calibration_errors_structurally() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let err = try_compile(&spec, &topo, None, &CompileOptions::vic(), &mut rng).unwrap_err();
        assert_eq!(err, CompileError::MissingCalibration);
        let context = HardwareContext::new(topo);
        let err = try_compile_with_context(&spec, &context, &CompileOptions::vic(), &mut rng)
            .unwrap_err();
        assert_eq!(err, CompileError::MissingCalibration);
    }

    #[test]
    fn zero_packing_limit_errors_structurally() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let options = CompileOptions::ic().with_packing_limit(0);
        let err = try_compile(&spec, &topo, None, &options, &mut rng).unwrap_err();
        assert_eq!(err, CompileError::ZeroPackingLimit);
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let compiled = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);
        assert!(compiled.elapsed() > Duration::ZERO);
    }

    #[test]
    fn pass_trace_names_every_stage() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);

        let ic = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);
        let names: Vec<&str> = ic.trace().records().iter().map(|r| r.name).collect();
        assert_eq!(names, ["qaim", "incremental-hops", "lower-to-basis"]);
        // The swap delta is attributed to the routing pass, and the trace
        // total matches the circuit's headline swap count.
        assert_eq!(ic.trace().swaps_added(), ic.swap_count());
        assert_eq!(
            ic.trace().find("incremental-hops").unwrap().swaps_added,
            ic.swap_count()
        );
        assert_eq!(
            ic.trace().find("lower-to-basis").unwrap().depth_after,
            Some(ic.depth())
        );

        let ip = compile(&spec, &topo, None, &CompileOptions::ip(), &mut rng);
        let names: Vec<&str> = ip.trace().records().iter().map(|r| r.name).collect();
        assert_eq!(names, ["qaim", "ip-pack", "route", "lower-to-basis"]);

        let naive = compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng);
        let names: Vec<&str> = naive.trace().records().iter().map(|r| r.name).collect();
        assert_eq!(names, ["naive", "random-order", "route", "lower-to-basis"]);
    }

    #[test]
    fn context_compile_matches_topology_compile() {
        // Same seed, same program: the context-sharing entry point must be
        // stream- and output-identical to the per-call path.
        let spec = spec_20_node(3, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut cal_rng = StdRng::seed_from_u64(4);
        let cal = Calibration::random_normal(&topo, 2e-2, 1.5e-2, &mut cal_rng);
        let context = HardwareContext::with_calibration(topo.clone(), cal.clone());
        for options in [
            CompileOptions::naive(),
            CompileOptions::ip(),
            CompileOptions::ic(),
            CompileOptions::vic(),
        ] {
            let mut rng_a = StdRng::seed_from_u64(77);
            let a = compile(&spec, &topo, Some(&cal), &options, &mut rng_a);
            let mut rng_b = StdRng::seed_from_u64(77);
            let b = try_compile_with_context(&spec, &context, &options, &mut rng_b).unwrap();
            assert_eq!(a.physical(), b.physical(), "{options}");
            assert_eq!(a.basis_circuit(), b.basis_circuit());
            assert_eq!(a.initial_layout(), b.initial_layout());
            assert_eq!(a.final_layout(), b.final_layout());
            assert_eq!(a.swap_count(), b.swap_count());
        }
    }

    #[test]
    fn default_options_are_the_naive_baseline() {
        assert_eq!(CompileOptions::default(), CompileOptions::naive());
    }

    #[test]
    fn display_uses_paper_configuration_names() {
        assert_eq!(CompileOptions::naive().to_string(), "NAIVE");
        assert_eq!(CompileOptions::qaim_only().to_string(), "QAIM");
        assert_eq!(CompileOptions::ip().to_string(), "IP");
        assert_eq!(CompileOptions::ic().to_string(), "IC");
        assert_eq!(CompileOptions::vic().to_string(), "VIC");
        assert_eq!(
            CompileOptions::ic().with_packing_limit(9).to_string(),
            "IC(limit=9)"
        );
        assert_eq!(
            CompileOptions::new(InitialMapping::GreedyV, Compilation::Ip).to_string(),
            "GreedyV+Ip"
        );
    }

    #[test]
    fn ladder_degrades_vic_on_corrupt_calibration() {
        use qhw::fault::{FaultInjector, FaultKind};
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let good = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
        let bad = FaultInjector::new(11).corrupt_calibration(&topo, &good, FaultKind::NanRate);
        let context = HardwareContext::with_calibration(topo.clone(), bad);

        // Without the ladder the corruption is a structured hard error.
        let mut rng = StdRng::seed_from_u64(2);
        let err = try_compile_with_context(&spec, &context, &CompileOptions::vic(), &mut rng)
            .unwrap_err();
        assert!(matches!(err, CompileError::UnusableCalibration(_)));

        // With it, VIC steps down to IC and still delivers a verified
        // circuit, with the step on the record.
        let mut rng = StdRng::seed_from_u64(2);
        let options = CompileOptions::vic().with_fallback();
        let compiled = try_compile_with_context(&spec, &context, &options, &mut rng).unwrap();
        assert!(satisfies_coupling(compiled.physical(), &topo));
        assert!(compiled.trace().degraded());
        let steps = compiled.trace().fallbacks();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].from, "VIC");
        assert_eq!(steps[0].to, "IC");
        assert_eq!(steps[0].reason, crate::FallbackReason::UnusableCalibration);
        // The IC rung compiled, so the pass trace is IC-shaped.
        assert!(compiled.trace().find("incremental-hops").is_some());
    }

    #[test]
    fn ladder_degrades_vic_on_missing_calibration() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let context = HardwareContext::new(topo);
        let mut rng = StdRng::seed_from_u64(2);
        let options = CompileOptions::vic().with_fallback();
        let compiled = try_compile_with_context(&spec, &context, &options, &mut rng).unwrap();
        let steps = compiled.trace().fallbacks();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].reason, crate::FallbackReason::MissingCalibration);
    }

    #[test]
    fn disconnected_topology_is_fatal_even_with_fallback() {
        use qhw::fault::{FaultInjector, FaultKind};
        let spec = spec_20_node(1, 0.3);
        let split = FaultInjector::new(3)
            .degrade_topology(&Topology::ibmq_20_tokyo(), FaultKind::SplitComponent);
        let context = HardwareContext::new(split);
        assert!(!context.is_connected());
        for options in [
            CompileOptions::naive(),
            CompileOptions::ic().with_fallback(),
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let err = try_compile_with_context(&spec, &context, &options, &mut rng).unwrap_err();
            match err {
                CompileError::DisconnectedTopology { components } => assert!(components >= 2),
                other => panic!("expected DisconnectedTopology, got {other:?}"),
            }
        }
    }

    #[test]
    fn exhausted_budget_degrades_to_best_effort_naive() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let context = HardwareContext::new(topo.clone());

        // A zero pass budget is deterministically exceeded (passes take
        // nonzero time); without fallback it is a hard error...
        let strict = CompileOptions::ic().with_pass_budget(Duration::ZERO);
        let mut rng = StdRng::seed_from_u64(2);
        let err = try_compile_with_context(&spec, &context, &strict, &mut rng).unwrap_err();
        assert!(matches!(err, CompileError::BudgetExceeded { .. }));

        // ...with fallback the final rung is budget-exempt, so the run
        // still delivers a verified circuit and records the step.
        let mut rng = StdRng::seed_from_u64(2);
        let resilient = strict.with_fallback();
        let compiled = try_compile_with_context(&spec, &context, &resilient, &mut rng).unwrap();
        assert!(satisfies_coupling(compiled.physical(), &topo));
        assert!(compiled.trace().degraded());
        assert_eq!(
            compiled.trace().fallbacks()[0].reason,
            crate::FallbackReason::PassBudget
        );

        // A zero swap budget behaves the same way via the swap reason.
        let mut rng = StdRng::seed_from_u64(2);
        let swap_capped = CompileOptions::ic().with_swap_budget(0).with_fallback();
        let compiled = try_compile_with_context(&spec, &context, &swap_capped, &mut rng).unwrap();
        if compiled.trace().degraded() {
            assert_eq!(
                compiled.trace().fallbacks()[0].reason,
                crate::FallbackReason::SwapBudget
            );
        }
    }

    #[test]
    fn fallback_steps_are_counted_in_qtrace() {
        let spec = spec_20_node(1, 0.3);
        let context = HardwareContext::new(Topology::ibmq_20_tokyo());
        let options = CompileOptions::vic().with_fallback();
        let q = qtrace::global();
        q.enable();
        let mut rng = StdRng::seed_from_u64(2);
        let compiled = try_compile_with_context(&spec, &context, &options, &mut rng).unwrap();
        q.disable();
        let manifest = q.take_manifest("pipeline-fallback-counters");
        assert!(compiled.trace().degraded());
        // The recorder is process-global and other tests may have recorded
        // concurrently, so assert presence/lower bounds only.
        assert!(
            manifest
                .counters
                .get("qcompile/fallbacks")
                .copied()
                .unwrap_or(0)
                >= 1
        );
        assert!(manifest
            .counters
            .contains_key("qcompile/fallbacks/missing-calibration"));
    }

    #[test]
    fn fallback_display_suffix_and_builders() {
        let o = CompileOptions::vic()
            .with_fallback()
            .with_pass_budget(Duration::from_millis(50))
            .with_swap_budget(400)
            .with_retries(2);
        assert_eq!(o.to_string(), "VIC+fallback");
        assert_eq!(o.resilience.pass_budget, Some(Duration::from_millis(50)));
        assert_eq!(o.resilience.swap_budget, Some(400));
        assert_eq!(o.resilience.max_retries, 2);
        assert_eq!(o.config_name(), "VIC");
        // The default policy is inert so existing behavior is untouched.
        assert_eq!(Resilience::default(), CompileOptions::ic().resilience);
    }

    #[test]
    fn packing_limit_flows_through_options() {
        let spec = spec_20_node(1, 0.5);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let limited = CompileOptions::ic().with_packing_limit(2);
        let c = compile(&spec, &topo, None, &limited, &mut rng);
        assert!(satisfies_coupling(c.physical(), &topo));
        assert_eq!(limited.packing_limit, Some(2));
    }
}
