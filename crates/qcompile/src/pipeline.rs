//! The Figure 2 workflow: initial mapping → gate ordering / incremental
//! compilation → backend routing → hardware-compliant circuit and quality
//! metrics.
//!
//! The pipeline is organized around a [`HardwareContext`]: distance
//! matrices and the connectivity profile are computed once per target and
//! shared (by `Arc`) with every pass that needs them. The stages
//! themselves are trait objects selected from [`CompileOptions`] — see
//! [`crate::passes`]. Each run records a [`PassTrace`] of per-pass
//! wall-clock time and swap/depth deltas, and the fallible entry points
//! return [`CompileError`] values instead of panicking.

use std::fmt;
use std::time::Duration;

use qcircuit::basis::{to_basis, BasisSet};
use qcircuit::Circuit;
use qhw::{Calibration, HardwareContext, Topology};
use qroute::{try_route, Layout, RoutingMetric};
use rand::{Rng, RngCore};

use crate::error::CompileError;
use crate::passes::{CompileContext, RoutingStage};
use crate::trace::PassTrace;
use crate::{ic, CphaseOp, QaoaSpec};

/// The initial logical→physical mapping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialMapping {
    /// Random placement (the paper's NAIVE baseline).
    Naive,
    /// Heaviest-qubit-first placement (the GreedyV baseline of \[59\]).
    GreedyV,
    /// Densest-subgraph topology selection (the qiskit optimizer baseline
    /// of §III).
    Dense,
    /// The paper's QAIM (§IV-A).
    Qaim,
}

/// The gate-ordering / compilation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compilation {
    /// Randomly ordered CPHASE sequence, compiled in one backend pass
    /// (the NAIVE / QAIM-only configurations of §V).
    RandomOrder,
    /// Instruction Parallelization: bin-packed gate order, one backend
    /// pass (§IV-B).
    Ip,
    /// Incremental Compilation with hop distances (§IV-C).
    IncrementalHops,
    /// Variation-aware Incremental Compilation with reliability-weighted
    /// distances (§IV-D). Requires calibration data.
    IncrementalReliability,
}

/// Options controlling one compilation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Initial-mapping strategy.
    pub mapping: InitialMapping,
    /// Compilation mode.
    pub compilation: Compilation,
    /// Maximum CPHASE gates per formed layer (§V-H); `None` packs fully.
    pub packing_limit: Option<usize>,
}

impl CompileOptions {
    /// Options with full layer packing.
    pub fn new(mapping: InitialMapping, compilation: Compilation) -> Self {
        CompileOptions {
            mapping,
            compilation,
            packing_limit: None,
        }
    }

    /// The five named configurations evaluated in the paper (§V-F).
    pub fn naive() -> Self {
        CompileOptions::new(InitialMapping::Naive, Compilation::RandomOrder)
    }

    /// QAIM mapping with random gate order.
    pub fn qaim_only() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::RandomOrder)
    }

    /// IP on top of QAIM.
    pub fn ip() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::Ip)
    }

    /// IC on top of QAIM.
    pub fn ic() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::IncrementalHops)
    }

    /// VIC on top of QAIM.
    pub fn vic() -> Self {
        CompileOptions::new(InitialMapping::Qaim, Compilation::IncrementalReliability)
    }

    /// Returns a copy with the given packing limit.
    pub fn with_packing_limit(mut self, limit: usize) -> Self {
        self.packing_limit = Some(limit);
        self
    }
}

/// The NAIVE baseline configuration, as in the paper's comparisons.
impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::naive()
    }
}

/// The paper's configuration names: `NAIVE`, `QAIM`, `IP`, `IC`, `VIC`
/// (§V-F), with a `(limit=n)` suffix when a packing limit is set. Other
/// mapping/compilation combinations print both components.
impl fmt::Display for CompileOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.mapping, self.compilation) {
            (InitialMapping::Naive, Compilation::RandomOrder) => write!(f, "NAIVE")?,
            (InitialMapping::Qaim, Compilation::RandomOrder) => write!(f, "QAIM")?,
            (InitialMapping::Qaim, Compilation::Ip) => write!(f, "IP")?,
            (InitialMapping::Qaim, Compilation::IncrementalHops) => write!(f, "IC")?,
            (InitialMapping::Qaim, Compilation::IncrementalReliability) => write!(f, "VIC")?,
            (m, c) => write!(f, "{m:?}+{c:?}")?,
        }
        if let Some(limit) = self.packing_limit {
            write!(f, "(limit={limit})")?;
        }
        Ok(())
    }
}

/// A compiled QAOA circuit plus the quality metrics the paper reports.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    physical: Circuit,
    basis: Circuit,
    initial_layout: Layout,
    final_layout: Layout,
    swap_count: usize,
    trace: PassTrace,
}

impl CompiledCircuit {
    /// The hardware-compliant circuit in IR gates (Rzz/SWAP preserved).
    pub fn physical(&self) -> &Circuit {
        &self.physical
    }

    /// The circuit lowered to the IBM basis `{U1, U2, U3, CNOT}` — the
    /// paper's depth/gate-count metrics are measured here.
    pub fn basis_circuit(&self) -> &Circuit {
        &self.basis
    }

    /// The initial logical→physical mapping used.
    pub fn initial_layout(&self) -> &Layout {
        &self.initial_layout
    }

    /// The mapping after all SWAP insertion.
    pub fn final_layout(&self) -> &Layout {
        &self.final_layout
    }

    /// Circuit depth of the basis-lowered circuit.
    pub fn depth(&self) -> usize {
        self.basis.depth()
    }

    /// Gate count (excluding measurements) of the basis-lowered circuit.
    pub fn gate_count(&self) -> usize {
        self.basis.gate_count()
    }

    /// CNOT count of the basis-lowered circuit.
    pub fn cx_count(&self) -> usize {
        self.basis.count_gate("cx")
    }

    /// Number of SWAPs the router inserted.
    pub fn swap_count(&self) -> usize {
        self.swap_count
    }

    /// Total wall-clock compilation time (the sum over all passes).
    pub fn elapsed(&self) -> Duration {
        self.trace.total_elapsed()
    }

    /// Per-pass wall-clock time and swap/depth deltas for this run.
    pub fn trace(&self) -> &PassTrace {
        &self.trace
    }

    /// Success probability of the basis circuit under `calibration` (§II).
    pub fn success_probability(&self, calibration: &Calibration) -> f64 {
        qroute::success_probability(&self.basis, calibration)
    }
}

/// Compiles a QAOA program for `topology` under `options`.
///
/// `calibration` is required for [`Compilation::IncrementalReliability`]
/// and otherwise unused.
///
/// Builds a fresh [`HardwareContext`] per call; amortize that cost with
/// [`try_compile_with_context`] (or [`crate::compile_batch`]) when
/// compiling many programs for one target.
///
/// # Panics
///
/// Panics if VIC is requested without calibration, the program does not
/// fit the topology, or `options.packing_limit` is `Some(0)`. Use
/// [`try_compile`] to receive these as [`CompileError`] values instead.
pub fn compile<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    calibration: Option<&Calibration>,
    options: &CompileOptions,
    rng: &mut R,
) -> CompiledCircuit {
    match try_compile(spec, topology, calibration, options, rng) {
        Ok(compiled) => compiled,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`compile`]: structured errors instead of panics.
pub fn try_compile<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    topology: &Topology,
    calibration: Option<&Calibration>,
    options: &CompileOptions,
    rng: &mut R,
) -> Result<CompiledCircuit, CompileError> {
    let context = HardwareContext::from_parts(topology.clone(), calibration.cloned());
    try_compile_with_context(spec, &context, options, rng)
}

/// Compiles against a prebuilt [`HardwareContext`], sharing its cached
/// distance matrices and connectivity profile across every pass — no
/// Floyd–Warshall or profiling recomputation happens during the run.
///
/// This is the core entry point; [`compile`]/[`try_compile`] wrap it, and
/// [`crate::compile_batch`] fans it out across worker threads.
pub fn try_compile_with_context<R: Rng + ?Sized>(
    spec: &QaoaSpec,
    context: &HardwareContext,
    options: &CompileOptions,
    rng: &mut R,
) -> Result<CompiledCircuit, CompileError> {
    // Erase the caller's RNG type once so trait-object passes can share it.
    let mut reborrow: &mut R = rng;
    let rng: &mut dyn RngCore = &mut reborrow;
    let cx = CompileContext {
        spec,
        hw: context,
        options,
    };
    // Every pass runs under a qtrace span; `PassTrace` is the per-run
    // view over the same measurements (the span guard hands its elapsed
    // time back even when the global recorder is disabled), while the
    // recorder aggregates across runs into the run manifest.
    let run = qtrace::global().span("qcompile/compile");
    let mut trace = PassTrace::new();

    let mapping_pass = options.mapping.pass();
    let pass = run.child(mapping_pass.name());
    let initial_layout = mapping_pass.run(&cx, rng)?;
    trace.push(mapping_pass.name(), pass.finish(), 0, None);

    let (physical, final_layout, swap_count) = match options.compilation.routing_stage() {
        RoutingStage::Full => {
            let ordering = options
                .compilation
                .ordering_pass()
                .expect("full-circuit routing always pairs with an ordering pass");
            let pass = run.child(ordering.name());
            let logical = build_logical_circuit(spec, |ops| ordering.order_level(&cx, ops, rng));
            trace.push(ordering.name(), pass.finish(), 0, None);

            let pass = run.child("route");
            let metric = RoutingMetric::from_context(context, false)
                .expect("the hop metric never needs calibration");
            let routed = try_route(
                &logical,
                context.topology(),
                initial_layout.clone(),
                &metric,
            )?;
            trace.push(
                "route",
                pass.finish(),
                routed.swap_count,
                Some(routed.circuit.depth()),
            );
            (routed.circuit, routed.final_layout, routed.swap_count)
        }
        RoutingStage::Incremental { variation_aware } => {
            let name = if variation_aware {
                "incremental-reliability"
            } else {
                "incremental-hops"
            };
            let pass = run.child(name);
            let metric = RoutingMetric::from_context(context, variation_aware)
                .ok_or(CompileError::MissingCalibration)?;
            let r = ic::try_compile_incremental_with(
                spec,
                context.topology(),
                initial_layout.clone(),
                &metric,
                options.packing_limit,
                true,
                rng,
            )?;
            trace.push(name, pass.finish(), r.swap_count, Some(r.circuit.depth()));
            (r.circuit, r.final_layout, r.swap_count)
        }
    };

    let pass = run.child("lower-to-basis");
    let basis = to_basis(&physical, BasisSet::Ibm)
        .map_err(|e| CompileError::BasisLowering(e.to_string()))?;
    trace.push("lower-to-basis", pass.finish(), 0, Some(basis.depth()));

    let q = qtrace::global();
    if q.is_enabled() {
        q.add("qcompile/runs", 1);
        q.add("qcompile/swaps", swap_count as u64);
        q.gauge_max("qcompile/basis_depth", basis.depth() as u64);
        q.observe("qcompile/run_swaps", swap_count as u64);
    }
    run.finish();

    Ok(CompiledCircuit {
        physical,
        basis,
        initial_layout,
        final_layout,
        swap_count,
        trace,
    })
}

/// Builds the full logical circuit with each level's CPHASE list passed
/// through `order`.
fn build_logical_circuit<F>(spec: &QaoaSpec, mut order: F) -> Circuit
where
    F: FnMut(&[CphaseOp]) -> Vec<CphaseOp>,
{
    let n = spec.num_qubits();
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for (level, (ops, beta)) in spec.levels().iter().enumerate() {
        for op in order(ops) {
            c.rzz(op.angle, op.a, op.b);
        }
        for &(q, angle) in spec.field_terms(level) {
            c.rz(angle, q);
        }
        for q in 0..n {
            c.rx(2.0 * *beta, q);
        }
    }
    if spec.measure() {
        c.measure_all();
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaoa::{MaxCut, QaoaParams};
    use qroute::satisfies_coupling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec_20_node(seed: u64, p_edge: f64) -> QaoaSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = qgraph::generators::connected_erdos_renyi(16, p_edge, 1000, &mut rng).unwrap();
        let problem = MaxCut::without_optimum(g);
        QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.5, 0.3), true)
    }

    #[test]
    fn all_strategies_produce_compliant_circuits() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let cal = Calibration::random_normal(&topo, 1e-2, 5e-3, &mut rng);
        for options in [
            CompileOptions::naive(),
            CompileOptions::qaim_only(),
            CompileOptions::ip(),
            CompileOptions::ic(),
            CompileOptions::vic(),
        ] {
            let compiled = compile(&spec, &topo, Some(&cal), &options, &mut rng);
            assert!(
                satisfies_coupling(compiled.physical(), &topo),
                "{options} violates coupling"
            );
            assert!(qcircuit::basis::is_in_basis(
                compiled.basis_circuit(),
                BasisSet::Ibm
            ));
            assert!(compiled.depth() > 0);
            assert!(compiled.gate_count() > 0);
            assert!(compiled.cx_count() >= 2 * spec.total_cphase_count());
        }
    }

    #[test]
    fn qaim_reduces_swaps_versus_naive() {
        // Mean over instances: QAIM must insert fewer SWAPs than NAIVE on
        // sparse graphs (the Figure 7 effect).
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(5);
        let (mut naive_swaps, mut qaim_swaps) = (0usize, 0usize);
        for seed in 0..10 {
            let spec = spec_20_node(100 + seed, 0.15);
            naive_swaps +=
                compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng).swap_count();
            qaim_swaps +=
                compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng).swap_count();
        }
        assert!(
            qaim_swaps < naive_swaps,
            "QAIM {qaim_swaps} should beat NAIVE {naive_swaps}"
        );
    }

    #[test]
    fn ip_reduces_depth_versus_random_order() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(6);
        let (mut rand_depth, mut ip_depth) = (0usize, 0usize);
        for seed in 0..8 {
            let spec = spec_20_node(200 + seed, 0.4);
            rand_depth +=
                compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng).depth();
            ip_depth += compile(&spec, &topo, None, &CompileOptions::ip(), &mut rng).depth();
        }
        assert!(
            (ip_depth as f64) < 0.8 * rand_depth as f64,
            "IP depth {ip_depth} should be well below random-order {rand_depth}"
        );
    }

    #[test]
    fn ic_reduces_gate_count_versus_ip() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(7);
        let (mut ip_gates, mut ic_gates) = (0usize, 0usize);
        for seed in 0..8 {
            let spec = spec_20_node(300 + seed, 0.4);
            ip_gates += compile(&spec, &topo, None, &CompileOptions::ip(), &mut rng).gate_count();
            ic_gates += compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng).gate_count();
        }
        assert!(
            ic_gates < ip_gates,
            "IC gates {ic_gates} should beat IP {ip_gates}"
        );
    }

    #[test]
    fn vic_beats_ic_on_success_probability() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(8);
        let cal = Calibration::random_normal(&topo, 2e-2, 1.5e-2, &mut rng);
        let (mut sp_ic, mut sp_vic) = (0.0f64, 0.0f64);
        for seed in 0..16 {
            let spec = spec_20_node(400 + seed, 0.3);
            sp_ic += compile(&spec, &topo, Some(&cal), &CompileOptions::ic(), &mut rng)
                .success_probability(&cal);
            sp_vic += compile(&spec, &topo, Some(&cal), &CompileOptions::vic(), &mut rng)
                .success_probability(&cal);
        }
        assert!(
            sp_vic > sp_ic,
            "VIC success {sp_vic} should beat IC {sp_ic}"
        );
    }

    #[test]
    #[should_panic]
    fn vic_without_calibration_panics() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = compile(&spec, &topo, None, &CompileOptions::vic(), &mut rng);
    }

    #[test]
    fn vic_without_calibration_errors_structurally() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let err = try_compile(&spec, &topo, None, &CompileOptions::vic(), &mut rng).unwrap_err();
        assert_eq!(err, CompileError::MissingCalibration);
        let context = HardwareContext::new(topo);
        let err = try_compile_with_context(&spec, &context, &CompileOptions::vic(), &mut rng)
            .unwrap_err();
        assert_eq!(err, CompileError::MissingCalibration);
    }

    #[test]
    fn zero_packing_limit_errors_structurally() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let options = CompileOptions::ic().with_packing_limit(0);
        let err = try_compile(&spec, &topo, None, &options, &mut rng).unwrap_err();
        assert_eq!(err, CompileError::ZeroPackingLimit);
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let compiled = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);
        assert!(compiled.elapsed() > Duration::ZERO);
    }

    #[test]
    fn pass_trace_names_every_stage() {
        let spec = spec_20_node(1, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);

        let ic = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);
        let names: Vec<&str> = ic.trace().records().iter().map(|r| r.name).collect();
        assert_eq!(names, ["qaim", "incremental-hops", "lower-to-basis"]);
        // The swap delta is attributed to the routing pass, and the trace
        // total matches the circuit's headline swap count.
        assert_eq!(ic.trace().swaps_added(), ic.swap_count());
        assert_eq!(
            ic.trace().find("incremental-hops").unwrap().swaps_added,
            ic.swap_count()
        );
        assert_eq!(
            ic.trace().find("lower-to-basis").unwrap().depth_after,
            Some(ic.depth())
        );

        let ip = compile(&spec, &topo, None, &CompileOptions::ip(), &mut rng);
        let names: Vec<&str> = ip.trace().records().iter().map(|r| r.name).collect();
        assert_eq!(names, ["qaim", "ip-pack", "route", "lower-to-basis"]);

        let naive = compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng);
        let names: Vec<&str> = naive.trace().records().iter().map(|r| r.name).collect();
        assert_eq!(names, ["naive", "random-order", "route", "lower-to-basis"]);
    }

    #[test]
    fn context_compile_matches_topology_compile() {
        // Same seed, same program: the context-sharing entry point must be
        // stream- and output-identical to the per-call path.
        let spec = spec_20_node(3, 0.3);
        let topo = Topology::ibmq_20_tokyo();
        let mut cal_rng = StdRng::seed_from_u64(4);
        let cal = Calibration::random_normal(&topo, 2e-2, 1.5e-2, &mut cal_rng);
        let context = HardwareContext::with_calibration(topo.clone(), cal.clone());
        for options in [
            CompileOptions::naive(),
            CompileOptions::ip(),
            CompileOptions::ic(),
            CompileOptions::vic(),
        ] {
            let mut rng_a = StdRng::seed_from_u64(77);
            let a = compile(&spec, &topo, Some(&cal), &options, &mut rng_a);
            let mut rng_b = StdRng::seed_from_u64(77);
            let b = try_compile_with_context(&spec, &context, &options, &mut rng_b).unwrap();
            assert_eq!(a.physical(), b.physical(), "{options}");
            assert_eq!(a.basis_circuit(), b.basis_circuit());
            assert_eq!(a.initial_layout(), b.initial_layout());
            assert_eq!(a.final_layout(), b.final_layout());
            assert_eq!(a.swap_count(), b.swap_count());
        }
    }

    #[test]
    fn default_options_are_the_naive_baseline() {
        assert_eq!(CompileOptions::default(), CompileOptions::naive());
    }

    #[test]
    fn display_uses_paper_configuration_names() {
        assert_eq!(CompileOptions::naive().to_string(), "NAIVE");
        assert_eq!(CompileOptions::qaim_only().to_string(), "QAIM");
        assert_eq!(CompileOptions::ip().to_string(), "IP");
        assert_eq!(CompileOptions::ic().to_string(), "IC");
        assert_eq!(CompileOptions::vic().to_string(), "VIC");
        assert_eq!(
            CompileOptions::ic().with_packing_limit(9).to_string(),
            "IC(limit=9)"
        );
        assert_eq!(
            CompileOptions::new(InitialMapping::GreedyV, Compilation::Ip).to_string(),
            "GreedyV+Ip"
        );
    }

    #[test]
    fn packing_limit_flows_through_options() {
        let spec = spec_20_node(1, 0.5);
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(2);
        let limited = CompileOptions::ic().with_packing_limit(2);
        let c = compile(&spec, &topo, None, &limited, &mut rng);
        assert!(satisfies_coupling(c.physical(), &topo));
        assert_eq!(limited.packing_limit, Some(2));
    }
}
