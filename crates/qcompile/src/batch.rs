//! Multi-threaded batch compilation over one shared [`HardwareContext`].
//!
//! The paper's experiments compile hundreds of (instance, configuration)
//! pairs against a single device; [`compile_batch`] fans that out across
//! worker threads while keeping results **bit-for-bit identical** to a
//! serial loop: each job carries its own RNG seed, so its random stream
//! is independent of scheduling, and results are returned in job order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use qhw::HardwareContext;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::CompileError;
use crate::pipeline::{try_compile_with_context, CompileOptions, CompiledCircuit};
use crate::QaoaSpec;

/// Odd multiplier mixed into retry seeds so each attempt gets an
/// independent RNG stream while staying a pure function of `(seed,
/// attempt)` — determinism survives retries.
const RETRY_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// One unit of batch work: a program, a configuration and the seed of the
/// RNG stream the compilation consumes.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The QAOA program to compile.
    pub spec: QaoaSpec,
    /// The configuration to compile it under.
    pub options: CompileOptions,
    /// Seed for this job's private `StdRng`. Determinism contract: a job
    /// always sees `StdRng::seed_from_u64(seed)`, regardless of which
    /// worker runs it or in what order.
    pub seed: u64,
}

impl BatchJob {
    /// A job compiling `spec` under `options` with RNG stream `seed`.
    pub fn new(spec: QaoaSpec, options: CompileOptions, seed: u64) -> Self {
        BatchJob {
            spec,
            options,
            seed,
        }
    }
}

/// A sensible worker count for this machine (available parallelism,
/// falling back to 1 when it cannot be queried).
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// One job attempt with the panic boundary: a panicking compilation is
/// caught and surfaced as [`CompileError::Internal`] instead of tearing
/// down the batch (or aborting a worker thread mid-scope).
fn attempt_job(
    context: &HardwareContext,
    job: &BatchJob,
    options: &CompileOptions,
    seed: u64,
) -> Result<CompiledCircuit, CompileError> {
    // `AssertUnwindSafe`: everything captured is either freshly built per
    // attempt (the RNG) or immutable shared state (`context`, `job`), so
    // no observable broken invariant can leak past the boundary.
    catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(seed);
        try_compile_with_context(&job.spec, context, options, &mut rng)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_owned());
        let q = qtrace::global();
        if q.is_enabled() {
            q.add("qcompile/batch/caught_panics", 1);
        }
        Err(CompileError::Internal(msg))
    })
}

/// Runs one job to completion: the first attempt on the job's own
/// options, then up to `max_retries` extra attempts with the degradation
/// ladder forced on and a derived (but deterministic) seed. Every path is
/// a pure function of the job alone, so scheduling cannot change results.
fn run_job(context: &HardwareContext, job: &BatchJob) -> Result<CompiledCircuit, CompileError> {
    let mut result = attempt_job(context, job, &job.options, job.seed);
    let retries = job.options.resilience.max_retries;
    for attempt in 1..=u64::from(retries) {
        match &result {
            Ok(_) => break,
            Err(e) if !e.recoverable() => break,
            Err(_) => {}
        }
        let q = qtrace::global();
        if q.is_enabled() {
            q.add("qcompile/batch/retries", 1);
        }
        let options = job.options.with_fallback();
        let seed = job.seed ^ attempt.wrapping_mul(RETRY_SEED_STRIDE);
        result = attempt_job(context, job, &options, seed);
    }
    result
}

/// Compiles every job against the shared `context` on `workers` threads.
///
/// Results are in job order, and each is exactly what a serial
/// [`try_compile_with_context`] call with `StdRng::seed_from_u64(job.seed)`
/// produces — worker count and scheduling cannot change any output (the
/// `batch_determinism` property test pins this). Failures are returned
/// per-job; one bad job does not poison the batch. A job that *panics* is
/// caught at the batch boundary and reported as
/// [`CompileError::Internal`], and jobs whose options allow retries
/// ([`crate::Resilience::max_retries`]) are deterministically re-attempted
/// with the degradation ladder forced on.
pub fn compile_batch(
    context: &HardwareContext,
    jobs: &[BatchJob],
    workers: usize,
) -> Vec<Result<CompiledCircuit, CompileError>> {
    let workers = workers.max(1).min(jobs.len().max(1));
    let q = qtrace::global();
    // Records on drop, covering both the serial and threaded exits.
    let _batch_span = q.span("qcompile/batch");
    if q.is_enabled() {
        q.add("qcompile/batch/jobs", jobs.len() as u64);
        q.gauge_max("qcompile/batch/workers", workers as u64);
    }
    if workers == 1 {
        // Serial fast path: no threads, no channel. Identical results by
        // construction — both paths run the same `run_job`.
        return jobs.iter().map(|job| run_job(context, job)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = run_job(context, &jobs[i]);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<Result<CompiledCircuit, CompileError>>> =
        (0..jobs.len()).map(|_| None).collect();
    for (i, result) in rx {
        slots[i] = Some(result);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job sends exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CphaseOp;
    use qhw::Topology;

    fn ring_spec(n: usize) -> QaoaSpec {
        let ops = (0..n).map(|i| CphaseOp::new(i, (i + 1) % n, 0.4)).collect();
        QaoaSpec::new(n, vec![(ops, 0.3)], true)
    }

    #[test]
    fn batch_matches_serial_and_preserves_job_order() {
        let context = HardwareContext::new(Topology::ibmq_20_tokyo());
        let jobs: Vec<BatchJob> = (0..6)
            .map(|i| {
                let options = if i % 2 == 0 {
                    CompileOptions::ic()
                } else {
                    CompileOptions::qaim_only()
                };
                BatchJob::new(ring_spec(6 + i), options, 1000 + i as u64)
            })
            .collect();
        let parallel = compile_batch(&context, &jobs, 4);
        for (job, got) in jobs.iter().zip(&parallel) {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let want =
                try_compile_with_context(&job.spec, &context, &job.options, &mut rng).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(got.physical(), want.physical());
            assert_eq!(got.basis_circuit(), want.basis_circuit());
            assert_eq!(got.final_layout(), want.final_layout());
            assert_eq!(got.swap_count(), want.swap_count());
            // Job order: result widths track the per-job program sizes.
            assert_eq!(got.initial_layout().num_logical(), job.spec.num_qubits());
        }
    }

    #[test]
    fn failures_stay_per_job() {
        let context = HardwareContext::new(Topology::ibmq_20_tokyo());
        let jobs = vec![
            BatchJob::new(ring_spec(6), CompileOptions::ic(), 1),
            // VIC without calibration in the context: this job fails …
            BatchJob::new(ring_spec(6), CompileOptions::vic(), 2),
            // … but its neighbors still compile.
            BatchJob::new(ring_spec(7), CompileOptions::naive(), 3),
        ];
        let results = compile_batch(&context, &jobs, 2);
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &CompileError::MissingCalibration
        );
        assert!(results[2].is_ok());
    }

    #[test]
    fn poisoned_job_is_caught_not_fatal() {
        // A self-CPHASE built via the public-field struct literal slips
        // past `QaoaSpec::new`'s range check (only `CphaseOp::new` rejects
        // duplicates) and panics deep inside interaction-graph/circuit
        // construction. The batch boundary must convert that into a
        // structured error and keep going.
        let context = HardwareContext::new(Topology::ibmq_20_tokyo());
        let self_loop = CphaseOp {
            a: 2,
            b: 2,
            angle: (0.4).into(),
        };
        let poison = QaoaSpec::new(4, vec![(vec![self_loop], 0.3)], true);
        let jobs = vec![
            BatchJob::new(ring_spec(6), CompileOptions::ic(), 1),
            BatchJob::new(poison, CompileOptions::qaim_only(), 2),
            BatchJob::new(ring_spec(7), CompileOptions::naive(), 3),
        ];
        for workers in [1, 3] {
            let results = compile_batch(&context, &jobs, workers);
            assert!(results[0].is_ok());
            assert!(
                matches!(results[1], Err(CompileError::Internal(_))),
                "workers={workers}: {:?}",
                results[1]
            );
            assert!(results[2].is_ok());
        }
    }

    #[test]
    fn retries_force_fallback_and_stay_deterministic() {
        // VIC without calibration fails its first attempt; one retry with
        // the ladder forced on delivers a circuit.
        let context = HardwareContext::new(Topology::ibmq_20_tokyo());
        let job = BatchJob::new(ring_spec(6), CompileOptions::vic().with_retries(1), 42);
        let no_retry = BatchJob::new(ring_spec(6), CompileOptions::vic(), 42);
        let results = compile_batch(&context, &[job.clone(), no_retry], 2);
        let recovered = results[0].as_ref().unwrap();
        assert!(recovered.trace().degraded());
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &CompileError::MissingCalibration
        );
        // Retried results are a pure function of the job: serial and
        // parallel agree bit-for-bit.
        let serial = compile_batch(&context, &[job], 1);
        let s = serial[0].as_ref().unwrap();
        assert_eq!(s.physical(), recovered.physical());
        assert_eq!(s.final_layout(), recovered.final_layout());
    }

    #[test]
    fn unrecoverable_failures_are_not_retried() {
        // The program cannot fit: retrying cannot help and must not mask
        // the real error with fallback noise.
        let context = HardwareContext::new(Topology::ibmq_16_melbourne());
        let too_big = ring_spec(40);
        let jobs = vec![BatchJob::new(
            too_big,
            CompileOptions::ic().with_retries(3),
            7,
        )];
        let results = compile_batch(&context, &jobs, 1);
        assert!(matches!(
            results[0],
            Err(CompileError::ProgramTooLarge { .. })
        ));
    }

    #[test]
    fn degenerate_worker_counts_are_clamped() {
        let context = HardwareContext::new(Topology::ibmq_16_melbourne());
        let jobs = vec![BatchJob::new(ring_spec(5), CompileOptions::ic(), 9)];
        // Zero workers clamps to one; huge counts clamp to the job count.
        assert!(compile_batch(&context, &jobs, 0)[0].is_ok());
        assert!(compile_batch(&context, &jobs, 64)[0].is_ok());
        assert!(compile_batch(&context, &[], 4).is_empty());
    }
}
