//! Multi-threaded batch compilation over one shared [`HardwareContext`].
//!
//! The paper's experiments compile hundreds of (instance, configuration)
//! pairs against a single device; [`compile_batch`] fans that out across
//! worker threads while keeping results **bit-for-bit identical** to a
//! serial loop: each job carries its own RNG seed, so its random stream
//! is independent of scheduling, and results are returned in job order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use qhw::HardwareContext;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::CompileError;
use crate::pipeline::{try_compile_with_context, CompileOptions, CompiledCircuit};
use crate::QaoaSpec;

/// One unit of batch work: a program, a configuration and the seed of the
/// RNG stream the compilation consumes.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The QAOA program to compile.
    pub spec: QaoaSpec,
    /// The configuration to compile it under.
    pub options: CompileOptions,
    /// Seed for this job's private `StdRng`. Determinism contract: a job
    /// always sees `StdRng::seed_from_u64(seed)`, regardless of which
    /// worker runs it or in what order.
    pub seed: u64,
}

impl BatchJob {
    /// A job compiling `spec` under `options` with RNG stream `seed`.
    pub fn new(spec: QaoaSpec, options: CompileOptions, seed: u64) -> Self {
        BatchJob {
            spec,
            options,
            seed,
        }
    }
}

/// A sensible worker count for this machine (available parallelism,
/// falling back to 1 when it cannot be queried).
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Compiles every job against the shared `context` on `workers` threads.
///
/// Results are in job order, and each is exactly what a serial
/// [`try_compile_with_context`] call with `StdRng::seed_from_u64(job.seed)`
/// produces — worker count and scheduling cannot change any output (the
/// `batch_determinism` property test pins this). Failures are returned
/// per-job; one bad job does not poison the batch.
pub fn compile_batch(
    context: &HardwareContext,
    jobs: &[BatchJob],
    workers: usize,
) -> Vec<Result<CompiledCircuit, CompileError>> {
    let workers = workers.max(1).min(jobs.len().max(1));
    let q = qtrace::global();
    // Records on drop, covering both the serial and threaded exits.
    let _batch_span = q.span("qcompile/batch");
    if q.is_enabled() {
        q.add("qcompile/batch/jobs", jobs.len() as u64);
        q.gauge_max("qcompile/batch/workers", workers as u64);
    }
    if workers == 1 {
        // Serial fast path: no threads, no channel. Identical results by
        // construction — each job's RNG is freshly seeded either way.
        return jobs
            .iter()
            .map(|job| {
                let mut rng = StdRng::seed_from_u64(job.seed);
                try_compile_with_context(&job.spec, context, &job.options, &mut rng)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let mut rng = StdRng::seed_from_u64(job.seed);
                let result = try_compile_with_context(&job.spec, context, &job.options, &mut rng);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<Result<CompiledCircuit, CompileError>>> =
        (0..jobs.len()).map(|_| None).collect();
    for (i, result) in rx {
        slots[i] = Some(result);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job sends exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CphaseOp;
    use qhw::Topology;

    fn ring_spec(n: usize) -> QaoaSpec {
        let ops = (0..n).map(|i| CphaseOp::new(i, (i + 1) % n, 0.4)).collect();
        QaoaSpec::new(n, vec![(ops, 0.3)], true)
    }

    #[test]
    fn batch_matches_serial_and_preserves_job_order() {
        let context = HardwareContext::new(Topology::ibmq_20_tokyo());
        let jobs: Vec<BatchJob> = (0..6)
            .map(|i| {
                let options = if i % 2 == 0 {
                    CompileOptions::ic()
                } else {
                    CompileOptions::qaim_only()
                };
                BatchJob::new(ring_spec(6 + i), options, 1000 + i as u64)
            })
            .collect();
        let parallel = compile_batch(&context, &jobs, 4);
        for (job, got) in jobs.iter().zip(&parallel) {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let want =
                try_compile_with_context(&job.spec, &context, &job.options, &mut rng).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(got.physical(), want.physical());
            assert_eq!(got.basis_circuit(), want.basis_circuit());
            assert_eq!(got.final_layout(), want.final_layout());
            assert_eq!(got.swap_count(), want.swap_count());
            // Job order: result widths track the per-job program sizes.
            assert_eq!(got.initial_layout().num_logical(), job.spec.num_qubits());
        }
    }

    #[test]
    fn failures_stay_per_job() {
        let context = HardwareContext::new(Topology::ibmq_20_tokyo());
        let jobs = vec![
            BatchJob::new(ring_spec(6), CompileOptions::ic(), 1),
            // VIC without calibration in the context: this job fails …
            BatchJob::new(ring_spec(6), CompileOptions::vic(), 2),
            // … but its neighbors still compile.
            BatchJob::new(ring_spec(7), CompileOptions::naive(), 3),
        ];
        let results = compile_batch(&context, &jobs, 2);
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &CompileError::MissingCalibration
        );
        assert!(results[2].is_ok());
    }

    #[test]
    fn degenerate_worker_counts_are_clamped() {
        let context = HardwareContext::new(Topology::ibmq_16_melbourne());
        let jobs = vec![BatchJob::new(ring_spec(5), CompileOptions::ic(), 9)];
        // Zero workers clamps to one; huge counts clamp to the job count.
        assert!(compile_batch(&context, &jobs, 0)[0].is_ok());
        assert!(compile_batch(&context, &jobs, 64)[0].is_ok());
        assert!(compile_batch(&context, &[], 4).is_empty());
    }
}
