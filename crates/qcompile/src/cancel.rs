//! Cooperative cancellation for in-flight compilations.
//!
//! A [`CancelToken`] is a cheap, cloneable flag a caller (typically a
//! serving layer enforcing request deadlines) can trip while a compile
//! runs on another thread. The pipeline polls the token at every pass
//! boundary — the same places per-pass budgets are checked — and aborts
//! with [`CompileError::Cancelled`](crate::CompileError::Cancelled) at
//! the first boundary after the trip. Cancellation is *cooperative*:
//! a pass already running completes its own work before the check, so
//! the latency to observe a cancel is bounded by one pass, never by the
//! whole ladder.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use crate::error::CompileError;

/// A shared cancellation flag polled by the compile pipeline at pass
/// boundaries. Clones observe the same flag; tripping it is one-way.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token. Every clone observes the trip; compiles polling
    /// it abort with `CompileError::Cancelled` at their next pass
    /// boundary. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// `Err(Cancelled)` once tripped — the pipeline's boundary check.
    pub(crate) fn check(&self) -> Result<(), CompileError> {
        if self.is_cancelled() {
            Err(CompileError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// The shared never-cancelled token the non-cancellable entry points
    /// thread through the pipeline, so the hot path allocates nothing.
    pub(crate) fn never() -> &'static CancelToken {
        static NEVER: OnceLock<CancelToken> = OnceLock::new();
        NEVER.get_or_init(CancelToken::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag_and_trip_once() {
        let token = CancelToken::new();
        let observer = token.clone();
        assert!(!observer.is_cancelled());
        assert!(token.check().is_ok());
        token.cancel();
        assert!(observer.is_cancelled());
        assert_eq!(observer.check(), Err(CompileError::Cancelled));
        // Idempotent.
        observer.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn the_never_token_stays_untripped() {
        assert!(!CancelToken::never().is_cancelled());
    }
}
