//! Property: parameter binding commutes with compilation.
//!
//! For any MaxCut problem, QAOA level and `(γ, β)` values, compiling the
//! bound program (`compile(bind(spec, θ))`) and binding the compiled
//! parametric artifact (`bind(compile(spec), θ)`) must agree — same
//! depth, same SWAP count, same layouts, and the same MaxCut expectation
//! to 1e-10. This is the contract that makes compile-once/rebind-many
//! sound: the compile flow is angle-blind, so one compilation serves
//! every optimizer iteration.

use proptest::prelude::*;
use qaoa::{MaxCut, QaoaParams};
use qcompile::{try_compile, try_compile_artifact, CompileOptions, CompiledCircuit, QaoaSpec};
use qhw::Topology;
use qsim::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a problem graph on `n` nodes (non-empty edge subset of the
/// complete graph) plus per-level `(γ, β)` values.
#[allow(clippy::type_complexity)]
fn arb_problem() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<(f64, f64)>)> {
    (4usize..=8).prop_flat_map(|n| {
        let all: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let edges = proptest::sample::subsequence(all.clone(), 1..=all.len());
        let levels = proptest::collection::vec((0.0f64..3.2, 0.0f64..1.6), 1..=2);
        (Just(n), edges, levels)
    })
}

/// Exact MaxCut expectation of a compiled circuit, evaluated on the
/// physical statevector through the final logical→physical layout.
fn physical_expectation(compiled: &CompiledCircuit, edges: &[(usize, usize)]) -> f64 {
    let state = StateVector::from_circuit(compiled.physical());
    let layout = compiled.final_layout();
    state.expectation_diagonal(|bits| {
        edges
            .iter()
            .filter(|&&(u, v)| (bits >> layout.phys(u)) & 1 != (bits >> layout.phys(v)) & 1)
            .count() as f64
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn binding_commutes_with_compilation(
        problem_parts in arb_problem(),
        seed in 0u64..500,
        strategy_idx in 0usize..3,
    ) {
        let (n, edges, levels) = problem_parts;
        let graph = qgraph::Graph::from_edges(n, edges.clone()).unwrap();
        let problem = MaxCut::without_optimum(graph);
        let params = QaoaParams::new(levels.clone());
        let p = levels.len();
        let topo = Topology::grid(3, 3);
        let options = [
            CompileOptions::naive(),
            CompileOptions::ip(),
            CompileOptions::ic(),
        ][strategy_idx];

        // Path A: bind the spec, then compile the bound program.
        let bound_spec = QaoaSpec::from_maxcut(&problem, &params, false);
        let via_recompile = try_compile(
            &bound_spec,
            &topo,
            None,
            &options,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();

        // Path B: compile the parametric spec once, then bind values.
        let spec = QaoaSpec::from_maxcut_parametric(&problem, p, false);
        let artifact = try_compile_artifact(
            &spec,
            &topo,
            None,
            &options,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
        prop_assert!(artifact.is_parametric());
        prop_assert_eq!(artifact.num_params(), 2 * p);
        let via_rebind = artifact.bind(&params.to_values()).unwrap();
        prop_assert!(!via_rebind.is_parametric());

        // Structure: identical quality metrics and layouts.
        prop_assert_eq!(via_rebind.depth(), via_recompile.depth());
        prop_assert_eq!(via_rebind.swap_count(), via_recompile.swap_count());
        prop_assert_eq!(via_rebind.gate_count(), via_recompile.gate_count());
        prop_assert_eq!(via_rebind.initial_layout(), via_recompile.initial_layout());
        prop_assert_eq!(via_rebind.final_layout(), via_recompile.final_layout());

        // Semantics: the same MaxCut expectation to 1e-10.
        let e_recompile = physical_expectation(&via_recompile, &edges);
        let e_rebind = physical_expectation(&via_rebind, &edges);
        prop_assert!(
            (e_recompile - e_rebind).abs() < 1e-10,
            "expectations diverged: recompile {} vs rebind {}",
            e_recompile,
            e_rebind
        );
    }

    #[test]
    fn rebinding_twice_overwrites_cleanly(
        problem_parts in arb_problem(),
        seed in 0u64..500,
    ) {
        let (n, edges, levels) = problem_parts;
        let graph = qgraph::Graph::from_edges(n, edges).unwrap();
        let problem = MaxCut::without_optimum(graph);
        let p = levels.len();
        let spec = QaoaSpec::from_maxcut_parametric(&problem, p, false);
        let artifact = try_compile_artifact(
            &spec,
            &Topology::grid(3, 3),
            None,
            &CompileOptions::ic(),
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();

        // The template is immutable: binding a second set of values
        // gives exactly what binding it first would have given.
        let first = QaoaParams::new(levels.clone());
        let second = QaoaParams::new(levels.iter().map(|&(g, b)| (g + 0.25, b - 0.1)).collect());
        let _ = artifact.bind(&first.to_values()).unwrap();
        let b2 = artifact.bind(&second.to_values()).unwrap();
        let fresh = artifact.bind(&second.to_values()).unwrap();
        prop_assert_eq!(b2.physical(), fresh.physical());
        prop_assert_eq!(b2.basis_circuit(), fresh.basis_circuit());
    }
}

#[test]
fn binding_with_wrong_arity_is_a_structured_error() {
    let graph = qgraph::Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    let problem = MaxCut::without_optimum(graph);
    let spec = QaoaSpec::from_maxcut_parametric(&problem, 2, false);
    let artifact = try_compile_artifact(
        &spec,
        &Topology::grid(3, 3),
        None,
        &CompileOptions::ic(),
        &mut StdRng::seed_from_u64(7),
    )
    .unwrap();
    let err = artifact
        .bind(&qcircuit::ParamValues::new(vec![0.1; 3]))
        .unwrap_err();
    assert_eq!(
        err,
        qcompile::CompileError::UnboundParameters {
            expected: 4,
            found: 3
        }
    );
}
