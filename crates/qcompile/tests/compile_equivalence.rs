//! Pins the allocation-disciplined compile engines **bit-for-bit
//! identical** to the frozen pre-rewrite references in
//! `qcompile::reference`.
//!
//! The engine rewrite (thread-local scratch, direct-emission routing,
//! incremental distance keys, bitset packing) is pure mechanism: for any
//! seed it must take exactly the decisions the old code took and emit
//! exactly the instruction stream the old code emitted. These properties
//! are the contract — a divergence on any seed × topology × density ×
//! metric × packing-limit combination is a bug in the rewrite, not a
//! "small quality difference".
//!
//! The plain tests at the bottom pin the same property one level up:
//! whole-pipeline runs (including the degradation ladder, the shared
//! context cache and multi-worker batches) are byte-identical across
//! repetition, entry point and worker count, down to the Explain JSON.

use proptest::prelude::*;
use qcompile::reference;
use qcompile::{
    compile_batch, ic, ip, mapping, try_compile, try_compile_with_context, BatchJob,
    CompileOptions, CphaseOp, QaoaSpec,
};
use qhw::{Calibration, HardwareContext, Topology};
use qroute::{route_append, try_route, Layout, RoutingMetric};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A MaxCut QAOA spec over a connected ER instance — the paper's workload
/// shape.
fn er_spec(n: usize, p: f64, seed: u64, measure: bool) -> QaoaSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = qgraph::generators::connected_erdos_renyi(n, p, 1000, &mut rng).unwrap();
    let problem = qaoa::MaxCut::without_optimum(g);
    QaoaSpec::from_maxcut(&problem, &qaoa::QaoaParams::p1(0.4, 0.3), measure)
}

fn pick_topology(idx: usize) -> Topology {
    match idx {
        0 => Topology::ibmq_20_tokyo(),
        1 => Topology::ibmq_16_melbourne(),
        _ => Topology::heavy_hex(2, 2),
    }
}

/// Full structural equality of two incremental-compilation results.
fn assert_incremental_eq(live: &ic::IncrementalResult, frozen: &ic::IncrementalResult) {
    assert_eq!(
        live.circuit.instructions(),
        frozen.circuit.instructions(),
        "instruction streams diverged"
    );
    assert_eq!(live.circuit.depth(), frozen.circuit.depth());
    assert_eq!(live.final_layout, frozen.final_layout);
    assert_eq!(live.swap_count, frozen.swap_count);
    assert_eq!(live.cphase_layers, frozen.cphase_layers);
    assert_eq!(live.layers, frozen.layers, "per-layer records diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// IC (and its no-resort ablation) against the frozen engine, across
    /// seeds, topologies, ER densities and packing limits.
    #[test]
    fn ic_engine_matches_frozen_reference(
        seed in 0u64..10_000,
        topo_idx in 0usize..3,
        density_idx in 0usize..3,
        limit in proptest::option::of(1usize..5),
        resort_idx in 0usize..2,
    ) {
        let topo = pick_topology(topo_idx);
        let n = topo.num_qubits().min(14);
        let p = [0.2, 0.4, 0.6][density_idx];
        let spec = er_spec(n, p, seed, true);
        let metric = RoutingMetric::hops(&topo);
        let layout = mapping::qaim(&spec, &topo);
        let resort = resort_idx == 0;
        let live = ic::try_compile_incremental_with(
            &spec, &topo, layout.clone(), &metric, limit, resort,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        let frozen = reference::try_compile_incremental_with(
            &spec, &topo, layout, &metric, limit, resort,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        assert_incremental_eq(&live, &frozen);
    }

    /// VIC (reliability metric) against the frozen engine on the real
    /// melbourne calibration: the weighted tie-breaks must also replay
    /// bit-for-bit (float-sum order is part of the contract).
    #[test]
    fn vic_engine_matches_frozen_reference(
        seed in 0u64..10_000,
        density_idx in 0usize..3,
        limit in proptest::option::of(2usize..6),
    ) {
        let (topo, cal) = Calibration::melbourne_2020_04_08();
        let p = [0.2, 0.4, 0.6][density_idx];
        let spec = er_spec(12, p, seed, true);
        let metric = RoutingMetric::reliability(&topo, &cal);
        let layout = mapping::qaim(&spec, &topo);
        let live = ic::try_compile_incremental_with(
            &spec, &topo, layout.clone(), &metric, limit, true,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        let frozen = reference::try_compile_incremental_with(
            &spec, &topo, layout, &metric, limit, true,
            &mut StdRng::seed_from_u64(seed),
        ).unwrap();
        assert_incremental_eq(&live, &frozen);
    }

    /// The scratch-buffer router against the frozen router on random
    /// multi-layer circuits and random layouts (both metrics).
    #[test]
    fn router_matches_frozen_reference(
        seed in 0u64..10_000,
        topo_idx in 0usize..3,
        density_idx in 0usize..2,
        vic in 0usize..2,
    ) {
        let (topo, cal) = if topo_idx == 1 {
            Calibration::melbourne_2020_04_08()
        } else {
            let t = pick_topology(topo_idx);
            let c = Calibration::uniform(&t, 0.02, 0.001, 0.02);
            (t, c)
        };
        let metric = if vic == 0 {
            RoutingMetric::hops(&topo)
        } else {
            RoutingMetric::reliability(&topo, &cal)
        };
        let n = topo.num_qubits().min(14);
        let p = [0.3, 0.6][density_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let g = qgraph::generators::connected_erdos_renyi(n, p, 1000, &mut rng).unwrap();
        let mut c = qcircuit::Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for e in g.edges() {
            c.rzz(0.37, e.a(), e.b());
        }
        for q in 0..n {
            c.rx(0.9, q);
            c.measure(q);
        }
        let layout = Layout::random(n, topo.num_qubits(), &mut rng);
        let live = try_route(&c, &topo, layout.clone(), &metric).unwrap();
        let frozen = reference::try_route(&c, &topo, layout.clone(), &metric).unwrap();
        prop_assert_eq!(live.circuit.instructions(), frozen.circuit.instructions());
        prop_assert_eq!(&live.final_layout, &frozen.final_layout);
        prop_assert_eq!(live.swap_count, frozen.swap_count);
        prop_assert_eq!(live.layer_stats, frozen.layer_stats);

        // The direct-emission append path is the same byte stream again.
        let mut direct = qcircuit::Circuit::new(topo.num_qubits());
        direct.set_param_table(c.param_table().clone());
        let stats = route_append(&c, &topo, layout, &metric, &mut direct).unwrap();
        prop_assert_eq!(direct.instructions(), frozen.circuit.instructions());
        prop_assert_eq!(stats.final_layout, frozen.final_layout);
        prop_assert_eq!(stats.swap_count, frozen.swap_count);
        prop_assert_eq!(stats.routed_depth, frozen.circuit.depth());
    }

    /// The bitset bin-packer against the frozen `Vec<Vec<bool>>` packer.
    #[test]
    fn ip_packer_matches_frozen_reference(
        seed in 0u64..10_000,
        density_idx in 0usize..3,
        limit in proptest::option::of(1usize..6),
    ) {
        let p = [0.2, 0.4, 0.7][density_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let g = qgraph::generators::connected_erdos_renyi(13, p, 1000, &mut rng).unwrap();
        let ops: Vec<CphaseOp> = g.edges().map(|e| CphaseOp::new(e.a(), e.b(), 0.2)).collect();
        let live = ip::pack_layers(13, &ops, limit, &mut StdRng::seed_from_u64(seed));
        let frozen = reference::pack_layers(13, &ops, limit, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(live, frozen);
    }
}

/// One compiled result's full observable surface, for equality checks.
fn fingerprint(c: &qcompile::CompiledCircuit) -> (Vec<u8>, String) {
    let mut bytes = Vec::new();
    for i in c.physical().instructions() {
        bytes.extend_from_slice(format!("{i};").as_bytes());
    }
    for i in c.basis_circuit().instructions() {
        bytes.extend_from_slice(format!("{i};").as_bytes());
    }
    (bytes, c.explain().to_json())
}

/// Whole-pipeline byte-identity: repeated runs, the legacy shared-cache
/// entry point and a prebuilt context must all produce the same circuit
/// and the same Explain JSON — including when the degradation ladder
/// rewrites the configuration.
#[test]
fn pipeline_runs_are_byte_identical_across_entry_points_and_ladder() {
    let topo = Topology::ibmq_20_tokyo();
    let context = HardwareContext::new(topo.clone());
    let spec = er_spec(14, 0.4, 99, true);
    let configs = [
        ("qaim", CompileOptions::qaim_only()),
        ("ip", CompileOptions::ip()),
        ("ic", CompileOptions::ic()),
        // VIC without calibration + fallback: exercises the ladder
        // (degrades to IC) — its narrative must replay identically too.
        ("vic-ladder", CompileOptions::vic().with_fallback()),
    ];
    for (name, options) in &configs {
        let a = try_compile_with_context(&spec, &context, options, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let b = try_compile_with_context(&spec, &context, options, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let c = try_compile(&spec, &topo, None, options, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b), "{name}: rerun diverged");
        assert_eq!(
            fingerprint(&a),
            fingerprint(&c),
            "{name}: shared-cache entry point diverged"
        );
        assert_eq!(a.explain(), b.explain());
        assert_eq!(a.initial_layout(), c.initial_layout());
        assert_eq!(a.final_layout(), c.final_layout());
    }
}

/// Batch compiles must not depend on worker count (work stealing changes
/// execution order, never results).
#[test]
fn batch_results_are_worker_count_invariant() {
    let topo = Topology::ibmq_20_tokyo();
    let context = HardwareContext::new(topo);
    let jobs: Vec<BatchJob> = (0..10)
        .map(|i| {
            let options = match i % 3 {
                0 => CompileOptions::ic(),
                1 => CompileOptions::ip(),
                _ => CompileOptions::qaim_only(),
            };
            BatchJob::new(
                er_spec(11 + i % 4, 0.4, 300 + i as u64, true),
                options,
                i as u64,
            )
        })
        .collect();
    let single: Vec<_> = compile_batch(&context, &jobs, 1)
        .into_iter()
        .map(|r| fingerprint(&r.unwrap()))
        .collect();
    for workers in [2, 4] {
        let multi: Vec<_> = compile_batch(&context, &jobs, workers)
            .into_iter()
            .map(|r| fingerprint(&r.unwrap()))
            .collect();
        assert_eq!(single, multi, "{workers}-worker batch diverged");
    }
}
