//! Integration: general Ising problems (weighted couplings + fields)
//! through the full compilation pipeline (§VI "Applicability beyond
//! QAOA-MaxCut").

use qaoa::ising::IsingProblem;
use qaoa::QaoaParams;
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::Topology;
use qroute::{routed_equivalent, satisfies_coupling};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_ising(seed: u64, n: usize) -> IsingProblem {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = qgraph::generators::connected_erdos_renyi(n, 0.4, 1000, &mut rng).unwrap();
    let couplings = graph
        .edges()
        .map(|e| (e.a(), e.b(), rng.gen_range(-1.5..1.5)))
        .collect();
    let fields = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    IsingProblem::new(n, couplings, fields)
}

/// The compiled physical circuit is equivalent to the problem's logical
/// QAOA circuit (fields included), for both single-pass and incremental
/// compilation.
#[test]
fn compiled_ising_circuit_is_equivalent() {
    let problem = random_ising(3, 6);
    let params = QaoaParams::new(vec![(0.41, 0.23), (0.29, 0.37)]);
    let logical = problem.circuit(&params, false);
    let spec = QaoaSpec::from_ising(&problem, &params, false);
    let topo = Topology::ring(9);
    for options in [
        CompileOptions::qaim_only(),
        CompileOptions::ip(),
        CompileOptions::ic(),
    ] {
        let mut rng = StdRng::seed_from_u64(5);
        let compiled = compile(&spec, &topo, None, &options, &mut rng);
        assert!(satisfies_coupling(compiled.physical(), &topo));
        assert!(
            routed_equivalent(
                &logical,
                compiled.physical(),
                compiled.initial_layout(),
                compiled.final_layout()
            ),
            "{options:?} broke Ising semantics"
        );
    }
}

/// Field rotations survive compilation with the right multiplicity and
/// weighted couplings keep their angles.
#[test]
fn field_and_coupling_gates_are_preserved() {
    let problem = IsingProblem::new(
        4,
        vec![(0, 1, 0.5), (1, 2, -0.75), (2, 3, 1.25)],
        vec![0.3, 0.0, -0.8, 0.0],
    );
    let params = QaoaParams::p1(0.6, 0.3);
    let spec = QaoaSpec::from_ising(&problem, &params, true);
    assert_eq!(spec.field_terms(0).len(), 2); // zero fields compile away
    let topo = Topology::linear(4);
    let mut rng = StdRng::seed_from_u64(1);
    let compiled = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);
    assert_eq!(compiled.physical().count_gate("rzz"), 3);
    assert_eq!(compiled.physical().count_gate("rz"), 2);
    // Angles: Rzz(2γJ)
    let angles: Vec<f64> = compiled
        .physical()
        .iter()
        .filter(|i| i.gate().name() == "rzz")
        .flat_map(|i| i.gate().params())
        .map(|a| a.value())
        .collect();
    for j in [0.5, -0.75, 1.25] {
        let want = 2.0 * 0.6 * j;
        assert!(
            angles.iter().any(|a| (a - want).abs() < 1e-12),
            "missing coupling angle {want} in {angles:?}"
        );
    }
}

/// End to end: optimized Ising QAOA sampled through a compiled circuit
/// concentrates probability on low-energy configurations.
#[test]
fn compiled_ising_sampling_finds_low_energy_states() {
    let problem = random_ising(17, 8);
    let (params, expectation) = problem.optimize(1, 16);
    let ground = problem.ground_energy();
    assert!(
        expectation < 0.9 * problem.energy(0),
        "optimizer made progress"
    );

    let spec = QaoaSpec::from_ising(&problem, &params, true);
    let topo = Topology::ibmq_16_melbourne();
    let mut rng = StdRng::seed_from_u64(2);
    let compiled = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);

    // Noiseless sampling of the physical circuit, read back through the
    // final layout, must reproduce the optimized expectation.
    let state = qsim::StateVector::from_circuit(compiled.physical());
    let measured = state.expectation_diagonal(|phys| {
        let mut bits = 0usize;
        for l in 0..problem.num_spins() {
            if phys >> compiled.final_layout().phys(l) & 1 == 1 {
                bits |= 1 << l;
            }
        }
        problem.energy(bits)
    });
    assert!(
        (measured - expectation).abs() < 1e-6,
        "compiled expectation {measured} vs optimized {expectation} (ground {ground})"
    );
}
