//! Property-based tests for the compilation methodologies.

use proptest::prelude::*;
use qcompile::ip::{flatten, pack_layers};
use qcompile::mapping::{greedy_v, qaim, qaim_variant, QaimVariant};
use qcompile::{compile, CompileOptions, CphaseOp, QaoaSpec};
use qhw::Topology;
use qroute::satisfies_coupling;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a CPHASE list over `n` logical qubits (a random subset of
/// edges of the complete graph).
fn arb_ops(n: usize) -> impl Strategy<Value = Vec<CphaseOp>> {
    let all: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    proptest::sample::subsequence(all.clone(), 0..=all.len()).prop_map(|edges| {
        edges
            .into_iter()
            .map(|(a, b)| CphaseOp::new(a, b, 0.4))
            .collect()
    })
}

fn canonical(ops: &[CphaseOp]) -> Vec<(usize, usize)> {
    let mut v: Vec<(usize, usize)> = ops.iter().map(|o| (o.a.min(o.b), o.a.max(o.b))).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packing_preserves_ops_and_respects_bins(
        ops in arb_ops(10),
        seed in 0u64..200,
        limit in proptest::option::of(1usize..6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = pack_layers(10, &ops, limit, &mut rng);
        // multiset preserved
        prop_assert_eq!(canonical(&flatten(&layers)), canonical(&ops));
        for layer in &layers {
            if let Some(lim) = limit {
                prop_assert!(layer.len() <= lim);
            }
            let mut used = std::collections::HashSet::new();
            for op in layer {
                prop_assert!(used.insert(op.a));
                prop_assert!(used.insert(op.b));
            }
        }
        // Layer count is at least the MOQ bound.
        if !ops.is_empty() {
            let profile = qcompile::ProgramProfile::from_ops(10, &ops);
            prop_assert!(layers.len() >= profile.moq());
        }
    }

    #[test]
    fn mappings_are_injective_and_in_range(ops in arb_ops(10), variant_idx in 0usize..4) {
        prop_assume!(!ops.is_empty());
        let spec = QaoaSpec::new(10, vec![(ops, 0.3)], false);
        let topo = Topology::ibmq_20_tokyo();
        let variant = [
            QaimVariant::Full,
            QaimVariant::DegreeStrength,
            QaimVariant::NoDistance,
            QaimVariant::NoStrength,
        ][variant_idx];
        for layout in [qaim_variant(&spec, &topo, variant), greedy_v(&spec, &topo)] {
            let mut seen = std::collections::HashSet::new();
            for (_, p) in layout.iter() {
                prop_assert!(p < 20);
                prop_assert!(seen.insert(p));
            }
            prop_assert_eq!(layout.num_logical(), 10);
        }
    }

    #[test]
    fn every_pipeline_is_compliant(
        ops in arb_ops(9),
        seed in 0u64..100,
        strategy_idx in 0usize..5,
    ) {
        prop_assume!(!ops.is_empty());
        let spec = QaoaSpec::new(9, vec![(ops.clone(), 0.3)], true);
        let topo = Topology::ibmq_16_melbourne();
        let (topo_m, cal) = qhw::Calibration::melbourne_2020_04_08();
        prop_assert_eq!(topo.graph(), topo_m.graph());
        let options = [
            CompileOptions::naive(),
            CompileOptions::qaim_only(),
            CompileOptions::ip(),
            CompileOptions::ic(),
            CompileOptions::vic(),
        ][strategy_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let compiled = compile(&spec, &topo_m, Some(&cal), &options, &mut rng);
        prop_assert!(satisfies_coupling(compiled.physical(), &topo_m));
        prop_assert_eq!(compiled.physical().count_gate("rzz"), ops.len());
        prop_assert_eq!(compiled.physical().count_gate("measure"), 9);
        // basis metrics are consistent
        prop_assert!(compiled.depth() <= compiled.gate_count() + 9);
        prop_assert!(compiled.cx_count() >= 2 * ops.len());
        let sp = compiled.success_probability(&cal);
        prop_assert!((0.0..=1.0).contains(&sp));
    }

    #[test]
    fn qaim_first_placement_is_strongest_qubit(ops in arb_ops(8)) {
        prop_assume!(!ops.is_empty());
        let spec = QaoaSpec::new(8, vec![(ops, 0.3)], false);
        let topo = Topology::ibmq_20_tokyo();
        let layout = qaim(&spec, &topo);
        let heaviest = spec.profile().ranked_qubits()[0];
        prop_assert_eq!(layout.phys(heaviest), topo.profile().strongest());
    }

    #[test]
    fn packing_limit_one_is_fully_serial(ops in arb_ops(8), seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = pack_layers(8, &ops, Some(1), &mut rng);
        prop_assert_eq!(layers.len(), ops.len());
        prop_assert!(layers.iter().all(|l| l.len() == 1));
    }
}
