//! The explain report must be byte-reproducible: same spec, options and
//! seed → identical JSON and text, across repeated runs and across batch
//! worker counts. The report deliberately carries no wall-clock fields,
//! so this is an exact-equality check, not a tolerance one.

use qcompile::{
    compile_batch, try_compile_with_context, BatchJob, CompileOptions, CphaseOp, QaoaSpec,
};
use qhw::{HardwareContext, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ring_spec(n: usize) -> QaoaSpec {
    let ops = (0..n).map(|i| CphaseOp::new(i, (i + 1) % n, 0.4)).collect();
    QaoaSpec::new(n, vec![(ops, 0.3)], true)
}

#[test]
fn explain_is_byte_identical_across_runs() {
    let context = HardwareContext::new(Topology::ibmq_20_tokyo());
    for options in [
        CompileOptions::qaim_only(),
        CompileOptions::ip(),
        CompileOptions::ic(),
    ] {
        let run = || {
            let mut rng = StdRng::seed_from_u64(4242);
            let compiled =
                try_compile_with_context(&ring_spec(8), &context, &options, &mut rng).unwrap();
            (
                compiled.explain().to_json(),
                compiled.explain().render_text(),
            )
        };
        let (json_a, text_a) = run();
        let (json_b, text_b) = run();
        assert_eq!(json_a, json_b, "explain JSON must be reproducible");
        assert_eq!(text_a, text_b, "explain text must be reproducible");
    }
}

#[test]
fn explain_is_independent_of_batch_worker_count() {
    let context = HardwareContext::new(Topology::ibmq_20_tokyo());
    let jobs: Vec<BatchJob> = (0..6)
        .map(|i| {
            let options = if i % 2 == 0 {
                CompileOptions::ic()
            } else {
                CompileOptions::ip()
            };
            BatchJob::new(ring_spec(6 + i), options, 9000 + i as u64)
        })
        .collect();
    let serial = compile_batch(&context, &jobs, 1);
    let parallel = compile_batch(&context, &jobs, 4);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let s = s.as_ref().unwrap().explain().to_json();
        let p = p.as_ref().unwrap().explain().to_json();
        assert_eq!(s, p, "job {i}: worker count changed the explain report");
    }
}

#[test]
fn explain_is_byte_identical_across_rebinds() {
    // Rebinding a compiled artifact substitutes angles only; the explain
    // report (and the trace it derives from) must carry over verbatim,
    // so its JSON and text renderings stay byte-identical however many
    // times and with whatever values the template is rebound.
    use qcompile::try_compile_artifact_with_context;

    let context = HardwareContext::new(Topology::ibmq_20_tokyo());
    let graph = qgraph::Graph::from_edges(8, (0..8).map(|i| (i, (i + 1) % 8))).unwrap();
    let problem = qaoa::MaxCut::without_optimum(graph);
    let spec = QaoaSpec::from_maxcut_parametric(&problem, 2, true);
    let mut rng = StdRng::seed_from_u64(4242);
    let artifact =
        try_compile_artifact_with_context(&spec, &context, &CompileOptions::ic(), &mut rng)
            .unwrap();

    let template_json = artifact.template().explain().to_json();
    let template_text = artifact.template().explain().render_text();
    for (i, values) in [
        vec![0.9, 0.35, 0.7, 0.2],
        vec![0.1, 0.2, 0.3, 0.4],
        vec![2.8, 1.5, 0.0, 1.0],
    ]
    .into_iter()
    .enumerate()
    {
        let bound = artifact.bind(&qcircuit::ParamValues::new(values)).unwrap();
        assert_eq!(
            bound.explain().to_json(),
            template_json,
            "rebind {i} changed the explain JSON"
        );
        assert_eq!(
            bound.explain().render_text(),
            template_text,
            "rebind {i} changed the explain text"
        );
        assert_eq!(
            bound.trace().records().len(),
            artifact.template().trace().records().len(),
            "rebind {i} changed the pass trace"
        );
    }
}

#[test]
fn explain_json_has_no_wall_clock_fields() {
    let context = HardwareContext::new(Topology::ibmq_20_tokyo());
    let mut rng = StdRng::seed_from_u64(7);
    let compiled =
        try_compile_with_context(&ring_spec(8), &context, &CompileOptions::ic(), &mut rng).unwrap();
    let json = compiled.explain().to_json();
    for needle in ["_ns", "_ms", "elapsed"] {
        assert!(!json.contains(needle), "wall clock leaked: {needle}");
    }
}
