//! Property test for the batch driver's determinism contract: compiling a
//! seeded Figure 7-style workload through `compile_batch` on N worker
//! threads is **byte-identical** to running the same jobs in a serial
//! loop, for every field of every compiled circuit (the wall-clock trace
//! excepted — time is not part of the contract).

use proptest::prelude::*;
use qaoa::{MaxCut, QaoaParams};
use qcompile::{compile_batch, try_compile_with_context, BatchJob, CompileOptions, QaoaSpec};
use qhw::{Calibration, HardwareContext, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A Figure 7 workload instance: MaxCut on a sparse connected
/// Erdős–Rényi graph, compiled for ibmq_20_tokyo.
fn fig7_spec(seed: u64) -> QaoaSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = qgraph::generators::connected_erdos_renyi(16, 0.15, 1000, &mut rng).unwrap();
    QaoaSpec::from_maxcut(&MaxCut::without_optimum(g), &QaoaParams::p1(0.5, 0.3), true)
}

const CONFIGS: [fn() -> CompileOptions; 5] = [
    CompileOptions::naive,
    CompileOptions::qaim_only,
    CompileOptions::ip,
    CompileOptions::ic,
    CompileOptions::vic,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_batch_is_byte_identical_to_serial(
        base_seed in 0u64..10_000,
        workers in 4usize..9,
        num_jobs in 5usize..9,
    ) {
        let topo = Topology::ibmq_20_tokyo();
        let mut cal_rng = StdRng::seed_from_u64(base_seed ^ 0xCA11);
        let cal = Calibration::random_normal(&topo, 1e-2, 5e-3, &mut cal_rng);
        let context = HardwareContext::with_calibration(topo, cal);

        let jobs: Vec<BatchJob> = (0..num_jobs)
            .map(|i| BatchJob::new(
                fig7_spec(base_seed + i as u64),
                CONFIGS[i % CONFIGS.len()](),
                base_seed.wrapping_mul(31) + i as u64,
            ))
            .collect();

        let parallel = compile_batch(&context, &jobs, workers);
        prop_assert_eq!(parallel.len(), jobs.len());
        for (job, got) in jobs.iter().zip(&parallel) {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let want = try_compile_with_context(&job.spec, &context, &job.options, &mut rng)
                .expect("serial reference compile succeeds");
            let got = got.as_ref().expect("batch compile succeeds");
            prop_assert_eq!(got.physical(), want.physical());
            prop_assert_eq!(got.basis_circuit(), want.basis_circuit());
            prop_assert_eq!(got.initial_layout(), want.initial_layout());
            prop_assert_eq!(got.final_layout(), want.final_layout());
            prop_assert_eq!(got.swap_count(), want.swap_count());
            prop_assert_eq!(got.depth(), want.depth());
            prop_assert_eq!(got.gate_count(), want.gate_count());
        }

        // Two parallel runs with different worker counts also agree.
        let again = compile_batch(&context, &jobs, workers.saturating_sub(2).max(1));
        for (a, b) in parallel.iter().zip(&again) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            prop_assert_eq!(a.physical(), b.physical());
            prop_assert_eq!(a.basis_circuit(), b.basis_circuit());
        }
    }
}
