//! `qroute::verify` coverage on VIC-routed circuits under degraded
//! calibrations.
//!
//! VIC is the pass most exposed to calibration quality: its routing
//! metric is built from `1 / success_rate` edge weights, so a drifted or
//! extreme table changes every SWAP decision. These tests pin that no
//! matter how skewed the (still valid) table is, the routed circuit
//! remains coupling-compliant and functionally equivalent to the logical
//! program — and that corrupted tables take the fallback path to an
//! equally verified circuit.

use qcompile::{try_compile_with_context, CompileOptions, QaoaSpec};
use qhw::fault::{FaultInjector, FaultKind};
use qhw::{Calibration, HardwareContext, Topology};
use qroute::{routed_equivalent, satisfies_coupling};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The logical reference circuit in spec order (CPHASEs commute, so any
/// ordering a pass chose must be equivalent to this one).
fn logical_reference(spec: &QaoaSpec) -> qcircuit::Circuit {
    let n = spec.num_qubits();
    let mut c = qcircuit::Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for (level, (ops, beta)) in spec.levels().iter().enumerate() {
        for op in ops {
            c.rzz(op.angle, op.a, op.b);
        }
        for &(q, angle) in spec.field_terms(level) {
            c.rz(angle, q);
        }
        for q in 0..n {
            c.rx(beta.scaled(2.0), q);
        }
    }
    if spec.measure() {
        c.measure_all();
    }
    c
}

fn small_spec(seed: u64) -> QaoaSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = qgraph::generators::connected_erdos_renyi(10, 0.35, 1000, &mut rng).unwrap();
    let problem = qaoa::MaxCut::without_optimum(g);
    QaoaSpec::from_maxcut(&problem, &qaoa::QaoaParams::p1(0.5, 0.3), true)
}

fn assert_verified(spec: &QaoaSpec, topo: &Topology, compiled: &qcompile::CompiledCircuit) {
    assert!(
        satisfies_coupling(compiled.physical(), topo),
        "coupling violated"
    );
    assert!(
        routed_equivalent(
            &logical_reference(spec),
            compiled.physical(),
            compiled.initial_layout(),
            compiled.final_layout(),
        ),
        "routed circuit is not equivalent to the logical program"
    );
}

#[test]
fn vic_routed_circuits_verify_under_heavy_drift() {
    // Melbourne (15 qubits) keeps full state-vector equivalence feasible.
    let topo = Topology::ibmq_16_melbourne();
    let base = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
    for seed in 0..5u64 {
        let drifted =
            FaultInjector::new(seed).corrupt_calibration(&topo, &base, FaultKind::HeavyDrift);
        assert!(drifted.validate(&topo).is_ok(), "drift stays valid");
        let context = HardwareContext::with_calibration(topo.clone(), drifted);
        let spec = small_spec(500 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let compiled =
            try_compile_with_context(&spec, &context, &CompileOptions::vic(), &mut rng).unwrap();
        assert!(!compiled.trace().degraded(), "valid table needs no ladder");
        assert_verified(&spec, &topo, &compiled);
    }
}

#[test]
fn vic_routed_circuits_verify_under_extreme_valid_tables() {
    let topo = Topology::ibmq_16_melbourne();
    let spec = small_spec(7);
    // Both validity extremes: a near-perfect device and one at the edge
    // of MAX_ERROR, where every reliability weight saturates.
    for (cnot, single, readout) in [
        (qhw::MIN_ERROR, qhw::MIN_ERROR, qhw::MIN_ERROR),
        (qhw::MAX_ERROR, 0.01, qhw::MAX_ERROR),
        (0.49, 0.001, 0.3),
    ] {
        let cal = Calibration::uniform(&topo, cnot, single, readout);
        assert!(cal.validate(&topo).is_ok());
        let context = HardwareContext::with_calibration(topo.clone(), cal);
        let mut rng = StdRng::seed_from_u64(9);
        let compiled =
            try_compile_with_context(&spec, &context, &CompileOptions::vic(), &mut rng).unwrap();
        assert_verified(&spec, &topo, &compiled);
    }
}

#[test]
fn fallback_vic_circuits_verify_like_primary_ones() {
    // A corrupted table pushes VIC down the ladder; the delivered circuit
    // must verify exactly as a primary compile would — re-checked here
    // externally, independent of the pipeline's internal verification.
    let topo = Topology::ibmq_16_melbourne();
    let base = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
    for kind in [
        FaultKind::NanRate,
        FaultKind::DeadLink,
        FaultKind::MissingEntry,
    ] {
        let bad = FaultInjector::new(21).corrupt_calibration(&topo, &base, kind);
        let context = HardwareContext::with_calibration(topo.clone(), bad);
        let spec = small_spec(11);
        let mut rng = StdRng::seed_from_u64(3);
        let options = CompileOptions::vic().with_fallback();
        let compiled = try_compile_with_context(&spec, &context, &options, &mut rng).unwrap();
        assert!(compiled.trace().degraded(), "{}", kind.label());
        assert_verified(&spec, &topo, &compiled);
    }
}
