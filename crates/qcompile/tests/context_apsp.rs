//! Pins the HardwareContext performance contract: all-pairs shortest-path
//! (Floyd–Warshall) runs are paid once at context construction and never
//! again during compilation.
//!
//! This file holds a SINGLE test: `qgraph::shortest_path::apsp_invocations`
//! is a process-global counter, and sibling tests in the same binary run
//! concurrently and would race the deltas.

use qcompile::{
    compile, compile_batch, try_compile_with_context, BatchJob, CompileOptions, CphaseOp, QaoaSpec,
};
use qgraph::shortest_path::apsp_invocations;
use qhw::{Calibration, HardwareContext, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ring_spec(n: usize) -> QaoaSpec {
    let ops = (0..n).map(|i| CphaseOp::new(i, (i + 1) % n, 0.4)).collect();
    QaoaSpec::new(n, vec![(ops, 0.3)], true)
}

#[test]
fn floyd_warshall_runs_once_per_context() {
    let topo = Topology::ibmq_20_tokyo();
    let mut rng = StdRng::seed_from_u64(1);
    let cal = Calibration::random_normal(&topo, 1e-2, 5e-3, &mut rng);

    // An uncalibrated context costs exactly one APSP run (unit hops).
    let before = apsp_invocations();
    let plain = HardwareContext::new(topo.clone());
    assert_eq!(apsp_invocations() - before, 1);

    // A calibrated context costs exactly two (hops + reliability-weighted).
    let before = apsp_invocations();
    let calibrated = HardwareContext::with_calibration(topo.clone(), cal.clone());
    assert_eq!(apsp_invocations() - before, 2);

    // Compiling against a context — any configuration — recomputes nothing.
    let before = apsp_invocations();
    for options in [
        CompileOptions::naive(),
        CompileOptions::qaim_only(),
        CompileOptions::ip(),
        CompileOptions::ic(),
        CompileOptions::vic(),
    ] {
        try_compile_with_context(&ring_spec(8), &calibrated, &options, &mut rng).unwrap();
    }
    try_compile_with_context(&ring_spec(8), &plain, &CompileOptions::ic(), &mut rng).unwrap();
    assert_eq!(
        apsp_invocations(),
        before,
        "compilation must reuse the context's cached distance matrices"
    );

    // A whole batch shares the one context: still zero recomputation.
    let jobs: Vec<BatchJob> = (0..8)
        .map(|i| BatchJob::new(ring_spec(6 + i % 3), CompileOptions::vic(), i as u64))
        .collect();
    let before = apsp_invocations();
    for r in compile_batch(&calibrated, &jobs, 4) {
        r.unwrap();
    }
    assert_eq!(apsp_invocations(), before);

    // The legacy per-call entry point resolves through the process-wide
    // shared-context cache: the first call for a (topology, calibration
    // epoch) pair pays the construction (2 runs: calibrated compile) ...
    let before = apsp_invocations();
    let _ = compile(
        &ring_spec(8),
        &topo,
        Some(&cal),
        &CompileOptions::vic(),
        &mut rng,
    );
    assert_eq!(apsp_invocations() - before, 2);

    // ... and every later call — same pair, any strategy — pays zero.
    // This is what keeps ladder/retry/scripted per-call compile loops off
    // the O(n^3) Floyd–Warshall path.
    let before = apsp_invocations();
    for options in [CompileOptions::vic(), CompileOptions::ic()] {
        let _ = compile(&ring_spec(8), &topo, Some(&cal), &options, &mut rng);
    }
    assert_eq!(
        apsp_invocations(),
        before,
        "repeat legacy compiles must hit the shared context cache"
    );

    // A fresh calibration epoch is a different cache entry: paid once.
    let cal2 = Calibration::random_normal(&topo, 1e-2, 5e-3, &mut rng);
    let before = apsp_invocations();
    let _ = compile(
        &ring_spec(8),
        &topo,
        Some(&cal2),
        &CompileOptions::vic(),
        &mut rng,
    );
    assert_eq!(apsp_invocations() - before, 2);
    let before = apsp_invocations();
    let _ = compile(
        &ring_spec(8),
        &topo,
        Some(&cal2),
        &CompileOptions::vic(),
        &mut rng,
    );
    assert_eq!(apsp_invocations(), before);
}
