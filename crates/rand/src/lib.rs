//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this repository is fully offline, so the
//! crates-io `rand` cannot be fetched. This shim implements exactly the
//! surface the workspace uses — [`Rng`], [`RngCore`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — over a xoshiro256++
//! generator. Streams are deterministic per seed (as the experiments
//! require) but are **not** identical to upstream `rand`'s ChaCha-based
//! `StdRng`; all in-repo tests assert statistical or structural facts, not
//! upstream byte streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A uniform double in `[0, 1)` built from the top 53 bits of one draw.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform sample from `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128 + if inclusive { 1 } else { 0 };
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                // Multiply-shift keeps the modulo bias negligible for the
                // span sizes this workspace uses.
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "cannot sample from empty range");
        low + unit_f64(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "cannot sample from empty range");
        low + (unit_f64(rng) as f32) * (high - low)
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`, but seed-stable and of ample
    /// statistical quality for the experiments here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&y));
            let z: u8 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&z));
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (800..1200).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..20).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "a 20-element shuffle should not be identity");

        let pool = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*pool.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unsized_rng_is_usable_through_dyn() {
        // The compile path passes `&mut dyn RngCore` through trait objects.
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: usize = dyn_rng.gen_range(0..10);
        assert!(x < 10);
        let mut xs = [1, 2, 3, 4];
        xs.shuffle(dyn_rng);
    }
}
