//! The compile service: admission, per-tenant fair queuing, worker
//! pool, overload shedding and calibration hot-reload.
//!
//! ## Admission-time determinism
//!
//! `submit` classifies every request — hit, miss, shed or reject —
//! under one lock, in arrival order, before any worker touches it.
//! Workers never make cache decisions; they compile the job admission
//! reserved and fill its completion slot. The outcome sequence (and
//! every `qserve/*` counter) is therefore a pure function of the
//! request stream, whatever the worker count — the property the CI
//! manifest gate and the cross-worker determinism proptest pin.
//!
//! ## Fairness and overload
//!
//! Each tenant owns a FIFO; workers pop round-robin across tenants, so
//! one tenant's backlog cannot starve another's single request. When
//! the shared queue is at capacity, a miss walks its
//! [`CompileOptions::ladder`] looking for an already-cached cheaper
//! rung (VIC → IC → NAIVE) to serve instead — degraded service beats no
//! service — and only rejects with [`ServeError::Overloaded`] when no
//! rung is cached.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qcompile::{
    try_compile_artifact_with_context, CompileError, CompileOptions, CompiledArtifact, QaoaSpec,
};
use qhw::{Calibration, HardwareContext, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{ArtifactCache, CacheKey, Completion, SlotState};

/// Why the service could not produce an artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The queue was full and no ladder rung of the request was cached.
    Overloaded {
        /// Jobs queued at admission time.
        queued: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The compile itself failed (shared verbatim with every request
    /// coalesced onto the same cache entry).
    Compile(CompileError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queued, capacity } => {
                write!(f, "service overloaded ({queued}/{capacity} jobs queued)")
            }
            ServeError::Compile(e) => write!(f, "compile failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How admission classified a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from the cache (ready, or coalesced onto an in-flight
    /// compile of the same key).
    Hit,
    /// Admitted for compilation.
    Miss,
    /// Queue full; served from a cached lower ladder rung (`rungs` steps
    /// below the requested configuration).
    Shed {
        /// Ladder steps taken below the requested rung.
        rungs: u8,
    },
    /// Queue full and no ladder rung was cached.
    Rejected,
}

/// One compile request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Fair-queuing identity; mapped onto a tenant queue modulo
    /// [`ServiceConfig::tenants`].
    pub tenant: u32,
    /// The program to compile.
    pub spec: QaoaSpec,
    /// The requested configuration.
    pub options: CompileOptions,
    /// RNG seed a compile of this request uses. Coalescing note: the
    /// *first* requester of a key wins the compile, so the seed of later
    /// coalesced requests is ignored — key identity deliberately excludes
    /// the seed.
    pub seed: u64,
}

impl Request {
    /// Builds a request.
    pub fn new(tenant: u32, spec: QaoaSpec, options: CompileOptions, seed: u64) -> Request {
        Request {
            tenant,
            spec,
            options,
            seed,
        }
    }
}

/// A finished request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The artifact (shared, never copied) or the structured failure.
    pub result: Result<Arc<CompiledArtifact>, ServeError>,
    /// Admission's classification.
    pub outcome: Outcome,
    /// Position in the service's completion order (1-based); cache hits
    /// take theirs at admission, compiles when the worker finishes.
    pub served_order: u64,
    /// Submit-to-resolution wall time for this request.
    pub latency: Duration,
}

/// A submitted request: already resolved (hit / shed / reject) or
/// pending on an in-flight compile. Borrows the service, so tickets
/// cannot outlive it.
pub struct Ticket<'a> {
    _service: &'a Service,
    state: TicketState,
}

#[derive(Debug)]
enum TicketState {
    Ready(Response),
    Pending {
        completion: Arc<Completion>,
        outcome: Outcome,
        submitted: Instant,
    },
}

impl Ticket<'_> {
    /// Whether the response is already available without blocking.
    pub fn is_ready(&self) -> bool {
        match &self.state {
            TicketState::Ready(_) => true,
            TicketState::Pending { completion, .. } => {
                completion.slot.lock().expect("completion lock").is_some()
            }
        }
    }

    /// Admission's classification of this request.
    pub fn outcome(&self) -> Outcome {
        match &self.state {
            TicketState::Ready(r) => r.outcome,
            TicketState::Pending { outcome, .. } => *outcome,
        }
    }

    /// Blocks until the response is available.
    pub fn wait(self) -> Response {
        match self.state {
            TicketState::Ready(response) => response,
            TicketState::Pending {
                completion,
                outcome,
                submitted,
            } => {
                let mut slot = completion.slot.lock().expect("completion lock");
                while slot.is_none() {
                    slot = completion.ready.wait(slot).expect("completion lock");
                }
                let (result, served_order, resolved_at) =
                    slot.as_ref().expect("loop exits on Some").clone();
                Response {
                    result,
                    outcome,
                    served_order,
                    latency: resolved_at.saturating_duration_since(submitted),
                }
            }
        }
    }
}

/// Service sizing and policy.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads compiling queued jobs. `0` is valid and means no
    /// background compilation: jobs queue until [`Service::drain_one`]
    /// runs them inline (deterministic tests drive the queue this way).
    pub workers: usize,
    /// Artifact-cache capacity in entries (min 1).
    pub cache_capacity: usize,
    /// Queued-job bound across all tenants; admission beyond it sheds
    /// down the ladder, then rejects.
    pub queue_capacity: usize,
    /// Number of tenant FIFOs (min 1); request tenants map in modulo.
    pub tenants: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: qcompile::default_workers().min(4),
            cache_capacity: 256,
            queue_capacity: 4096,
            tenants: 4,
        }
    }
}

/// Deterministic counters mirrored from the `qserve/*` qtrace series,
/// readable without draining the recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted (including warm calls).
    pub requests: u64,
    /// Cache hits (ready or coalesced).
    pub hits: u64,
    /// Admitted compiles.
    pub misses: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Requests served from a cached lower ladder rung under overload.
    pub shed: u64,
    /// Requests rejected under overload.
    pub rejected: u64,
    /// Entries dropped by calibration hot-reloads.
    pub invalidated: u64,
    /// Calibration hot-reloads performed.
    pub epoch_bumps: u64,
    /// Current calibration epoch.
    pub epoch: u64,
    /// Artifacts (and reservations) currently cached.
    pub cached_entries: usize,
    /// Jobs currently queued.
    pub queued: usize,
    /// Order-sensitive fingerprint folded over every admission outcome
    /// `(key fingerprint, classification)` — two runs with identical
    /// values served identical sequences.
    pub sequence_fp: u64,
}

struct Job {
    fp: u64,
    id: u64,
    spec: QaoaSpec,
    options: CompileOptions,
    seed: u64,
    context: Arc<HardwareContext>,
    completion: Arc<Completion>,
}

struct Inner {
    cache: ArtifactCache,
    queues: Vec<std::collections::VecDeque<Job>>,
    queued: usize,
    rr_cursor: usize,
    context: Arc<HardwareContext>,
    epoch: u64,
    topology_fp: u64,
    stats: ServiceStats,
    shutdown: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    work: Condvar,
    served: AtomicU64,
}

/// The in-process compile service. See the crate docs for the example
/// and the module docs for the serving policy.
pub struct Service {
    shared: Arc<Shared>,
    config: ServiceConfig,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts a service for one hardware target, spawning
    /// [`ServiceConfig::workers`] compile threads.
    pub fn new(
        topology: Topology,
        calibration: Option<Calibration>,
        config: ServiceConfig,
    ) -> Self {
        let topology_fp = topology.fingerprint();
        let context = Arc::new(HardwareContext::from_parts(topology, calibration));
        let tenants = config.tenants.max(1);
        let inner = Inner {
            cache: ArtifactCache::new(config.cache_capacity),
            queues: (0..tenants).map(|_| Default::default()).collect(),
            queued: 0,
            rr_cursor: 0,
            context,
            epoch: 0,
            topology_fp,
            stats: ServiceStats::default(),
            shutdown: false,
        };
        let shared = Arc::new(Shared {
            inner: Mutex::new(inner),
            work: Condvar::new(),
            served: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qserve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn qserve worker")
            })
            .collect();
        Service {
            shared,
            config,
            workers,
        }
    }

    /// Submits a request, classifying it immediately; the returned
    /// ticket is resolved for hits/sheds/rejects and pending for misses.
    pub fn submit(&self, request: Request) -> Ticket<'_> {
        self.admit(request, AdmitMode::Queue)
    }

    /// `submit` + `wait`.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// Like [`Service::call`], but a miss compiles inline on the calling
    /// thread, bypassing the queue and its capacity (so it can never
    /// shed or reject). Deterministic cache warming uses this.
    pub fn warm(&self, request: Request) -> Response {
        self.admit(request, AdmitMode::Inline).wait()
    }

    fn admit(&self, request: Request, mode: AdmitMode) -> Ticket<'_> {
        let submitted = Instant::now();
        let q = qtrace::global();
        let mut inner = self.shared.inner.lock().expect("service lock");
        inner.stats.requests += 1;
        q.add("qserve/requests", 1);

        let key = CacheKey::new(
            request.spec,
            request.options,
            inner.topology_fp,
            inner.epoch,
        );
        let fp = key.fingerprint();
        if let Some(state) = inner.cache.lookup(fp, &key) {
            inner.stats.hits += 1;
            inner.note(fp, 2);
            q.add("qserve/cache/hits", 1);
            return self.resolve(state, Outcome::Hit, submitted);
        }

        if matches!(mode, AdmitMode::Queue) && inner.queued >= self.config.queue_capacity {
            // Shed: serve any cached cheaper rung before rejecting.
            for (steps, rung) in key.options.ladder().into_iter().enumerate().skip(1) {
                let alt = CacheKey::new(key.spec.clone(), rung, inner.topology_fp, inner.epoch);
                let alt_fp = alt.fingerprint();
                if let Some(state) = inner.cache.lookup(alt_fp, &alt) {
                    inner.stats.shed += 1;
                    inner.note(alt_fp, 3);
                    q.add("qserve/shed", 1);
                    let outcome = Outcome::Shed { rungs: steps as u8 };
                    return self.resolve(state, outcome, submitted);
                }
            }
            inner.stats.rejected += 1;
            inner.note(fp, 4);
            q.add("qserve/rejected", 1);
            let error = ServeError::Overloaded {
                queued: inner.queued,
                capacity: self.config.queue_capacity,
            };
            let served_order = self.shared.served.fetch_add(1, Ordering::SeqCst) + 1;
            return Ticket {
                _service: self,
                state: TicketState::Ready(Response {
                    result: Err(error),
                    outcome: Outcome::Rejected,
                    served_order,
                    latency: submitted.elapsed(),
                }),
            };
        }

        inner.stats.misses += 1;
        inner.note(fp, 1);
        q.add("qserve/cache/misses", 1);
        let completion = Arc::new(Completion::default());
        let job_spec = key.spec.clone();
        let options = key.options;
        let (id, evicted) = inner.cache.reserve(fp, key, Arc::clone(&completion));
        if evicted > 0 {
            inner.stats.evictions += evicted as u64;
            q.add("qserve/cache/evictions", evicted as u64);
        }
        let job = Job {
            fp,
            id,
            spec: job_spec,
            options,
            seed: request.seed,
            context: Arc::clone(&inner.context),
            completion: Arc::clone(&completion),
        };
        let ticket = Ticket {
            _service: self,
            state: TicketState::Pending {
                completion,
                outcome: Outcome::Miss,
                submitted,
            },
        };
        match mode {
            AdmitMode::Queue => {
                let queue = request.tenant as usize % inner.queues.len();
                inner.queues[queue].push_back(job);
                inner.queued += 1;
                drop(inner);
                self.shared.work.notify_one();
            }
            AdmitMode::Inline => {
                drop(inner);
                execute(&self.shared, job);
            }
        }
        ticket
    }

    fn resolve(&self, state: SlotState, outcome: Outcome, submitted: Instant) -> Ticket<'_> {
        let state = match state {
            SlotState::Ready(artifact) => {
                let served_order = self.shared.served.fetch_add(1, Ordering::SeqCst) + 1;
                TicketState::Ready(Response {
                    result: Ok(artifact),
                    outcome,
                    served_order,
                    latency: submitted.elapsed(),
                })
            }
            SlotState::Failed(error) => {
                let served_order = self.shared.served.fetch_add(1, Ordering::SeqCst) + 1;
                TicketState::Ready(Response {
                    result: Err(error),
                    outcome,
                    served_order,
                    latency: submitted.elapsed(),
                })
            }
            SlotState::Pending(completion) => TicketState::Pending {
                completion,
                outcome,
                submitted,
            },
        };
        Ticket {
            _service: self,
            state,
        }
    }

    /// Swaps in a new calibration table (or removes it), bumps the
    /// epoch, and invalidates exactly the cached entries that consumed
    /// calibration. In-flight compiles of invalidated keys complete
    /// against the context their requesters saw at admission — their
    /// waiters get the pre-reload artifact they asked for — but the
    /// cache forgets them, so post-reload requests always recompile.
    /// Returns the number of invalidated entries.
    pub fn reload_calibration(&self, calibration: Option<Calibration>) -> usize {
        let mut inner = self.shared.inner.lock().expect("service lock");
        let topology = inner.context.topology().clone();
        inner.context = Arc::new(HardwareContext::from_parts(topology, calibration));
        inner.epoch += 1;
        inner.stats.epoch_bumps += 1;
        let dropped = inner.cache.invalidate_calibration_dependent();
        inner.stats.invalidated += dropped as u64;
        let q = qtrace::global();
        q.add("qserve/epoch_bumps", 1);
        q.add("qserve/cache/invalidated", dropped as u64);
        dropped
    }

    /// The current calibration epoch (starts at 0, +1 per reload).
    pub fn epoch(&self) -> u64 {
        self.shared.inner.lock().expect("service lock").epoch
    }

    /// A snapshot of the deterministic service counters.
    pub fn stats(&self) -> ServiceStats {
        let inner = self.shared.inner.lock().expect("service lock");
        let mut stats = inner.stats;
        stats.epoch = inner.epoch;
        stats.cached_entries = inner.cache.len();
        stats.queued = inner.queued;
        stats
    }

    /// Runs one queued job inline on the calling thread, if any. With
    /// `workers: 0` this is the only way jobs execute, which gives tests
    /// full control over completion order.
    pub fn drain_one(&self) -> bool {
        let job = {
            let mut inner = self.shared.inner.lock().expect("service lock");
            pop_job(&mut inner)
        };
        match job {
            Some(job) => {
                execute(&self.shared, job);
                true
            }
            None => false,
        }
    }

    /// Emits the admission-sequence fingerprint and cache occupancy as
    /// qtrace gauges. Call once before draining a manifest: two runs
    /// with equal `qserve/cache/sequence_fp` gauges served identical
    /// outcome sequences. The gauge carries the 32-bit xor-fold of
    /// [`ServiceStats::sequence_fp`] — manifest numbers must stay
    /// exactly representable as f64 (`qtrace::json` rejects integers
    /// beyond 2^53 on read-back), and the fold preserves sensitivity to
    /// every admission in the sequence.
    pub fn flush_telemetry(&self) {
        let inner = self.shared.inner.lock().expect("service lock");
        let fp = inner.stats.sequence_fp;
        let q = qtrace::global();
        q.gauge_max("qserve/cache/sequence_fp", (fp >> 32) ^ (fp & 0xffff_ffff));
        q.gauge_max("qserve/cache/entries", inner.cache.len() as u64);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.inner.lock().expect("service lock");
            inner.shutdown = true;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[derive(Clone, Copy)]
enum AdmitMode {
    Queue,
    Inline,
}

impl Inner {
    /// Folds one admission outcome into the order-sensitive sequence
    /// fingerprint (FNV-style).
    fn note(&mut self, fp: u64, code: u8) {
        let fold = fp.rotate_left(u32::from(code) * 8) ^ u64::from(code);
        self.stats.sequence_fp = (self.stats.sequence_fp ^ fold).wrapping_mul(0x100_0000_01b3);
    }
}

/// Round-robin pop across tenant queues, resuming after the last-served
/// tenant so a busy tenant cannot starve the others.
fn pop_job(inner: &mut Inner) -> Option<Job> {
    let tenants = inner.queues.len();
    for offset in 0..tenants {
        let idx = (inner.rr_cursor + offset) % tenants;
        if let Some(job) = inner.queues[idx].pop_front() {
            inner.rr_cursor = (idx + 1) % tenants;
            inner.queued -= 1;
            return Some(job);
        }
    }
    None
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut inner = shared.inner.lock().expect("service lock");
            loop {
                if let Some(job) = pop_job(&mut inner) {
                    break Some(job);
                }
                if inner.shutdown {
                    break None;
                }
                inner = shared.work.wait(inner).expect("service lock");
            }
        };
        match job {
            Some(job) => execute(shared, job),
            None => return,
        }
    }
}

/// Compiles one reserved job and publishes the result: cache state
/// first (so later admissions see `Ready`/`Failed` directly), then the
/// completion slot for the waiters. Panics are contained exactly like
/// `qcompile::compile_batch` does it.
fn execute(shared: &Shared, job: Job) {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(job.seed);
        try_compile_artifact_with_context(&job.spec, &job.context, &job.options, &mut rng)
    }))
    .unwrap_or_else(|_| Err(CompileError::Internal("compile worker panicked".to_owned())));
    let result: Result<Arc<CompiledArtifact>, ServeError> =
        attempt.map(Arc::new).map_err(ServeError::Compile);
    let served_order = shared.served.fetch_add(1, Ordering::SeqCst) + 1;
    {
        let mut inner = shared.inner.lock().expect("service lock");
        inner.cache.complete(job.fp, job.id, &result);
    }
    let resolved_at = Instant::now();
    let mut slot = job.completion.slot.lock().expect("completion lock");
    *slot = Some((result, served_order, resolved_at));
    drop(slot);
    job.completion.ready.notify_all();
}
