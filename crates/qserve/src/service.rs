//! The compile service: admission, per-tenant fair queuing, worker
//! pool, overload shedding, fault tolerance and calibration hot-reload.
//!
//! ## Admission-time determinism
//!
//! `submit` classifies every request — hit, miss, shed, reject, or a
//! fail-fast (quarantine / breaker / throttle) — under one lock, in
//! arrival order, before any worker touches it. Workers never make
//! cache decisions; they compile the job admission reserved and fill
//! its completion slot. The outcome sequence (and every `qserve/*`
//! counter) is therefore a pure function of the request stream,
//! whatever the worker count — the property the CI manifest gate and
//! the cross-worker determinism proptest pin.
//!
//! Failure-driven state (negative-cache TTLs, quarantine strikes,
//! breaker trips) transitions at compile *completion*. For submitters
//! that wait for each response before the next submit (the chaos
//! campaign's discipline), those transitions interleave with admissions
//! in one deterministic order, so even the fault-plane counters gate
//! byte-identical across worker counts.
//!
//! ## The logical clock
//!
//! Deadlines, negative-cache backoff, breaker cooldowns and token
//! buckets all run on a logical `u64` tick count: +1 per admission,
//! plus explicit [`Service::advance`] steps. Wall time never feeds a
//! policy decision. Every clock movement sweeps the deadline plane:
//! expired queued jobs are reaped before dispatch (their waiters get
//! [`ServeError::DeadlineExceeded`]), and expired in-flight compiles
//! have their [`qcompile::CancelToken`] tripped so the pipeline aborts
//! at its next pass boundary.
//!
//! ## Fairness and overload
//!
//! Each tenant owns a FIFO; workers pop round-robin across tenants, so
//! one tenant's backlog cannot starve another's single request. When
//! the shared queue is at capacity, a miss walks its
//! [`CompileOptions::ladder`] looking for an already-cached cheaper
//! rung (VIC → IC → NAIVE) to serve instead — degraded service beats no
//! service — and only rejects with [`ServeError::Overloaded`] when no
//! rung holds a servable (non-failed) entry.
//!
//! ## Fault tolerance
//!
//! - **Retry with backoff** — a failed compile is negatively cached
//!   with a seeded, jittered exponential TTL ([`BackoffConfig`]); once
//!   it lapses the next request retries the compile, carrying the
//!   strike count into the next window. Non-recoverable program errors
//!   cache forever (retrying cannot fix an invalid spec).
//! - **Poison-pill quarantine** — a spec fingerprint whose compiles
//!   panic or blow their deadline `quarantine_threshold` times is
//!   quarantined: all further requests for that *program* (any option
//!   set) fail fast with [`ServeError::Quarantined`] until
//!   [`Service::release_quarantine`].
//! - **Per-tenant circuit breaker + token bucket** — consecutive
//!   compile failures trip a tenant's breaker open
//!   ([`ServeError::CircuitOpen`] until the cooldown admits a single
//!   probe); an optional bucket bounds a tenant's compile admission
//!   rate ([`ServeError::Throttled`]). Cache hits bypass both: serving
//!   an `Arc` clone needs no protection.
//! - **Crash-safe warm start** — with [`ServiceConfig::spill_dir`] set,
//!   every compiled artifact is spilled to disk content-addressed by
//!   its cache fingerprint; a restarted service recovers every
//!   checksum-verified entry and drops stale-epoch VIC spills exactly
//!   like a hot reload would (see [`crate::spill`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qcompile::{
    try_compile_artifact_with_context_cancellable, CancelToken, CompileError, CompileOptions,
    CompiledArtifact, QaoaSpec,
};
use qhw::fault::{ServiceFault, ServiceFaultPlane};
use qhw::{Calibration, HardwareContext, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::breaker::{
    BreakerConfig, BreakerDecision, BreakerTransition, BucketConfig, CircuitBreaker, TokenBucket,
};
use crate::cache::{spec_fingerprint, ArtifactCache, CacheKey, Completion, Lookup, SlotState};
use crate::deadline::{BackoffConfig, InflightDeadlines, PoisonLedger, QuarantineReason};
use crate::ops::{JournalEvent, OpsConfig, OpsState, RequestTrace, Stage, Waiter};
use crate::spill::SpillStore;

/// Why the service could not produce an artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The queue was full and no ladder rung of the request was cached.
    Overloaded {
        /// Jobs queued at admission time.
        queued: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The compile itself failed (shared verbatim with every request
    /// coalesced onto the same cache entry).
    Compile(CompileError),
    /// The request's deadline lapsed before a worker finished it: either
    /// reaped from the queue, or cancelled in flight at a pass boundary.
    DeadlineExceeded {
        /// The absolute logical-tick deadline that lapsed.
        deadline: u64,
        /// The logical clock when the service gave up on it.
        now: u64,
    },
    /// The program is quarantined: its compiles crashed or timed out
    /// repeatedly, so the service fails fast instead of re-detonating a
    /// worker. [`Service::release_quarantine`] lifts it.
    Quarantined {
        /// [`spec_fingerprint`] of the quarantined program.
        spec_fp: u64,
        /// What the program did to earn it.
        reason: QuarantineReason,
    },
    /// The tenant's circuit breaker is open after repeated compile
    /// failures; misses fail fast until the cooldown admits a probe.
    CircuitOpen {
        /// The tenant whose breaker is open.
        tenant: u32,
        /// Logical ticks until the next half-open probe is admitted.
        retry_in: u64,
    },
    /// The tenant's token bucket is empty: its compile admission rate
    /// exceeded the configured budget.
    Throttled {
        /// The tenant that ran dry.
        tenant: u32,
    },
}

impl ServeError {
    /// Stable machine-readable code, the label every ops-plane metric
    /// and journal line carries. The set is pinned by test — renaming a
    /// code forks every dashboard series keyed on it, so a rename must
    /// be a deliberate, test-visible decision.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Compile(_) => "compile_failed",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Quarantined { .. } => "quarantined",
            ServeError::CircuitOpen { .. } => "circuit_open",
            ServeError::Throttled { .. } => "throttled",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queued, capacity } => {
                write!(f, "service overloaded ({queued}/{capacity} jobs queued)")
            }
            ServeError::Compile(e) => write!(f, "compile failed: {e}"),
            ServeError::DeadlineExceeded { deadline, now } => {
                write!(f, "deadline exceeded (deadline tick {deadline}, now {now})")
            }
            ServeError::Quarantined { spec_fp, reason } => write!(
                f,
                "spec {spec_fp:#018x} is quarantined ({})",
                reason.label()
            ),
            ServeError::CircuitOpen { tenant, retry_in } => write!(
                f,
                "tenant {tenant} circuit breaker open (next probe in {retry_in} ticks)"
            ),
            ServeError::Throttled { tenant } => {
                write!(f, "tenant {tenant} throttled (token bucket empty)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// How admission classified a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from the cache (ready, coalesced onto an in-flight compile
    /// of the same key, or a live negative entry).
    Hit,
    /// Admitted for compilation.
    Miss,
    /// Queue full; served from a cached lower ladder rung (`rungs` steps
    /// below the requested configuration).
    Shed {
        /// Ladder steps taken below the requested rung.
        rungs: u8,
    },
    /// Queue full and no ladder rung was cached.
    Rejected,
    /// Failed fast: the program is quarantined.
    Quarantined,
    /// Failed fast: the tenant's circuit breaker is open.
    BreakerOpen,
    /// Failed fast: the tenant's token bucket is empty.
    Throttled,
}

/// One compile request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Fair-queuing identity; mapped onto a tenant queue modulo
    /// [`ServiceConfig::tenants`].
    pub tenant: u32,
    /// The program to compile.
    pub spec: QaoaSpec,
    /// The requested configuration.
    pub options: CompileOptions,
    /// RNG seed a compile of this request uses. Coalescing note: the
    /// *first* requester of a key wins the compile, so the seed of later
    /// coalesced requests is ignored — key identity deliberately excludes
    /// the seed.
    pub seed: u64,
    /// Deadline in logical ticks **relative to admission**; `None`
    /// waits forever. On a miss, the compile must finish within this
    /// many clock movements or its waiters get
    /// [`ServeError::DeadlineExceeded`].
    pub deadline: Option<u64>,
}

impl Request {
    /// Builds a request with no deadline.
    pub fn new(tenant: u32, spec: QaoaSpec, options: CompileOptions, seed: u64) -> Request {
        Request {
            tenant,
            spec,
            options,
            seed,
            deadline: None,
        }
    }

    /// Attaches a deadline `ticks` logical clock steps after admission.
    pub fn with_deadline(mut self, ticks: u64) -> Request {
        self.deadline = Some(ticks);
        self
    }
}

/// A finished request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The artifact (shared, never copied) or the structured failure.
    pub result: Result<Arc<CompiledArtifact>, ServeError>,
    /// Admission's classification.
    pub outcome: Outcome,
    /// Position in the service's completion order (1-based); cache hits
    /// take theirs at admission, compiles when the worker finishes.
    pub served_order: u64,
    /// Submit-to-resolution wall time for this request.
    pub latency: Duration,
}

/// A submitted request: already resolved (hit / shed / reject /
/// fail-fast) or pending on an in-flight compile. Borrows the service,
/// so tickets cannot outlive it.
pub struct Ticket<'a> {
    _service: &'a Service,
    state: TicketState,
}

#[derive(Debug)]
enum TicketState {
    Ready(Response),
    Pending {
        completion: Arc<Completion>,
        outcome: Outcome,
        submitted: Instant,
    },
}

impl Ticket<'_> {
    /// Whether the response is already available without blocking.
    pub fn is_ready(&self) -> bool {
        match &self.state {
            TicketState::Ready(_) => true,
            TicketState::Pending { completion, .. } => {
                completion.slot.lock().expect("completion lock").is_some()
            }
        }
    }

    /// Admission's classification of this request.
    pub fn outcome(&self) -> Outcome {
        match &self.state {
            TicketState::Ready(r) => r.outcome,
            TicketState::Pending { outcome, .. } => *outcome,
        }
    }

    /// Blocks until the response is available.
    pub fn wait(self) -> Response {
        match self.state {
            TicketState::Ready(response) => response,
            TicketState::Pending {
                completion,
                outcome,
                submitted,
            } => {
                let mut slot = completion.slot.lock().expect("completion lock");
                while slot.is_none() {
                    slot = completion.ready.wait(slot).expect("completion lock");
                }
                let (result, served_order, resolved_at) =
                    slot.as_ref().expect("loop exits on Some").clone();
                Response {
                    result,
                    outcome,
                    served_order,
                    latency: resolved_at.saturating_duration_since(submitted),
                }
            }
        }
    }
}

/// Service sizing and policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads compiling queued jobs. `0` is valid and means no
    /// background compilation: jobs queue until [`Service::drain_one`]
    /// runs them inline (deterministic tests drive the queue this way).
    pub workers: usize,
    /// Artifact-cache capacity in entries (min 1).
    pub cache_capacity: usize,
    /// Queued-job bound across all tenants; admission beyond it sheds
    /// down the ladder, then rejects.
    pub queue_capacity: usize,
    /// Number of tenant FIFOs (min 1); request tenants map in modulo.
    pub tenants: usize,
    /// Panics/timeouts of one spec fingerprint before it is quarantined
    /// (0 disables quarantine).
    pub quarantine_threshold: u32,
    /// Negative-cache TTL policy for failed compiles.
    pub backoff: BackoffConfig,
    /// Per-tenant circuit-breaker policy (`failure_threshold: 0`
    /// disables it).
    pub breaker: BreakerConfig,
    /// Per-tenant compile-admission token bucket; `None` = unlimited.
    pub bucket: Option<BucketConfig>,
    /// Directory for crash-safe artifact spill; `None` disables
    /// persistence. A restarted service pointed at the same directory
    /// warm-starts from every verifiable spilled artifact.
    pub spill_dir: Option<PathBuf>,
    /// Seeded fault-injection schedule for chaos testing; faults key on
    /// the compile admission sequence number, so the injected behavior
    /// is independent of worker count.
    pub fault_plane: Option<Arc<ServiceFaultPlane>>,
    /// Ops-plane switches: per-request lifecycle tracing and the
    /// failure-plane journal (both on by default; see [`OpsConfig`]).
    pub ops: OpsConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: qcompile::default_workers().min(4),
            cache_capacity: 256,
            queue_capacity: 4096,
            tenants: 4,
            quarantine_threshold: 3,
            backoff: BackoffConfig::default(),
            breaker: BreakerConfig::default(),
            bucket: None,
            spill_dir: None,
            fault_plane: None,
            ops: OpsConfig::default(),
        }
    }
}

/// Deterministic counters mirrored from the `qserve/*` qtrace series,
/// readable without draining the recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted (including warm calls).
    pub requests: u64,
    /// Cache hits (ready, coalesced, or live negative).
    pub hits: u64,
    /// Admitted compiles.
    pub misses: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Requests served from a cached lower ladder rung under overload.
    pub shed: u64,
    /// Requests rejected under overload.
    pub rejected: u64,
    /// Entries dropped by calibration hot-reloads.
    pub invalidated: u64,
    /// Calibration hot-reloads performed.
    pub epoch_bumps: u64,
    /// Current calibration epoch.
    pub epoch: u64,
    /// Artifacts (and reservations) currently cached.
    pub cached_entries: usize,
    /// Jobs currently queued.
    pub queued: usize,
    /// Order-sensitive fingerprint folded over every admission outcome
    /// `(key fingerprint, classification)` — two runs with identical
    /// values served identical sequences.
    pub sequence_fp: u64,
    /// Queued jobs reaped because their deadline lapsed before dispatch.
    pub deadline_reaped: u64,
    /// In-flight compiles cancelled by a deadline sweep.
    pub cancelled: u64,
    /// Negative-cache entries that lapsed and were reaped at lookup
    /// (each one re-admits the compile — the retry count).
    pub negative_expired: u64,
    /// Requests failed fast because their program is quarantined.
    pub quarantine_rejects: u64,
    /// Programs currently quarantined.
    pub quarantined_specs: u64,
    /// Circuit-breaker open transitions.
    pub breaker_trips: u64,
    /// Requests failed fast on an open breaker.
    pub breaker_rejects: u64,
    /// Tenant breakers currently open (snapshot).
    pub breakers_open: u64,
    /// Requests failed fast on an empty token bucket.
    pub throttled: u64,
    /// Artifacts spilled to disk.
    pub spill_saved: u64,
    /// Artifacts recovered from disk at startup.
    pub spill_recovered: u64,
    /// Spill files rejected at recovery (checksum/parse/fingerprint).
    pub spill_corrupt: u64,
    /// Spill files dropped at recovery as stale (epoch or topology).
    pub spill_stale: u64,
    /// The logical clock (admissions + explicit advances).
    pub now_tick: u64,
}

struct Job {
    fp: u64,
    id: u64,
    key: CacheKey,
    spec_fp: u64,
    tenant: u32,
    seed: u64,
    /// Absolute logical-tick deadline, if any.
    deadline: Option<u64>,
    admit_tick: u64,
    /// Stable request id (admission ordinal) — the lifecycle-log key.
    req_id: u64,
    /// Admission wall instant, for the ops-plane latency histograms.
    admit_at: Instant,
    /// Compile admission ordinal — the fault plane's key.
    fault_seq: u64,
    /// Consecutive prior failures of this key (from an expired negative
    /// entry); the next failure's backoff builds on it.
    strikes: u32,
    /// This job is its tenant's half-open breaker probe. If it is
    /// reaped from the queue before dispatch, the probe slot must be
    /// returned ([`CircuitBreaker::abort_probe`]); a dispatched probe's
    /// completion decides the breaker instead.
    probe: bool,
    token: CancelToken,
    context: Arc<HardwareContext>,
    completion: Arc<Completion>,
}

struct Inner {
    cache: ArtifactCache,
    queues: Vec<std::collections::VecDeque<Job>>,
    queued: usize,
    rr_cursor: usize,
    context: Arc<HardwareContext>,
    epoch: u64,
    topology_fp: u64,
    stats: ServiceStats,
    shutdown: bool,
    /// The logical clock: +1 per admission plus explicit advances.
    now: u64,
    backoff: BackoffConfig,
    inflight: InflightDeadlines,
    poison: PoisonLedger,
    breakers: Vec<CircuitBreaker>,
    buckets: Option<Vec<TokenBucket>>,
    next_fault_seq: u64,
    ops: OpsState,
}

struct Shared {
    inner: Mutex<Inner>,
    work: Condvar,
    served: AtomicU64,
    spill: Option<SpillStore>,
    fault_plane: Option<Arc<ServiceFaultPlane>>,
}

/// The in-process compile service. See the crate docs for the example
/// and the module docs for the serving policy.
pub struct Service {
    shared: Arc<Shared>,
    config: ServiceConfig,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts a service for one hardware target, spawning
    /// [`ServiceConfig::workers`] compile threads. With
    /// [`ServiceConfig::spill_dir`] set, warm-starts from every
    /// verifiable spilled artifact: entries are checksum- and
    /// fingerprint-verified before they serve, and VIC spills from a
    /// different calibration (per the spill directory's epoch sidecar)
    /// are dropped as stale.
    pub fn new(
        topology: Topology,
        calibration: Option<Calibration>,
        config: ServiceConfig,
    ) -> Self {
        let topology_fp = topology.fingerprint();
        let calibration_fp = calibration.as_ref().map(Calibration::fingerprint);
        let context = Arc::new(HardwareContext::from_parts(topology, calibration));
        let tenants = config.tenants.max(1);
        let q = qtrace::global();

        // Warm-start recovery before the service goes live.
        let mut cache = ArtifactCache::new(config.cache_capacity);
        let mut stats = ServiceStats::default();
        let mut ops = OpsState::new(&config.ops, tenants);
        let mut epoch = 0;
        let spill = config.spill_dir.clone().and_then(|dir| {
            let store = SpillStore::new(dir).ok()?;
            // VIC spills are only trusted when the sidecar proves the
            // calibration is the one they were compiled against.
            let vic_epoch = match store.read_meta() {
                Some((saved, saved_cal)) if saved_cal == calibration_fp => {
                    epoch = saved;
                    Some(saved)
                }
                Some((saved, _)) => {
                    epoch = saved + 1;
                    None
                }
                None => None,
            };
            let report = store.recover(topology_fp, vic_epoch);
            for (fp, key, artifact) in report.entries {
                for victim in cache.insert_ready(fp, key, artifact) {
                    store.unlink(victim);
                    stats.evictions += 1;
                }
                stats.spill_recovered += 1;
            }
            stats.spill_corrupt = report.corrupt;
            stats.spill_stale = report.stale;
            if stats.spill_recovered > 0 {
                q.add("qserve/spill/recovered", stats.spill_recovered);
            }
            if report.corrupt > 0 {
                q.add("qserve/spill/corrupt", report.corrupt);
            }
            if report.stale > 0 {
                q.add("qserve/spill/stale", report.stale);
            }
            ops.journal.push(
                JournalEvent::new(0, "spill_recovery")
                    .field("recovered", stats.spill_recovered)
                    .field("corrupt", report.corrupt)
                    .field("stale", report.stale)
                    .field("epoch", epoch),
            );
            let _ = store.write_meta(epoch, calibration_fp);
            Some(store)
        });

        let inner = Inner {
            cache,
            queues: (0..tenants).map(|_| Default::default()).collect(),
            queued: 0,
            rr_cursor: 0,
            context,
            epoch,
            topology_fp,
            stats,
            shutdown: false,
            now: 0,
            backoff: config.backoff,
            inflight: InflightDeadlines::default(),
            poison: PoisonLedger::new(config.quarantine_threshold),
            breakers: (0..tenants)
                .map(|_| CircuitBreaker::new(config.breaker))
                .collect(),
            buckets: config
                .bucket
                .map(|b| (0..tenants).map(|_| TokenBucket::new(b)).collect()),
            next_fault_seq: 0,
            ops,
        };
        let shared = Arc::new(Shared {
            inner: Mutex::new(inner),
            work: Condvar::new(),
            served: AtomicU64::new(0),
            spill,
            fault_plane: config.fault_plane.clone(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qserve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn qserve worker")
            })
            .collect();
        Service {
            shared,
            config,
            workers,
        }
    }

    /// Submits a request, classifying it immediately; the returned
    /// ticket is resolved for hits/sheds/rejects/fail-fasts and pending
    /// for misses.
    pub fn submit(&self, request: Request) -> Ticket<'_> {
        self.admit(request, AdmitMode::Queue)
    }

    /// `submit` + `wait`.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// Like [`Service::call`], but a miss compiles inline on the calling
    /// thread, bypassing the queue, its capacity, and the fail-fast
    /// admission gates (so it can never shed, reject, or be throttled).
    /// Deterministic cache warming uses this.
    pub fn warm(&self, request: Request) -> Response {
        self.admit(request, AdmitMode::Inline).wait()
    }

    /// Advances the logical clock by `ticks` and sweeps the deadline
    /// plane: queued jobs past their deadline are reaped (waiters get
    /// [`ServeError::DeadlineExceeded`]) and expired in-flight compiles
    /// are cancelled at their next pass boundary. Admissions advance
    /// the clock by one implicitly; tests and long-poll loops advance
    /// it explicitly.
    pub fn advance(&self, ticks: u64) {
        let mut inner = self.shared.inner.lock().expect("service lock");
        inner.now += ticks;
        sweep_deadlines(&mut inner, &self.shared.served);
    }

    fn admit(&self, request: Request, mode: AdmitMode) -> Ticket<'_> {
        let submitted = Instant::now();
        let q = qtrace::global();
        let mut inner = self.shared.inner.lock().expect("service lock");
        inner.now += 1;
        sweep_deadlines(&mut inner, &self.shared.served);
        let now = inner.now;
        inner.stats.requests += 1;
        // Stable request id: the admission ordinal, assigned under the
        // submit lock — the key every lifecycle transition and journal
        // line refers back to.
        let req_id = inner.stats.requests;
        q.add("qserve/requests", 1);

        let key = CacheKey::new(
            request.spec,
            request.options,
            inner.topology_fp,
            inner.epoch,
        );
        let fp = key.fingerprint();
        let spec_fp = spec_fingerprint(&key.spec);
        let tenant_idx = request.tenant as usize % inner.queues.len();
        inner.ops.on_admit(req_id, tenant_idx, spec_fp, fp, now);
        let mut strikes = 0;
        match inner.cache.lookup(fp, &key, now) {
            Lookup::Hit { state, entry_id } => {
                inner.stats.hits += 1;
                inner.note(fp, 2);
                q.add("qserve/cache/hits", 1);
                inner.ops.tenants[tenant_idx].hits += 1;
                match &state {
                    SlotState::Ready(_) => {
                        inner.ops.finish(
                            req_id,
                            tenant_idx,
                            Stage::Completed,
                            now,
                            now,
                            None,
                            submitted.elapsed(),
                        );
                    }
                    SlotState::Failed { error, .. } => {
                        let code = error.code();
                        inner.ops.finish(
                            req_id,
                            tenant_idx,
                            Stage::Failed,
                            now,
                            now,
                            Some(code),
                            submitted.elapsed(),
                        );
                    }
                    SlotState::Pending(_) => {
                        // Whether the reservation is still pending or
                        // already filled at this instant is a wall-clock
                        // race against the workers, so the terminal is
                        // *deferred*: the waiter parks on the producing
                        // reservation and settles with that compile's
                        // deterministic outcome, stamped at this admit
                        // tick — identical bytes either way.
                        inner.ops.park(
                            entry_id,
                            Waiter {
                                req_id,
                                tenant: tenant_idx,
                                admit_tick: now,
                                admit_at: submitted,
                            },
                        );
                    }
                }
                return self.resolve(state, Outcome::Hit, submitted);
            }
            Lookup::ExpiredNegative { strikes: prior } => {
                // The backoff window lapsed: retry the compile, but keep
                // the failure history so the next TTL keeps growing.
                strikes = prior;
                inner.stats.negative_expired += 1;
                q.add("qserve/negative/expired", 1);
                inner.ops.journal.push(
                    JournalEvent::new(now, "negative_expire")
                        .tenant(tenant_idx as u32)
                        .spec(spec_fp)
                        .request(req_id)
                        .field("strikes", u64::from(prior)),
                );
            }
            Lookup::Miss => {}
        }

        let mut probe = false;
        if matches!(mode, AdmitMode::Queue) {
            // Fail-fast gates. Cache hits never reach them: a cached
            // artifact is safe to serve no matter how sick the
            // program's compiles are. The order matters twice over: the
            // token bucket comes last so only a request that actually
            // queues a compile pays a token, and every exit past the
            // breaker returns a consumed half-open probe slot
            // (`abort_probe`) — a probe admission that is then shed,
            // rejected or throttled dispatches no compile, and without
            // the abort no completion would ever move the breaker out
            // of half-open again.
            if let Some(reason) = inner.poison.quarantined(spec_fp) {
                inner.stats.quarantine_rejects += 1;
                inner.note(fp, 5);
                q.add("qserve/quarantine/rejects", 1);
                let error = ServeError::Quarantined { spec_fp, reason };
                inner.ops.finish(
                    req_id,
                    tenant_idx,
                    Stage::Quarantined,
                    now,
                    now,
                    Some(error.code()),
                    submitted.elapsed(),
                );
                return self.reject_now(error, Outcome::Quarantined, submitted);
            }
            match inner.breakers[tenant_idx].admit(now) {
                BreakerDecision::Admit => {}
                BreakerDecision::Probe => {
                    probe = true;
                    inner.ops.journal.push(
                        JournalEvent::new(now, "breaker_probe")
                            .tenant(tenant_idx as u32)
                            .request(req_id),
                    );
                }
                BreakerDecision::Reject { retry_in } => {
                    inner.stats.breaker_rejects += 1;
                    inner.note(fp, 6);
                    q.add("qserve/breaker/rejects", 1);
                    let error = ServeError::CircuitOpen {
                        tenant: request.tenant,
                        retry_in,
                    };
                    inner.ops.finish(
                        req_id,
                        tenant_idx,
                        Stage::CircuitOpen,
                        now,
                        now,
                        Some(error.code()),
                        submitted.elapsed(),
                    );
                    return self.reject_now(error, Outcome::BreakerOpen, submitted);
                }
            }

            if inner.queued >= self.config.queue_capacity {
                // Shed: serve a cached cheaper rung before rejecting. A
                // negatively cached rung is no substitute — serving one
                // key's error for another key's request helps nobody —
                // and the probe is read-only: an expired negative rung
                // keeps its strike history for its own next admission
                // (see [`ArtifactCache::probe_servable`]).
                for (steps, rung) in key.options.ladder().into_iter().enumerate().skip(1) {
                    let alt = CacheKey::new(key.spec.clone(), rung, inner.topology_fp, inner.epoch);
                    let alt_fp = alt.fingerprint();
                    if let Some(state) = inner.cache.probe_servable(alt_fp, &alt) {
                        inner.stats.shed += 1;
                        inner.note(alt_fp, 3);
                        q.add("qserve/shed", 1);
                        if probe {
                            abort_probe(&mut inner, tenant_idx, now, req_id);
                        }
                        inner.ops.finish(
                            req_id,
                            tenant_idx,
                            Stage::Shed,
                            now,
                            now,
                            None,
                            submitted.elapsed(),
                        );
                        let outcome = Outcome::Shed { rungs: steps as u8 };
                        return self.resolve(state, outcome, submitted);
                    }
                }
                inner.stats.rejected += 1;
                inner.note(fp, 4);
                q.add("qserve/rejected", 1);
                if probe {
                    abort_probe(&mut inner, tenant_idx, now, req_id);
                }
                let error = ServeError::Overloaded {
                    queued: inner.queued,
                    capacity: self.config.queue_capacity,
                };
                inner.ops.finish(
                    req_id,
                    tenant_idx,
                    Stage::Rejected,
                    now,
                    now,
                    Some(error.code()),
                    submitted.elapsed(),
                );
                return self.reject_now(error, Outcome::Rejected, submitted);
            }
            if let Some(buckets) = inner.buckets.as_mut() {
                if !buckets[tenant_idx].try_take(now) {
                    inner.stats.throttled += 1;
                    inner.note(fp, 7);
                    q.add("qserve/throttled", 1);
                    if probe {
                        abort_probe(&mut inner, tenant_idx, now, req_id);
                    }
                    let error = ServeError::Throttled {
                        tenant: request.tenant,
                    };
                    inner.ops.finish(
                        req_id,
                        tenant_idx,
                        Stage::Throttled,
                        now,
                        now,
                        Some(error.code()),
                        submitted.elapsed(),
                    );
                    return self.reject_now(error, Outcome::Throttled, submitted);
                }
            }
        }

        inner.stats.misses += 1;
        inner.ops.tenants[tenant_idx].misses += 1;
        inner.note(fp, 1);
        q.add("qserve/cache/misses", 1);
        let completion = Arc::new(Completion::default());
        let (id, evicted) = inner
            .cache
            .reserve(fp, key.clone(), Arc::clone(&completion));
        if !evicted.is_empty() {
            inner.stats.evictions += evicted.len() as u64;
            q.add("qserve/cache/evictions", evicted.len() as u64);
            if let Some(store) = &self.shared.spill {
                for victim in evicted {
                    store.unlink(victim);
                }
            }
        }
        let fault_seq = inner.next_fault_seq;
        inner.next_fault_seq += 1;
        let job = Job {
            fp,
            id,
            req_id,
            key,
            spec_fp,
            tenant: request.tenant,
            seed: request.seed,
            deadline: request.deadline.map(|d| now + d),
            admit_tick: now,
            admit_at: submitted,
            fault_seq,
            strikes,
            probe,
            token: CancelToken::new(),
            context: Arc::clone(&inner.context),
            completion: Arc::clone(&completion),
        };
        let ticket = Ticket {
            _service: self,
            state: TicketState::Pending {
                completion,
                outcome: Outcome::Miss,
                submitted,
            },
        };
        match mode {
            AdmitMode::Queue => {
                inner.ops.lifecycle.push(req_id, Stage::Queued, now);
                inner.queues[tenant_idx].push_back(job);
                inner.queued += 1;
                drop(inner);
                self.shared.work.notify_one();
            }
            AdmitMode::Inline => {
                inner.ops.lifecycle.push(req_id, Stage::Dispatched, now);
                drop(inner);
                execute(&self.shared, job);
            }
        }
        ticket
    }

    /// A pre-resolved failure ticket (reject or fail-fast).
    fn reject_now(&self, error: ServeError, outcome: Outcome, submitted: Instant) -> Ticket<'_> {
        let served_order = self.shared.served.fetch_add(1, Ordering::SeqCst) + 1;
        Ticket {
            _service: self,
            state: TicketState::Ready(Response {
                result: Err(error),
                outcome,
                served_order,
                latency: submitted.elapsed(),
            }),
        }
    }

    fn resolve(&self, state: SlotState, outcome: Outcome, submitted: Instant) -> Ticket<'_> {
        let state = match state {
            SlotState::Ready(artifact) => {
                let served_order = self.shared.served.fetch_add(1, Ordering::SeqCst) + 1;
                TicketState::Ready(Response {
                    result: Ok(artifact),
                    outcome,
                    served_order,
                    latency: submitted.elapsed(),
                })
            }
            SlotState::Failed { error, .. } => {
                let served_order = self.shared.served.fetch_add(1, Ordering::SeqCst) + 1;
                TicketState::Ready(Response {
                    result: Err(error),
                    outcome,
                    served_order,
                    latency: submitted.elapsed(),
                })
            }
            SlotState::Pending(completion) => TicketState::Pending {
                completion,
                outcome,
                submitted,
            },
        };
        Ticket {
            _service: self,
            state,
        }
    }

    /// Swaps in a new calibration table (or removes it), bumps the
    /// epoch, and invalidates exactly the cached entries that consumed
    /// calibration — including their disk spills, so a later restart
    /// cannot resurrect a stale-epoch VIC artifact. In-flight compiles
    /// of invalidated keys complete against the context their
    /// requesters saw at admission — their waiters get the pre-reload
    /// artifact they asked for — but the cache forgets them, so
    /// post-reload requests always recompile. Returns the number of
    /// invalidated entries.
    pub fn reload_calibration(&self, calibration: Option<Calibration>) -> usize {
        let calibration_fp = calibration.as_ref().map(Calibration::fingerprint);
        let mut inner = self.shared.inner.lock().expect("service lock");
        let topology = inner.context.topology().clone();
        inner.context = Arc::new(HardwareContext::from_parts(topology, calibration));
        inner.epoch += 1;
        inner.stats.epoch_bumps += 1;
        let dropped = inner.cache.invalidate_calibration_dependent();
        inner.stats.invalidated += dropped.len() as u64;
        let reload_event = JournalEvent::new(inner.now, "calibration_reload")
            .field("epoch", inner.epoch)
            .field("invalidated", dropped.len() as u64);
        inner.ops.journal.push(reload_event);
        let q = qtrace::global();
        q.add("qserve/epoch_bumps", 1);
        q.add("qserve/cache/invalidated", dropped.len() as u64);
        if let Some(store) = &self.shared.spill {
            for victim in &dropped {
                store.unlink(*victim);
            }
            let _ = store.write_meta(inner.epoch, calibration_fp);
        }
        dropped.len()
    }

    /// Lifts the quarantine of `spec_fp` (and clears its strikes), e.g.
    /// after a compiler fix ships. Returns whether it was quarantined.
    pub fn release_quarantine(&self, spec_fp: u64) -> bool {
        let mut inner = self.shared.inner.lock().expect("service lock");
        let released = inner.poison.release(spec_fp);
        if released {
            let event = JournalEvent::new(inner.now, "quarantine_release").spec(spec_fp);
            inner.ops.journal.push(event);
        }
        released
    }

    /// The current calibration epoch (starts at 0 or the recovered
    /// spill epoch, +1 per reload).
    pub fn epoch(&self) -> u64 {
        self.shared.inner.lock().expect("service lock").epoch
    }

    /// A snapshot of the deterministic service counters.
    pub fn stats(&self) -> ServiceStats {
        let inner = self.shared.inner.lock().expect("service lock");
        let mut stats = inner.stats;
        stats.epoch = inner.epoch;
        stats.cached_entries = inner.cache.len();
        stats.queued = inner.queued;
        stats.quarantined_specs = inner.poison.len() as u64;
        stats.breakers_open = inner.breakers.iter().filter(|b| b.is_open()).count() as u64;
        stats.now_tick = inner.now;
        stats
    }

    /// Runs one queued job inline on the calling thread, if any. With
    /// `workers: 0` this is the only way jobs execute, which gives tests
    /// full control over completion order.
    pub fn drain_one(&self) -> bool {
        let job = {
            let mut inner = self.shared.inner.lock().expect("service lock");
            pop_job(&mut inner)
        };
        match job {
            Some(job) => {
                execute(&self.shared, job);
                true
            }
            None => false,
        }
    }

    /// Emits the admission-sequence fingerprint and cache occupancy as
    /// qtrace gauges. Call once before draining a manifest: two runs
    /// with equal `qserve/cache/sequence_fp` gauges served identical
    /// outcome sequences. The gauge carries the 32-bit xor-fold of
    /// [`ServiceStats::sequence_fp`] — manifest numbers must stay
    /// exactly representable as f64 (`qtrace::json` rejects integers
    /// beyond 2^53 on read-back), and the fold preserves sensitivity to
    /// every admission in the sequence. Fault-plane gauges are emitted
    /// only when nonzero, so fault-free manifests are byte-identical to
    /// pre-fault-plane baselines.
    pub fn flush_telemetry(&self) {
        let inner = self.shared.inner.lock().expect("service lock");
        let fp = inner.stats.sequence_fp;
        let q = qtrace::global();
        q.gauge_max("qserve/cache/sequence_fp", (fp >> 32) ^ (fp & 0xffff_ffff));
        q.gauge_max("qserve/cache/entries", inner.cache.len() as u64);
        if inner.poison.len() > 0 {
            q.gauge_max("qserve/quarantine/entries", inner.poison.len() as u64);
        }
        inner.ops.flush_metrics(q);
        for (idx, breaker) in inner.breakers.iter().enumerate() {
            let code = breaker.state_code();
            if code > 0 {
                q.gauge_max(&format!("qserve/tenant/{idx}/breaker_state"), code);
            }
        }
        if let Some(buckets) = inner.buckets.as_ref() {
            for (idx, bucket) in buckets.iter().enumerate() {
                q.gauge_max(
                    &format!("qserve/tenant/{idx}/bucket_level"),
                    bucket.level(inner.now),
                );
            }
        }
        let dropped = inner.ops.lifecycle.dropped();
        if dropped > 0 {
            q.gauge_max("qserve/ops/lifecycle_dropped", dropped);
        }
    }

    /// Drains the ops journal: every failure-plane action since the last
    /// drain, in deterministic occurrence order. Render with
    /// [`crate::ops::render_journal`].
    pub fn take_journal(&self) -> Vec<JournalEvent> {
        let mut inner = self.shared.inner.lock().expect("service lock");
        inner.ops.journal.take()
    }

    /// Drains the request lifecycle log: one trace per admitted request,
    /// in admission (request-id) order. Render with
    /// [`crate::ops::render_lifecycle`] or export via
    /// [`crate::ops::lifecycle_manifest`].
    pub fn take_lifecycle(&self) -> Vec<RequestTrace> {
        let mut inner = self.shared.inner.lock().expect("service lock");
        inner.ops.lifecycle.take()
    }

    /// How many lifecycle records were dropped to the capacity bound
    /// since startup. Zero in every deterministic-campaign baseline.
    pub fn lifecycle_dropped(&self) -> u64 {
        let inner = self.shared.inner.lock().expect("service lock");
        inner.ops.lifecycle.dropped()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.inner.lock().expect("service lock");
            inner.shutdown = true;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[derive(Clone, Copy)]
enum AdmitMode {
    Queue,
    Inline,
}

impl Inner {
    /// Folds one admission outcome into the order-sensitive sequence
    /// fingerprint (FNV-style).
    fn note(&mut self, fp: u64, code: u8) {
        let fold = fp.rotate_left(u32::from(code) * 8) ^ u64::from(code);
        self.stats.sequence_fp = (self.stats.sequence_fp ^ fold).wrapping_mul(0x100_0000_01b3);
    }
}

/// Returns an undispatched probe slot to the tenant's breaker and
/// journals the abort, so a half-open breaker is never left wedged by
/// an admission that terminated before reaching a worker.
fn abort_probe(inner: &mut Inner, tenant_idx: usize, now: u64, req_id: u64) {
    inner.breakers[tenant_idx].abort_probe(now);
    inner.ops.journal.push(
        JournalEvent::new(now, "breaker_probe_abort")
            .tenant(tenant_idx as u32)
            .request(req_id),
    );
}

/// Sweeps the deadline plane at the current clock: reaps expired queued
/// jobs (their waiters get [`ServeError::DeadlineExceeded`], their
/// reservations are forgotten — a deadline lapse is not a negative
/// verdict on the key) and cancels expired in-flight compiles. Runs
/// under the admission lock on every clock movement.
fn sweep_deadlines(inner: &mut Inner, served: &AtomicU64) {
    let now = inner.now;
    let mut reaped: Vec<Job> = Vec::new();
    for queue in &mut inner.queues {
        for _ in 0..queue.len() {
            let job = queue.pop_front().expect("iterating queue.len() items");
            if job.deadline.is_some_and(|d| now > d) {
                reaped.push(job);
            } else {
                queue.push_back(job);
            }
        }
    }
    if !reaped.is_empty() {
        inner.queued -= reaped.len();
        inner.stats.deadline_reaped += reaped.len() as u64;
        qtrace::global().add("qserve/deadline/reaped", reaped.len() as u64);
        for job in reaped {
            inner.cache.forget(job.fp, job.id);
            let tenant_idx = job.tenant as usize % inner.breakers.len();
            if job.probe {
                // The probe never reached a worker, so no completion
                // will decide it: return the slot instead of leaving
                // the tenant's breaker wedged in half-open.
                abort_probe(inner, tenant_idx, now, job.req_id);
            }
            let error = ServeError::DeadlineExceeded {
                deadline: job.deadline.expect("reaped implies a deadline"),
                now,
            };
            inner.ops.finish(
                job.req_id,
                tenant_idx,
                Stage::Reaped,
                job.admit_tick,
                now,
                Some(error.code()),
                job.admit_at.elapsed(),
            );
            // Pending-hit waiters parked on this reservation share its
            // fate: the completion below resolves them all with the
            // same DeadlineExceeded, so their lifecycle terminal is the
            // same reap at the same sweep tick.
            for waiter in inner.ops.take_waiters(job.id) {
                inner.ops.finish(
                    waiter.req_id,
                    waiter.tenant,
                    Stage::Reaped,
                    waiter.admit_tick,
                    now,
                    Some(error.code()),
                    waiter.admit_at.elapsed(),
                );
            }
            let served_order = served.fetch_add(1, Ordering::SeqCst) + 1;
            let mut slot = job.completion.slot.lock().expect("completion lock");
            *slot = Some((Err(error), served_order, Instant::now()));
            drop(slot);
            job.completion.ready.notify_all();
        }
    }
    let cancelled = inner.inflight.sweep(now);
    if cancelled > 0 {
        inner.stats.cancelled += cancelled;
        qtrace::global().add("qserve/deadline/cancelled", cancelled);
    }
}

/// Round-robin pop across tenant queues, resuming after the last-served
/// tenant so a busy tenant cannot starve the others. Dispatched
/// deadline-bearing jobs are registered with the in-flight sweep so a
/// later clock movement can cancel them mid-compile.
fn pop_job(inner: &mut Inner) -> Option<Job> {
    let tenants = inner.queues.len();
    for offset in 0..tenants {
        let idx = (inner.rr_cursor + offset) % tenants;
        if let Some(job) = inner.queues[idx].pop_front() {
            inner.rr_cursor = (idx + 1) % tenants;
            inner.queued -= 1;
            if let Some(deadline) = job.deadline {
                inner.inflight.register(job.id, deadline, job.token.clone());
            }
            // Dispatch is scheduler-dependent, so it is stamped with the
            // admit tick: the lifecycle log stays a pure function of the
            // request stream regardless of worker count.
            inner
                .ops
                .lifecycle
                .push(job.req_id, Stage::Dispatched, job.admit_tick);
            return Some(job);
        }
    }
    None
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut inner = shared.inner.lock().expect("service lock");
            loop {
                if let Some(job) = pop_job(&mut inner) {
                    break Some(job);
                }
                if inner.shutdown {
                    break None;
                }
                inner = shared.work.wait(inner).expect("service lock");
            }
        };
        match job {
            Some(job) => execute(shared, job),
            None => return,
        }
    }
}

/// Compiles one reserved job and publishes the result: cache state
/// first (so later admissions see `Ready`/`Failed` directly), then the
/// completion slot for the waiters. Panics are contained exactly like
/// `qcompile::compile_batch` does it; injected service faults (worker
/// panics, virtual stalls) detonate here, keyed by the job's compile
/// admission ordinal.
fn execute(shared: &Shared, job: Job) {
    let dispatched_at = Instant::now();
    let fault = shared
        .fault_plane
        .as_ref()
        .and_then(|plane| plane.fault_for(job.fault_seq));
    if let Some(ServiceFault::SlowCompile { ticks }) = fault {
        // A virtual stall: if losing `ticks` to it would blow the
        // job's deadline, the compile is cancelled exactly as a real
        // sweep would — no wall-clock sleeping, so the campaign stays
        // fast and deterministic.
        if job
            .deadline
            .is_some_and(|deadline| job.admit_tick + ticks > deadline)
        {
            job.token.cancel();
        }
    }
    let inject_panic = matches!(fault, Some(ServiceFault::WorkerPanic));
    let compile_start = Instant::now();
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected worker panic (fault plane)");
        }
        let mut rng = StdRng::seed_from_u64(job.seed);
        try_compile_artifact_with_context_cancellable(
            &job.key.spec,
            &job.context,
            &job.key.options,
            &mut rng,
            &job.token,
        )
    }));
    let compile_elapsed = compile_start.elapsed();
    let panicked = attempt.is_err();
    let attempt = attempt.unwrap_or_else(|_| {
        Err(CompileError::Internal(format!(
            "compile worker panicked (spec {:#018x}, tenant {})",
            job.spec_fp, job.tenant
        )))
    });
    let timed_out = matches!(attempt, Err(CompileError::Cancelled));
    let deadline_error = timed_out.then_some(job.deadline).flatten();
    let result: Result<Arc<CompiledArtifact>, ServeError> = match attempt {
        Ok(artifact) => Ok(Arc::new(artifact)),
        // A deadline cancellation surfaces as the service-level error,
        // not a compiler internal.
        Err(CompileError::Cancelled) if deadline_error.is_some() => {
            Err(ServeError::DeadlineExceeded {
                deadline: deadline_error.expect("guarded by is_some"),
                now: 0, // patched to the completion tick under the lock
            })
        }
        Err(e) => Err(ServeError::Compile(e)),
    };
    // Spill before publishing: recovery independently verifies bytes,
    // so an orphaned file (entry evicted mid-compile) is harmless and
    // unlinked below.
    let mut spilled = false;
    if let (Ok(artifact), Some(store)) = (&result, &shared.spill) {
        spilled = store.save(job.fp, &job.key, artifact).is_ok();
    }
    let served_order = shared.served.fetch_add(1, Ordering::SeqCst) + 1;
    let result = {
        let mut inner = shared.inner.lock().expect("service lock");
        let now = inner.now;
        let q = qtrace::global();
        inner.inflight.complete(job.id);
        // Patch the completion tick into a deadline error.
        let result = match result {
            Err(ServeError::DeadlineExceeded { deadline, .. }) => {
                Err(ServeError::DeadlineExceeded { deadline, now })
            }
            other => other,
        };
        // Negative-cache policy: failures that retrying can plausibly
        // fix (recoverable errors, timeouts, panics) get a backoff TTL;
        // structurally invalid programs are cached forever.
        let (expires_at, strikes) = match &result {
            Ok(_) => (None, 0),
            Err(error) => {
                let strikes = job.strikes + 1;
                let retryable = panicked
                    || timed_out
                    || matches!(
                        error,
                        ServeError::Compile(e) if e.recoverable()
                    );
                let expires_at = retryable.then(|| now + inner.backoff.ttl(job.fp, strikes));
                (expires_at, strikes)
            }
        };
        if let Some(expiry) = expires_at {
            let tenant_idx = job.tenant as usize % inner.breakers.len();
            inner.ops.journal.push(
                JournalEvent::new(now, "negative_strike")
                    .tenant(tenant_idx as u32)
                    .spec(job.spec_fp)
                    .request(job.req_id)
                    .field("strikes", u64::from(strikes))
                    .field("ttl", expiry.saturating_sub(now)),
            );
        }
        let live = inner
            .cache
            .complete(job.fp, job.id, &result, expires_at, strikes);
        if spilled {
            if live && result.is_ok() {
                inner.stats.spill_saved += 1;
                q.add("qserve/spill/saved", 1);
            } else if let Some(store) = &shared.spill {
                // The entry was evicted or invalidated mid-compile; its
                // spill must not survive it.
                store.unlink(job.fp);
            }
        }
        // Poison ledger: panics and deadline timeouts strike the
        // *program*; enough of them quarantine it under every option
        // set.
        let verdict = if panicked {
            inner.poison.strike_panic(job.spec_fp)
        } else if timed_out {
            inner.poison.strike_timeout(job.spec_fp)
        } else {
            None
        };
        let tenant_idx = job.tenant as usize % inner.breakers.len();
        if let Some(reason) = verdict {
            q.add("qserve/quarantine/new", 1);
            let total = match reason {
                QuarantineReason::Panicked { strikes } | QuarantineReason::TimedOut { strikes } => {
                    strikes
                }
            };
            inner.ops.journal.push(
                JournalEvent::new(now, "quarantine_add")
                    .tenant(tenant_idx as u32)
                    .spec(job.spec_fp)
                    .request(job.req_id)
                    .note(reason.label())
                    .field("strikes", u64::from(total)),
            );
        }
        // The tenant's breaker watches every compile completion.
        match inner.breakers[tenant_idx].record(now, result.is_ok()) {
            BreakerTransition::Tripped => {
                inner.stats.breaker_trips += 1;
                q.add("qserve/breaker/trips", 1);
                inner.ops.journal.push(
                    JournalEvent::new(now, "breaker_trip")
                        .tenant(tenant_idx as u32)
                        .request(job.req_id),
                );
            }
            BreakerTransition::Closed => {
                inner.ops.journal.push(
                    JournalEvent::new(now, "breaker_close")
                        .tenant(tenant_idx as u32)
                        .request(job.req_id),
                );
            }
            BreakerTransition::None => {}
        }
        // Terminal lifecycle stamp. Completion/failure order across
        // workers is scheduler-dependent, so scheduler-reached
        // terminals are stamped with the admit tick; a deadline
        // cancellation is stamped with the deadline itself. Either way
        // the stamp is a pure function of the request stream.
        let (stage, stamp, err) = match &result {
            Ok(_) => (Stage::Completed, job.admit_tick, None),
            Err(e @ ServeError::DeadlineExceeded { deadline, .. }) => {
                (Stage::Cancelled, *deadline, Some(e.code()))
            }
            Err(e) => (Stage::Failed, job.admit_tick, Some(e.code())),
        };
        inner.ops.finish(
            job.req_id,
            tenant_idx,
            stage,
            job.admit_tick,
            stamp,
            err,
            job.admit_at.elapsed(),
        );
        // Settle the pending-hit waiters parked on this reservation:
        // the completion below hands them this exact result, so each
        // gets the same terminal stage and error code, stamped at its
        // own admit tick (or the shared deadline for cancellations).
        for waiter in inner.ops.take_waiters(job.id) {
            let (stage, stamp, err) = match &result {
                Ok(_) => (Stage::Completed, waiter.admit_tick, None),
                Err(e @ ServeError::DeadlineExceeded { deadline, .. }) => {
                    (Stage::Cancelled, *deadline, Some(e.code()))
                }
                Err(e) => (Stage::Failed, waiter.admit_tick, Some(e.code())),
            };
            inner.ops.finish(
                waiter.req_id,
                waiter.tenant,
                stage,
                waiter.admit_tick,
                stamp,
                err,
                waiter.admit_at.elapsed(),
            );
        }
        inner.ops.observe_execution(
            tenant_idx,
            dispatched_at.saturating_duration_since(job.admit_at),
            compile_elapsed,
        );
        result
    };
    let resolved_at = Instant::now();
    let mut slot = job.completion.slot.lock().expect("completion lock");
    *slot = Some((result, served_order, resolved_at));
    drop(slot);
    job.completion.ready.notify_all();
}
