//! Crash-safe artifact spill: content-addressed on-disk persistence of
//! compiled artifacts, keyed identically to the in-memory LRU.
//!
//! Every successful compile is serialized to
//! `<dir>/<key fingerprint as 16 hex digits>.qart` in a line-oriented,
//! versioned text format with a whole-body FNV-1a checksum in the
//! header. Recovery re-reads the directory in sorted filename order
//! (determinism), verifies the checksum, re-parses the **full
//! [`CacheKey`]** (spec, options, topology fingerprint, calibration
//! epoch), recomputes the fingerprint and compares it against the
//! filename — a torn write, a flipped bit or a truncated file fails one
//! of those gates and is skipped as corrupt, never served. Epoch-keyed
//! (VIC) entries additionally require the *current* epoch: the
//! `epoch.meta` sidecar persists `(epoch, calibration fingerprint)`, so
//! a restart under different calibration bumps the epoch and every
//! spilled VIC artifact goes stale exactly like its in-memory twin
//! would on a hot reload.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::str::SplitWhitespace;
use std::sync::Arc;
use std::time::Duration;

use qcircuit::{Angle, Circuit, Gate, Instruction, ParamId, ParamTable};
use qcompile::{
    Compilation, CompileOptions, CompiledArtifact, CompiledCircuit, CphaseOp, InitialMapping,
    QaoaSpec, Resilience,
};
use qroute::Layout;

use crate::cache::CacheKey;

const MAGIC: &str = "qspill 1";
const META_MAGIC: &str = "qspill-meta 1";

/// One recovered spill entry: the fingerprint (from the verified
/// filename), the full key, and the artifact.
pub(crate) type RecoveredEntry = (u64, CacheKey, Arc<CompiledArtifact>);

/// What a directory scan recovered and what it refused.
#[derive(Debug, Default)]
pub(crate) struct RecoveryReport {
    /// Verified entries in sorted-filename order.
    pub entries: Vec<RecoveredEntry>,
    /// Files failing checksum/parse/fingerprint verification.
    pub corrupt: u64,
    /// Structurally valid files whose topology or calibration epoch no
    /// longer matches (dropped, exactly like a reload would).
    pub stale: u64,
}

/// The on-disk artifact store. All I/O is best-effort from the
/// service's perspective: a failed save or unlink costs durability,
/// never correctness, because recovery independently verifies every
/// byte it reads.
#[derive(Debug)]
pub(crate) struct SpillStore {
    dir: PathBuf,
}

impl SpillStore {
    /// Opens (creating if needed) the spill directory.
    pub fn new(dir: PathBuf) -> io::Result<SpillStore> {
        fs::create_dir_all(&dir)?;
        Ok(SpillStore { dir })
    }

    fn artifact_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.qart"))
    }

    /// Serializes `(key, artifact)` under fingerprint `fp`.
    pub fn save(&self, fp: u64, key: &CacheKey, artifact: &CompiledArtifact) -> io::Result<()> {
        let body = encode_entry(key, artifact)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unencodable gate"))?;
        let mut out = String::with_capacity(body.len() + 64);
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "checksum {:016x}", fnv1a64(body.as_bytes()));
        out.push_str(&body);
        fs::write(self.artifact_path(fp), out)
    }

    /// Removes the spilled file of an evicted/invalidated entry.
    pub fn unlink(&self, fp: u64) {
        let _ = fs::remove_file(self.artifact_path(fp));
    }

    /// Persists the current `(epoch, calibration fingerprint)` so a
    /// restart can tell live VIC spills from stale ones.
    pub fn write_meta(&self, epoch: u64, calibration_fp: Option<u64>) -> io::Result<()> {
        let mut body = String::new();
        let _ = writeln!(body, "epoch {epoch}");
        match calibration_fp {
            Some(fp) => {
                let _ = writeln!(body, "calibration {fp:016x}");
            }
            None => {
                let _ = writeln!(body, "calibration -");
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{META_MAGIC}");
        let _ = writeln!(out, "checksum {:016x}", fnv1a64(body.as_bytes()));
        out.push_str(&body);
        fs::write(self.dir.join("epoch.meta"), out)
    }

    /// Reads the epoch sidecar; `None` when absent or corrupt.
    pub fn read_meta(&self) -> Option<(u64, Option<u64>)> {
        let text = fs::read_to_string(self.dir.join("epoch.meta")).ok()?;
        let body = verify_header(&text, META_MAGIC)?;
        let mut epoch = None;
        let mut calibration = None;
        for line in body.lines() {
            let mut words = line.split_whitespace();
            match words.next()? {
                "epoch" => epoch = Some(words.next()?.parse::<u64>().ok()?),
                "calibration" => {
                    let word = words.next()?;
                    calibration = Some(if word == "-" {
                        None
                    } else {
                        Some(u64::from_str_radix(word, 16).ok()?)
                    });
                }
                _ => return None,
            }
        }
        Some((epoch?, calibration?))
    }

    /// Scans the directory and rebuilds every verifiable entry that is
    /// still live under `topology_fp`. Epoch-keyed (VIC) entries are
    /// kept only when `vic_epoch` is `Some(e)` and matches theirs;
    /// `None` means calibration continuity could not be proven and
    /// every VIC spill is dropped as stale.
    pub fn recover(&self, topology_fp: u64, vic_epoch: Option<u64>) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let mut names: Vec<PathBuf> = match fs::read_dir(&self.dir) {
            Ok(dir) => dir
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "qart"))
                .collect(),
            Err(_) => return report,
        };
        names.sort();
        for path in names {
            let fp = match path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok())
            {
                Some(fp) => fp,
                None => {
                    report.corrupt += 1;
                    continue;
                }
            };
            let entry = fs::read_to_string(&path)
                .ok()
                .and_then(|text| decode_entry(&text));
            match entry {
                Some((key, artifact)) if key.fingerprint() == fp => {
                    // MSRV 1.75 forbids `Option::is_none_or` here: a
                    // VIC key (epoch in-key) is live only under the
                    // current epoch; epoch-free keys always survive.
                    let epoch_live = match key.calibration_epoch {
                        Some(epoch) => vic_epoch == Some(epoch),
                        None => true,
                    };
                    let live = key.topology_fp == topology_fp && epoch_live;
                    if live {
                        report.entries.push((fp, key, Arc::new(artifact)));
                    } else {
                        report.stale += 1;
                        let _ = fs::remove_file(&path);
                    }
                }
                Some(_) => report.corrupt += 1,
                None => report.corrupt += 1,
            }
        }
        report
    }
}

/// FNV-1a 64 over raw bytes — the spill checksum (fast, dependency-free;
/// this is corruption *detection*, not authentication).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Splits `text` into verified body: first line must equal `magic`,
/// second must carry the body checksum.
fn verify_header<'a>(text: &'a str, magic: &str) -> Option<&'a str> {
    let rest = text.strip_prefix(magic)?.strip_prefix('\n')?;
    let (checksum_line, body) = rest.split_once('\n')?;
    let declared = u64::from_str_radix(checksum_line.strip_prefix("checksum ")?, 16).ok()?;
    (fnv1a64(body.as_bytes()) == declared).then_some(body)
}

fn encode_angle(out: &mut String, angle: &Angle) {
    match angle {
        Angle::Const(v) => {
            let _ = write!(out, "c{:016x}", v.to_bits());
        }
        Angle::Sym { param, scale } => {
            let _ = write!(out, "s{}x{:016x}", param.0, scale.to_bits());
        }
    }
}

fn decode_angle(word: &str) -> Option<Angle> {
    if let Some(hex) = word.strip_prefix('c') {
        return Some(Angle::Const(f64::from_bits(
            u64::from_str_radix(hex, 16).ok()?,
        )));
    }
    let (param, scale) = word.strip_prefix('s')?.split_once('x')?;
    Some(Angle::Sym {
        param: ParamId(param.parse().ok()?),
        scale: f64::from_bits(u64::from_str_radix(scale, 16).ok()?),
    })
}

/// `(tag, angle count)` for every serializable gate.
fn gate_tag(gate: &Gate) -> Option<(&'static str, Vec<Angle>)> {
    Some(match gate {
        Gate::Id => ("id", vec![]),
        Gate::H => ("h", vec![]),
        Gate::X => ("x", vec![]),
        Gate::Y => ("y", vec![]),
        Gate::Z => ("z", vec![]),
        Gate::S => ("s", vec![]),
        Gate::Sdg => ("sdg", vec![]),
        Gate::T => ("t", vec![]),
        Gate::Tdg => ("tdg", vec![]),
        Gate::Rx(a) => ("rx", vec![*a]),
        Gate::Ry(a) => ("ry", vec![*a]),
        Gate::Rz(a) => ("rz", vec![*a]),
        Gate::U1(a) => ("u1", vec![*a]),
        Gate::U2(a, b) => ("u2", vec![*a, *b]),
        Gate::U3(a, b, c) => ("u3", vec![*a, *b, *c]),
        Gate::Cnot => ("cnot", vec![]),
        Gate::Cz => ("cz", vec![]),
        Gate::CPhase(a) => ("cphase", vec![*a]),
        Gate::Rzz(a) => ("rzz", vec![*a]),
        Gate::Swap => ("swap", vec![]),
        Gate::Measure => ("measure", vec![]),
        _ => return None,
    })
}

fn gate_from_tag(tag: &str, angles: &[Angle]) -> Option<Gate> {
    Some(match (tag, angles) {
        ("id", []) => Gate::Id,
        ("h", []) => Gate::H,
        ("x", []) => Gate::X,
        ("y", []) => Gate::Y,
        ("z", []) => Gate::Z,
        ("s", []) => Gate::S,
        ("sdg", []) => Gate::Sdg,
        ("t", []) => Gate::T,
        ("tdg", []) => Gate::Tdg,
        ("rx", [a]) => Gate::Rx(*a),
        ("ry", [a]) => Gate::Ry(*a),
        ("rz", [a]) => Gate::Rz(*a),
        ("u1", [a]) => Gate::U1(*a),
        ("u2", [a, b]) => Gate::U2(*a, *b),
        ("u3", [a, b, c]) => Gate::U3(*a, *b, *c),
        ("cnot", []) => Gate::Cnot,
        ("cz", []) => Gate::Cz,
        ("cphase", [a]) => Gate::CPhase(*a),
        ("rzz", [a]) => Gate::Rzz(*a),
        ("swap", []) => Gate::Swap,
        ("measure", []) => Gate::Measure,
        _ => return None,
    })
}

fn encode_circuit(out: &mut String, label: &str, circuit: &Circuit) -> Option<()> {
    let _ = writeln!(
        out,
        "circuit {label} {} {}",
        circuit.num_qubits(),
        circuit.instructions().len()
    );
    for instr in circuit.instructions() {
        let gate = instr.gate();
        let (tag, angles) = gate_tag(&gate)?;
        let _ = write!(out, "i {tag}");
        for q in instr.qubit_vec() {
            let _ = write!(out, " {q}");
        }
        for angle in &angles {
            out.push(' ');
            encode_angle(out, angle);
        }
        out.push('\n');
    }
    Some(())
}

fn encode_layout(out: &mut String, label: &str, layout: &Layout) {
    let _ = write!(out, "layout {label} {}", layout.num_physical());
    for &p in layout.as_mapping() {
        let _ = write!(out, " {p}");
    }
    out.push('\n');
}

fn encode_options(out: &mut String, options: &CompileOptions) {
    let mapping: u8 = match options.mapping {
        InitialMapping::Naive => 0,
        InitialMapping::GreedyV => 1,
        InitialMapping::Dense => 2,
        InitialMapping::Qaim => 3,
    };
    let compilation: u8 = match options.compilation {
        Compilation::RandomOrder => 0,
        Compilation::Ip => 1,
        Compilation::IncrementalHops => 2,
        Compilation::IncrementalReliability => 3,
    };
    let opt = |o: Option<u128>| o.map_or("-".to_owned(), |v| v.to_string());
    let Resilience {
        fallback,
        pass_budget,
        swap_budget,
        max_retries,
    } = options.resilience;
    let _ = writeln!(
        out,
        "options {mapping} {compilation} {} {} {} {} {max_retries}",
        opt(options.packing_limit.map(|v| v as u128)),
        u8::from(fallback),
        opt(pass_budget.map(|d| d.as_nanos())),
        opt(swap_budget.map(|v| v as u128)),
    );
}

/// Serializes the full `(key, artifact)` body. `None` iff a circuit
/// contains a gate outside the stable tag set.
fn encode_entry(key: &CacheKey, artifact: &CompiledArtifact) -> Option<String> {
    let mut out = String::new();
    let _ = writeln!(out, "topology_fp {:016x}", key.topology_fp);
    match key.calibration_epoch {
        Some(e) => {
            let _ = writeln!(out, "epoch {e}");
        }
        None => {
            let _ = writeln!(out, "epoch -");
        }
    }
    encode_options(&mut out, &key.options);
    let spec = &key.spec;
    let _ = writeln!(
        out,
        "spec {} {} {} {}",
        spec.num_qubits(),
        u8::from(spec.measure()),
        spec.levels().len(),
        spec.param_table().len()
    );
    for (_, name) in spec.param_table().iter() {
        let mut hexname = String::with_capacity(name.len() * 2);
        for b in name.bytes() {
            let _ = write!(hexname, "{b:02x}");
        }
        let _ = writeln!(out, "param {hexname}");
    }
    for (level, (ops, mixer)) in spec.levels().iter().enumerate() {
        let _ = write!(out, "level {} ", ops.len());
        encode_angle(&mut out, mixer);
        out.push('\n');
        for op in ops {
            let _ = write!(out, "op {} {} ", op.a, op.b);
            encode_angle(&mut out, &op.angle);
            out.push('\n');
        }
        let fields = spec.field_terms(level);
        let _ = writeln!(out, "fields {}", fields.len());
        for (q, angle) in fields {
            let _ = write!(out, "field {q} ");
            encode_angle(&mut out, angle);
            out.push('\n');
        }
    }
    let template = artifact.template();
    let _ = writeln!(out, "swap_count {}", template.swap_count());
    let _ = writeln!(out, "num_params {}", artifact.num_params());
    encode_layout(&mut out, "initial", template.initial_layout());
    encode_layout(&mut out, "final", template.final_layout());
    encode_circuit(&mut out, "physical", template.physical())?;
    encode_circuit(&mut out, "basis", template.basis_circuit())?;
    out.push_str("end\n");
    Some(out)
}

/// A line cursor over the body; every helper returns `None` on any
/// structural violation, which the caller counts as corruption.
struct Lines<'a> {
    iter: std::str::Lines<'a>,
}

impl<'a> Lines<'a> {
    fn expect(&mut self, keyword: &str) -> Option<SplitWhitespace<'a>> {
        let mut words = self.iter.next()?.split_whitespace();
        (words.next()? == keyword).then_some(words)
    }
}

fn parse_usize(words: &mut SplitWhitespace<'_>) -> Option<usize> {
    words.next()?.parse().ok()
}

fn parse_opt(words: &mut SplitWhitespace<'_>) -> Option<Option<u128>> {
    let word = words.next()?;
    if word == "-" {
        Some(None)
    } else {
        word.parse().ok().map(Some)
    }
}

fn parse_angle(words: &mut SplitWhitespace<'_>) -> Option<Angle> {
    decode_angle(words.next()?)
}

fn decode_options(words: &mut SplitWhitespace<'_>) -> Option<CompileOptions> {
    let mapping = match parse_usize(words)? {
        0 => InitialMapping::Naive,
        1 => InitialMapping::GreedyV,
        2 => InitialMapping::Dense,
        3 => InitialMapping::Qaim,
        _ => return None,
    };
    let compilation = match parse_usize(words)? {
        0 => Compilation::RandomOrder,
        1 => Compilation::Ip,
        2 => Compilation::IncrementalHops,
        3 => Compilation::IncrementalReliability,
        _ => return None,
    };
    let packing_limit = parse_opt(words)?.map(|v| v as usize);
    let fallback = match parse_usize(words)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let pass_budget = parse_opt(words)?.map(|n| Duration::from_nanos(n as u64));
    let swap_budget = parse_opt(words)?.map(|v| v as usize);
    let max_retries = u8::try_from(parse_usize(words)?).ok()?;
    let mut options = CompileOptions::new(mapping, compilation);
    options.packing_limit = packing_limit;
    options.resilience = Resilience {
        fallback,
        pass_budget,
        swap_budget,
        max_retries,
    };
    Some(options)
}

fn decode_circuit(lines: &mut Lines<'_>, label: &str, params: &ParamTable) -> Option<Circuit> {
    let mut words = lines.expect("circuit")?;
    (words.next()? == label).then_some(())?;
    let num_qubits = parse_usize(&mut words)?;
    let count = parse_usize(&mut words)?;
    let mut circuit = Circuit::new(num_qubits);
    circuit.set_param_table(params.clone());
    for _ in 0..count {
        let mut words = lines.expect("i")?;
        let tag = words.next()?;
        let arity_two = matches!(tag, "cnot" | "cz" | "cphase" | "rzz" | "swap");
        let q0 = parse_usize(&mut words)?;
        let q1 = arity_two.then(|| parse_usize(&mut words)).flatten();
        if arity_two && q1.is_none() {
            return None;
        }
        let mut angles = Vec::new();
        for word in words {
            angles.push(decode_angle(word)?);
        }
        let gate = gate_from_tag(tag, &angles)?;
        let instr = match q1 {
            Some(q1) => Instruction::two(gate, q0, q1),
            None => Instruction::one(gate, q0),
        };
        circuit.push(instr).ok()?;
    }
    Some(circuit)
}

fn decode_layout(lines: &mut Lines<'_>, label: &str) -> Option<Layout> {
    let mut words = lines.expect("layout")?;
    (words.next()? == label).then_some(())?;
    let num_physical = parse_usize(&mut words)?;
    let mapping: Vec<usize> = words.map(|w| w.parse().ok()).collect::<Option<_>>()?;
    if mapping.iter().any(|&p| p >= num_physical) {
        return None;
    }
    Some(Layout::from_mapping(mapping, num_physical))
}

/// Parses one verified body back into its key and artifact. `None` on
/// any structural violation.
fn decode_entry(text: &str) -> Option<(CacheKey, CompiledArtifact)> {
    let body = verify_header(text, MAGIC)?;
    let mut lines = Lines { iter: body.lines() };

    let mut words = lines.expect("topology_fp")?;
    let topology_fp = u64::from_str_radix(words.next()?, 16).ok()?;
    let mut words = lines.expect("epoch")?;
    let epoch_word = words.next()?;
    let calibration_epoch = if epoch_word == "-" {
        None
    } else {
        Some(epoch_word.parse::<u64>().ok()?)
    };
    let options = decode_options(&mut lines.expect("options")?)?;

    let mut words = lines.expect("spec")?;
    let num_qubits = parse_usize(&mut words)?;
    let measure = match parse_usize(&mut words)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let num_levels = parse_usize(&mut words)?;
    let num_table_params = parse_usize(&mut words)?;
    if num_levels == 0 || num_qubits == 0 {
        return None;
    }
    let mut table = ParamTable::new();
    for _ in 0..num_table_params {
        let mut words = lines.expect("param")?;
        let hexname = words.next()?;
        if hexname.len() % 2 != 0 {
            return None;
        }
        let bytes: Vec<u8> = (0..hexname.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hexname[i..i + 2], 16).ok())
            .collect::<Option<_>>()?;
        table.declare(String::from_utf8(bytes).ok()?);
    }
    let mut levels: Vec<(Vec<CphaseOp>, Angle)> = Vec::with_capacity(num_levels);
    let mut fields: Vec<Vec<(usize, Angle)>> = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        let mut words = lines.expect("level")?;
        let ops_count = parse_usize(&mut words)?;
        let mixer = parse_angle(&mut words)?;
        let mut ops = Vec::with_capacity(ops_count);
        for _ in 0..ops_count {
            let mut words = lines.expect("op")?;
            let a = parse_usize(&mut words)?;
            let b = parse_usize(&mut words)?;
            let angle = parse_angle(&mut words)?;
            if a == b || a >= num_qubits || b >= num_qubits {
                return None;
            }
            ops.push(CphaseOp::new(a, b, angle));
        }
        levels.push((ops, mixer));
        let mut words = lines.expect("fields")?;
        let field_count = parse_usize(&mut words)?;
        let mut level_fields = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            let mut words = lines.expect("field")?;
            let q = parse_usize(&mut words)?;
            let angle = parse_angle(&mut words)?;
            if q >= num_qubits {
                return None;
            }
            level_fields.push((q, angle));
        }
        fields.push(level_fields);
    }
    let spec = QaoaSpec::new(num_qubits, levels, measure)
        .with_fields(fields)
        .with_params(table.clone());

    let swap_count = parse_usize(&mut lines.expect("swap_count")?)?;
    let num_params = parse_usize(&mut lines.expect("num_params")?)?;
    if num_params != table.len() {
        return None;
    }
    let initial_layout = decode_layout(&mut lines, "initial")?;
    let final_layout = decode_layout(&mut lines, "final")?;
    let physical = decode_circuit(&mut lines, "physical", &table)?;
    let basis = decode_circuit(&mut lines, "basis", &table)?;
    lines.expect("end")?;

    let template = CompiledCircuit::from_recovered_parts(
        physical,
        basis,
        initial_layout,
        final_layout,
        swap_count,
    );
    let key = CacheKey {
        spec,
        options,
        topology_fp,
        calibration_epoch,
    };
    Some((
        key,
        CompiledArtifact::from_recovered_template(template, num_params),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qserve-spill-{tag}-{}", std::process::id()))
    }

    fn parametric_spec() -> QaoaSpec {
        let mut table = ParamTable::new();
        let gamma = table.declare("gamma 0"); // space exercises hex names
        let beta = table.declare("beta0");
        let ops = vec![
            CphaseOp::new(0, 1, Angle::sym(gamma)),
            CphaseOp::new(1, 2, Angle::sym(gamma).scaled(2.0)),
            CphaseOp::new(2, 3, 0.7),
        ];
        QaoaSpec::new(4, vec![(ops, Angle::sym(beta))], true)
            .with_fields(vec![vec![(0, Angle::Const(0.11))]])
            .with_params(table)
    }

    fn compile_entry(options: CompileOptions, epoch: u64) -> (u64, CacheKey, CompiledArtifact) {
        let topology = qhw::Topology::grid(2, 3);
        let calibration = qhw::Calibration::uniform(&topology, 0.02, 0.001, 0.02);
        let context = qhw::HardwareContext::with_calibration(topology.clone(), calibration);
        let spec = parametric_spec();
        let artifact = qcompile::try_compile_artifact_with_context(
            &spec,
            &context,
            &options,
            &mut StdRng::seed_from_u64(5),
        )
        .expect("grid compiles");
        let key = CacheKey::new(spec, options, topology.fingerprint(), epoch);
        (key.fingerprint(), key, artifact)
    }

    #[test]
    fn save_and_recover_round_trips_key_and_artifact() {
        let dir = tmp("roundtrip");
        let store = SpillStore::new(dir.clone()).unwrap();
        let (fp, key, artifact) = compile_entry(CompileOptions::vic().with_fallback(), 3);
        store.save(fp, &key, &artifact).unwrap();

        let report = store.recover(key.topology_fp, Some(3));
        assert_eq!((report.corrupt, report.stale), (0, 0));
        assert_eq!(report.entries.len(), 1);
        let (got_fp, got_key, got) = &report.entries[0];
        assert_eq!(*got_fp, fp);
        assert_eq!(got_key, &key);
        assert_eq!(got_key.fingerprint(), fp, "recomputed fingerprint matches");
        let t = got.template();
        assert_eq!(t.swap_count(), artifact.template().swap_count());
        assert_eq!(t.physical(), artifact.template().physical());
        assert_eq!(t.basis_circuit(), artifact.template().basis_circuit());
        assert_eq!(
            t.initial_layout().as_mapping(),
            artifact.template().initial_layout().as_mapping()
        );
        assert_eq!(
            t.final_layout().as_mapping(),
            artifact.template().final_layout().as_mapping()
        );
        assert_eq!(got.num_params(), 2);
        assert!(got.is_parametric());
        // A recovered artifact binds exactly like the original.
        let values = qcircuit::ParamValues::new(vec![0.3, 0.9]);
        let (a, b) = (got.bind(&values).unwrap(), artifact.bind(&values).unwrap());
        assert_eq!(a.physical(), b.physical());
        assert_eq!(a.basis_circuit(), b.basis_circuit());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_epoch_and_foreign_topology_entries_are_dropped() {
        let dir = tmp("stale");
        let store = SpillStore::new(dir.clone()).unwrap();
        let (fp, key, artifact) = compile_entry(CompileOptions::vic().with_fallback(), 3);
        store.save(fp, &key, &artifact).unwrap();
        // Epoch moved on: the VIC entry is stale and also deleted.
        let report = store.recover(key.topology_fp, Some(4));
        assert_eq!(report.entries.len(), 0);
        assert_eq!(report.stale, 1);
        let report = store.recover(key.topology_fp, Some(3));
        assert_eq!(
            report.entries.len(),
            0,
            "stale recovery deleted the file for good"
        );

        // Epoch-free (IC) entries survive any epoch but not a topology swap.
        let (fp, key, artifact) = compile_entry(CompileOptions::ic(), 3);
        store.save(fp, &key, &artifact).unwrap();
        assert_eq!(store.recover(key.topology_fp, Some(99)).entries.len(), 1);
        let report = store.recover(key.topology_fp ^ 1, Some(3));
        assert_eq!((report.entries.len(), report.stale), (0, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_and_bitflips_are_detected_not_served() {
        use qhw::fault::{FaultInjector, SpillCorruption};
        let dir = tmp("corrupt");
        let store = SpillStore::new(dir.clone()).unwrap();
        let (fp, key, artifact) = compile_entry(CompileOptions::ic(), 0);
        let path = dir.join(format!("{fp:016x}.qart"));
        let mut injector = FaultInjector::new(17);
        for kind in [SpillCorruption::Truncate, SpillCorruption::BitFlip] {
            store.save(fp, &key, &artifact).unwrap();
            injector.corrupt_spill_file(&path, kind).unwrap();
            let report = store.recover(key.topology_fp, Some(0));
            assert_eq!(report.entries.len(), 0, "{kind:?} must not serve");
            assert_eq!(report.corrupt, 1, "{kind:?} counted as corrupt");
        }
        // An empty (fully torn) file is corrupt, not a panic.
        std::fs::write(&path, "").unwrap();
        assert_eq!(store.recover(key.topology_fp, Some(0)).corrupt, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_sidecar_round_trips_and_rejects_corruption() {
        let dir = tmp("meta");
        let store = SpillStore::new(dir.clone()).unwrap();
        assert_eq!(store.read_meta(), None);
        store.write_meta(7, Some(0xabcd)).unwrap();
        assert_eq!(store.read_meta(), Some((7, Some(0xabcd))));
        store.write_meta(9, None).unwrap();
        assert_eq!(store.read_meta(), Some((9, None)));
        // Flip a byte: the checksum refuses it.
        let path = dir.join("epoch.meta");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        assert_eq!(store.read_meta(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
