//! The ops plane: per-request lifecycle tracing, tenant-scoped metrics
//! and the deterministic ops event journal.
//!
//! All three layers are recorded under the service's single admission
//! lock and stamped with the **logical clock**, never wall time, so the
//! exported artifacts are byte-identical across worker counts:
//!
//! * **Lifecycle log** — every admission opens a [`RequestTrace`] keyed
//!   by a stable, dense request id (the admission ordinal). Transitions
//!   append `(stage, tick)` pairs. Scheduler-dependent transitions
//!   (dispatch, compile completion) are stamped with the request's
//!   *admit* tick — the tick answers "where in the admission stream did
//!   this resolve", not "how long did the wall clock take"; the
//!   wall-time story lives in the per-tenant spans and `_ns` histograms.
//!   Deadline-driven terminals carry the deadline-plane tick instead
//!   (the sweep tick for queue reaps, the deadline itself for in-flight
//!   cancellations), which is equally a pure function of the request
//!   stream.
//! * **Tenant metrics** — per-tenant counters, an error-code breakdown
//!   keyed by [`crate::ServeError::code`], per-spec request counts, and
//!   four log2 histograms: deterministic `e2e_ticks` plus wall-time
//!   `queue_wait_ns` / `compile_ns` / `e2e_ns` (the `_ns` suffix is a
//!   contract — `qtrace::Manifest::normalized` zeroes those, and the
//!   regress gate skips their means). Exact p50/p90/p99 latencies ride
//!   on the `qserve/tenant/<t>/...` spans recorded alongside.
//! * **Journal** — every failure-plane action (breaker trip / probe /
//!   close, quarantine add / release, negative-cache strike / expiry,
//!   calibration reloads with their invalidation counts, spill recovery
//!   stats) as one [`JournalEvent`]: tick, event code, tenant, spec
//!   fingerprint and the causing request id, rendered as canonical JSON
//!   lines by [`render_journal`].

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qtrace::{Event, EventKind, Histogram, Manifest};

/// Distinct spec fingerprints the per-spec hot counter tracks before it
/// stops admitting new keys (existing keys keep counting); the overflow
/// count is emitted as `qserve/spec/overflow`.
const SPEC_CAP: usize = 4096;

/// Ops-plane configuration, embedded in
/// [`crate::ServiceConfig::ops`]. Everything defaults to on; the
/// lifecycle log and journal can be switched off independently for
/// overhead-sensitive deployments (the bench overhead guard pins the
/// lifecycle capture cost below 5% of the quick load campaign).
#[derive(Debug, Clone)]
pub struct OpsConfig {
    /// Record a per-request lifecycle trace (admission-ordered, bounded
    /// by `lifecycle_capacity`).
    pub lifecycle: bool,
    /// Record failure-plane actions into the ops journal.
    pub journal: bool,
    /// Lifecycle records retained between [`crate::Service::take_lifecycle`]
    /// drains; admissions beyond it are counted as dropped, never
    /// reallocated (min 1).
    pub lifecycle_capacity: usize,
}

impl Default for OpsConfig {
    fn default() -> Self {
        OpsConfig {
            lifecycle: true,
            journal: true,
            lifecycle_capacity: 1 << 16,
        }
    }
}

/// One lifecycle transition. The first three are intermediate; every
/// other stage is terminal, and every admitted request reaches exactly
/// one terminal (the conservation property the ops-plane proptest
/// pins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Admission classified the request (always the first transition).
    Admitted,
    /// A miss entered its tenant FIFO.
    Queued,
    /// A worker (or inline/drain execution) picked the job up.
    Dispatched,
    /// Served a compiled artifact: a ready cache hit, a finished
    /// compile, or a pending hit whose in-flight compile succeeded.
    /// Pending hits settle with the producing compile's outcome but are
    /// stamped at their own admission tick, so the ready-vs-pending
    /// wall-clock race never reaches the lifecycle log.
    Completed,
    /// Served a failure: a live negative entry, a failed compile, or a
    /// pending hit whose in-flight compile failed.
    Failed,
    /// An in-flight compile cancelled by the deadline sweep.
    Cancelled,
    /// Reaped from the queue before dispatch (deadline lapsed).
    Reaped,
    /// Overload: served from a cached lower ladder rung.
    Shed,
    /// Overload: rejected, no rung cached.
    Rejected,
    /// Failed fast: the program is quarantined.
    Quarantined,
    /// Failed fast: the tenant's breaker is open.
    CircuitOpen,
    /// Failed fast: the tenant's token bucket ran dry.
    Throttled,
}

impl Stage {
    /// Stable lowercase label used in JSON lines and Perfetto tracks.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Admitted => "admitted",
            Stage::Queued => "queued",
            Stage::Dispatched => "dispatched",
            Stage::Completed => "completed",
            Stage::Failed => "failed",
            Stage::Cancelled => "cancelled",
            Stage::Reaped => "reaped",
            Stage::Shed => "shed",
            Stage::Rejected => "rejected",
            Stage::Quarantined => "quarantined",
            Stage::CircuitOpen => "circuit_open",
            Stage::Throttled => "throttled",
        }
    }

    /// Whether this stage ends a request's lifecycle.
    pub fn is_terminal(self) -> bool {
        !matches!(self, Stage::Admitted | Stage::Queued | Stage::Dispatched)
    }
}

/// The lifecycle trace of one request: its stable id, tenant queue
/// index, program and cache-key fingerprints, and the tick-stamped
/// transition list (admission first, terminal last).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Admission ordinal (1-based, dense, assigned under the submit
    /// lock).
    pub id: u64,
    /// Tenant queue index (the request's tenant modulo the configured
    /// tenant count).
    pub tenant: u32,
    /// [`crate::spec_fingerprint`] of the program.
    pub spec_fp: u64,
    /// Cache-key fingerprint of the requested configuration.
    pub key_fp: u64,
    /// `(stage, tick)` transitions in the order they were recorded.
    pub stages: Vec<(Stage, u64)>,
}

impl RequestTrace {
    /// The terminal stage, if the request has reached one.
    pub fn terminal(&self) -> Option<Stage> {
        self.stages
            .iter()
            .rev()
            .map(|&(s, _)| s)
            .find(|s| s.is_terminal())
    }

    /// How many terminal transitions were recorded (conservation says
    /// exactly one).
    pub fn terminal_count(&self) -> usize {
        self.stages.iter().filter(|(s, _)| s.is_terminal()).count()
    }

    /// One canonical JSON line (no trailing newline). Fingerprints are
    /// rendered as hex strings so the document survives parsers that
    /// reject integers beyond 2^53.
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"tenant\":{},\"spec_fp\":\"{:#018x}\",\"key_fp\":\"{:#018x}\",\"stages\":[",
            self.id, self.tenant, self.spec_fp, self.key_fp
        );
        for (i, (stage, tick)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[\"{}\",{}]", stage.label(), tick));
        }
        out.push_str("]}");
        out
    }
}

/// Admission-ordered lifecycle log. Records are keyed by dense request
/// ids, so a transition lookup is an index subtraction, never a search;
/// the capacity bound drops (and counts) records instead of growing
/// without bound.
#[derive(Debug)]
pub(crate) struct LifecycleLog {
    enabled: bool,
    capacity: usize,
    /// Id of `records[0]`; ids are dense from here.
    base_id: u64,
    records: Vec<RequestTrace>,
    dropped: u64,
}

impl LifecycleLog {
    pub fn new(config: &OpsConfig) -> LifecycleLog {
        LifecycleLog {
            enabled: config.lifecycle,
            capacity: config.lifecycle_capacity.max(1),
            base_id: 1,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Opens the trace of request `id` with its `Admitted` transition.
    pub fn open(&mut self, id: u64, tenant: u32, spec_fp: u64, key_fp: u64, tick: u64) {
        if !self.enabled {
            return;
        }
        if self.records.is_empty() {
            self.base_id = id;
        }
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let mut stages = Vec::with_capacity(4);
        stages.push((Stage::Admitted, tick));
        self.records.push(RequestTrace {
            id,
            tenant,
            spec_fp,
            key_fp,
            stages,
        });
    }

    /// Appends a transition to request `id`'s trace. Transitions for
    /// dropped or already-drained records are ignored.
    pub fn push(&mut self, id: u64, stage: Stage, tick: u64) {
        if !self.enabled {
            return;
        }
        let Some(idx) = id.checked_sub(self.base_id) else {
            return;
        };
        if let Some(record) = self.records.get_mut(idx as usize) {
            if record.id == id {
                record.stages.push((stage, tick));
            }
        }
    }

    /// Admissions dropped by the capacity bound since the last drain.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the log in admission (id) order. Transitions of requests
    /// still in flight at the drain are discarded — drain after the
    /// campaign settles.
    pub fn take(&mut self) -> Vec<RequestTrace> {
        self.base_id += self.records.len() as u64 + self.dropped;
        self.dropped = 0;
        std::mem::take(&mut self.records)
    }
}

/// One failure-plane action: what happened, when on the logical clock,
/// and which tenant / program / request caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Logical clock when the action happened.
    pub tick: u64,
    /// Stable event code (e.g. `"breaker_trip"`, `"quarantine_add"`).
    pub code: &'static str,
    /// Tenant queue index, when the action is tenant-scoped.
    pub tenant: Option<u32>,
    /// Program fingerprint, when the action is spec-scoped.
    pub spec_fp: Option<u64>,
    /// Admission ordinal of the causing request, when one exists.
    pub request: Option<u64>,
    /// A short static annotation (e.g. the quarantine reason label).
    pub note: Option<&'static str>,
    /// Extra numeric fields in render order.
    pub extra: Vec<(&'static str, u64)>,
}

impl JournalEvent {
    /// A bare event; chain the builders below to attach context.
    pub fn new(tick: u64, code: &'static str) -> JournalEvent {
        JournalEvent {
            tick,
            code,
            tenant: None,
            spec_fp: None,
            request: None,
            note: None,
            extra: Vec::new(),
        }
    }

    /// Attaches the tenant queue index.
    pub fn tenant(mut self, tenant: u32) -> JournalEvent {
        self.tenant = Some(tenant);
        self
    }

    /// Attaches the program fingerprint.
    pub fn spec(mut self, spec_fp: u64) -> JournalEvent {
        self.spec_fp = Some(spec_fp);
        self
    }

    /// Attaches the causing request id.
    pub fn request(mut self, id: u64) -> JournalEvent {
        self.request = Some(id);
        self
    }

    /// Attaches a static annotation.
    pub fn note(mut self, note: &'static str) -> JournalEvent {
        self.note = Some(note);
        self
    }

    /// Appends one extra numeric field.
    pub fn field(mut self, key: &'static str, value: u64) -> JournalEvent {
        self.extra.push((key, value));
        self
    }

    /// One canonical JSON line (no trailing newline); fixed field
    /// order, spec fingerprints as hex strings (see
    /// [`RequestTrace::to_json_line`]).
    pub fn to_json_line(&self) -> String {
        let mut out = format!("{{\"tick\":{},\"event\":\"{}\"", self.tick, self.code);
        if let Some(t) = self.tenant {
            out.push_str(&format!(",\"tenant\":{t}"));
        }
        if let Some(fp) = self.spec_fp {
            out.push_str(&format!(",\"spec_fp\":\"{fp:#018x}\""));
        }
        if let Some(id) = self.request {
            out.push_str(&format!(",\"request\":{id}"));
        }
        if let Some(note) = self.note {
            out.push_str(&format!(",\"note\":\"{note}\""));
        }
        for (key, value) in &self.extra {
            out.push_str(&format!(",\"{key}\":{value}"));
        }
        out.push('}');
        out
    }
}

/// The ops journal: an append-only event list recorded under the
/// admission lock (admission-time events) or at compile completion
/// (failure verdicts), drained by [`crate::Service::take_journal`].
#[derive(Debug)]
pub(crate) struct Journal {
    enabled: bool,
    events: Vec<JournalEvent>,
}

impl Journal {
    pub fn new(config: &OpsConfig) -> Journal {
        Journal {
            enabled: config.journal,
            events: Vec::new(),
        }
    }

    pub fn push(&mut self, event: JournalEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    pub fn take(&mut self) -> Vec<JournalEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Per-tenant counters, error-code breakdown and latency histograms.
/// Counter semantics: `requests` counts admissions; the terminal
/// counters partition them (each admitted request lands in exactly
/// one); `errors` counts every request *served* an error, keyed by
/// [`crate::ServeError::code`] — including pending-hit waiters handed
/// the producing compile's failure, so the counter is independent of
/// whether the failure was observed live or at settlement.
#[derive(Debug, Default, Clone)]
pub(crate) struct TenantMetrics {
    pub requests: u64,
    pub hits: u64,
    pub misses: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub reaped: u64,
    pub shed: u64,
    pub rejected: u64,
    pub quarantined: u64,
    pub breaker_open: u64,
    pub throttled: u64,
    pub errors: BTreeMap<&'static str, u64>,
    /// Terminal tick minus admit tick — deterministic logical latency
    /// (nonzero only for deadline-driven terminals).
    pub e2e_ticks: Histogram,
    /// Admission-to-dispatch wall time of executed compiles.
    pub queue_wait_ns: Histogram,
    /// Compile wall time of executed compiles.
    pub compile_ns: Histogram,
    /// Admission-to-terminal wall time of every request.
    pub e2e_ns: Histogram,
}

impl TenantMetrics {
    fn note_terminal(&mut self, stage: Stage) {
        match stage {
            Stage::Completed => self.completed += 1,
            Stage::Failed => self.failed += 1,
            Stage::Cancelled => self.cancelled += 1,
            Stage::Reaped => self.reaped += 1,
            Stage::Shed => self.shed += 1,
            Stage::Rejected => self.rejected += 1,
            Stage::Quarantined => self.quarantined += 1,
            Stage::CircuitOpen => self.breaker_open += 1,
            Stage::Throttled => self.throttled += 1,
            Stage::Admitted | Stage::Queued | Stage::Dispatched => {}
        }
    }
}

/// A pending-hit request whose terminal settlement is deferred to the
/// producing compile's fill. The lifecycle stamp stays the waiter's
/// *admit* tick and the settlement stage is the compile's deterministic
/// outcome, so whether the slot happened to be filled before or after
/// the waiter arrived — a pure wall-clock race — never changes a byte
/// of the exported artifacts.
#[derive(Debug)]
pub(crate) struct Waiter {
    pub req_id: u64,
    pub tenant: usize,
    pub admit_tick: u64,
    pub admit_at: Instant,
}

/// The whole ops plane, owned by the service's `Inner` and mutated only
/// under the admission lock.
#[derive(Debug)]
pub(crate) struct OpsState {
    pub lifecycle: LifecycleLog,
    pub journal: Journal,
    pub tenants: Vec<TenantMetrics>,
    /// Requests per spec fingerprint (all admission modes), capped at
    /// [`SPEC_CAP`] distinct keys.
    pub specs: BTreeMap<u64, u64>,
    pub spec_overflow: u64,
    /// Parked pending-hit waiters, keyed by the cache **entry id** of
    /// the reservation they coalesced onto (== the producing job's id;
    /// a fingerprint key would be ambiguous if a pending entry is
    /// evicted and the key re-reserved).
    waiters: HashMap<u64, Vec<Waiter>>,
}

impl OpsState {
    pub fn new(config: &OpsConfig, tenants: usize) -> OpsState {
        OpsState {
            lifecycle: LifecycleLog::new(config),
            journal: Journal::new(config),
            tenants: vec![TenantMetrics::default(); tenants],
            specs: BTreeMap::new(),
            spec_overflow: 0,
            waiters: HashMap::new(),
        }
    }

    /// Parks a pending-hit request on the reservation it coalesced
    /// onto; [`OpsState::take_waiters`] settles it when that
    /// reservation resolves.
    pub fn park(&mut self, entry_id: u64, waiter: Waiter) {
        self.waiters.entry(entry_id).or_default().push(waiter);
    }

    /// Drains the waiters parked on `entry_id` (admission order).
    pub fn take_waiters(&mut self, entry_id: u64) -> Vec<Waiter> {
        self.waiters.remove(&entry_id).unwrap_or_default()
    }

    /// Records one admission: opens the lifecycle trace and bumps the
    /// tenant and spec request counters.
    pub fn on_admit(&mut self, id: u64, tenant: usize, spec_fp: u64, key_fp: u64, tick: u64) {
        self.lifecycle.open(id, tenant as u32, spec_fp, key_fp, tick);
        self.tenants[tenant].requests += 1;
        if let Some(slot) = self.specs.get_mut(&spec_fp) {
            *slot += 1;
        } else if self.specs.len() < SPEC_CAP {
            self.specs.insert(spec_fp, 1);
        } else {
            self.spec_overflow += 1;
        }
    }

    /// Records a request's terminal transition: lifecycle, terminal
    /// counter, error-code breakdown, deterministic tick latency, and
    /// the wall-time end-to-end histogram + span.
    pub fn finish(
        &mut self,
        id: u64,
        tenant: usize,
        stage: Stage,
        admit_tick: u64,
        stamp_tick: u64,
        error: Option<&'static str>,
        e2e: Duration,
    ) {
        self.lifecycle.push(id, stage, stamp_tick);
        let m = &mut self.tenants[tenant];
        m.note_terminal(stage);
        if let Some(code) = error {
            *m.errors.entry(code).or_insert(0) += 1;
        }
        m.e2e_ticks.record(stamp_tick.saturating_sub(admit_tick));
        m.e2e_ns
            .record(u64::try_from(e2e.as_nanos()).unwrap_or(u64::MAX));
        let q = qtrace::global();
        if q.is_enabled() {
            q.record_span(&format!("qserve/tenant/{tenant}/e2e"), e2e);
        }
    }

    /// Records the wall-time split of one executed compile.
    pub fn observe_execution(&mut self, tenant: usize, queue_wait: Duration, compile: Duration) {
        let m = &mut self.tenants[tenant];
        m.queue_wait_ns
            .record(u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX));
        m.compile_ns
            .record(u64::try_from(compile.as_nanos()).unwrap_or(u64::MAX));
        let q = qtrace::global();
        if q.is_enabled() {
            q.record_span(&format!("qserve/tenant/{tenant}/queue_wait"), queue_wait);
            q.record_span(&format!("qserve/tenant/{tenant}/compile"), compile);
        }
    }

    /// Drains the metric registry into the qtrace recorder as the
    /// `qserve/tenant/<t>/...` and `qserve/spec/<fp>/...` series. Zero
    /// counters and empty histograms are skipped so manifests stay
    /// lean; call once per recorder drain (counters accumulate).
    pub fn flush_metrics(&self, q: &qtrace::Recorder) {
        if !q.is_enabled() {
            return;
        }
        for (t, m) in self.tenants.iter().enumerate() {
            let counters: [(&str, u64); 12] = [
                ("requests", m.requests),
                ("hits", m.hits),
                ("misses", m.misses),
                ("completed", m.completed),
                ("failed", m.failed),
                ("cancelled", m.cancelled),
                ("reaped", m.reaped),
                ("shed", m.shed),
                ("rejected", m.rejected),
                ("quarantined", m.quarantined),
                ("breaker_open", m.breaker_open),
                ("throttled", m.throttled),
            ];
            for (name, value) in counters {
                if value > 0 {
                    q.add(&format!("qserve/tenant/{t}/{name}"), value);
                }
            }
            for (code, count) in &m.errors {
                q.add(&format!("qserve/tenant/{t}/error/{code}"), *count);
            }
            if m.requests > 0 {
                q.gauge_max(
                    &format!("qserve/tenant/{t}/hit_permille"),
                    m.hits * 1000 / m.requests,
                );
            }
            let hists: [(&str, &Histogram); 4] = [
                ("e2e_ticks", &m.e2e_ticks),
                ("queue_wait_ns", &m.queue_wait_ns),
                ("compile_ns", &m.compile_ns),
                ("e2e_ns", &m.e2e_ns),
            ];
            for (name, hist) in hists {
                q.observe_histogram(&format!("qserve/tenant/{t}/{name}"), hist);
            }
        }
        for (fp, count) in &self.specs {
            q.add(&format!("qserve/spec/{fp:016x}/requests"), *count);
        }
        if self.spec_overflow > 0 {
            q.add("qserve/spec/overflow", self.spec_overflow);
        }
    }
}

/// Renders journal events as JSON lines (one per event, trailing
/// newline when non-empty).
pub fn render_journal(events: &[JournalEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json_line());
        out.push('\n');
    }
    out
}

/// Renders lifecycle traces as JSON lines in admission order.
pub fn render_lifecycle(traces: &[RequestTrace]) -> String {
    let mut out = String::new();
    for trace in traces {
        out.push_str(&trace.to_json_line());
        out.push('\n');
    }
    out
}

/// Builds a [`Manifest`] whose timeline holds one instant event per
/// lifecycle transition, with the **tenant as the thread id** — fed to
/// [`qtrace::export::chrome_trace`], Perfetto renders one track per
/// tenant. Ticks are scaled ×1000 so one logical tick renders as one
/// microsecond.
pub fn lifecycle_manifest(name: &str, traces: &[RequestTrace]) -> Manifest {
    let mut paths: BTreeMap<&'static str, Arc<str>> = BTreeMap::new();
    let mut manifest = Manifest::empty(name);
    for trace in traces {
        for &(stage, tick) in &trace.stages {
            let path = paths
                .entry(stage.label())
                .or_insert_with(|| Arc::from(format!("qserve/{}", stage.label())));
            manifest.events.push(Event {
                path: Arc::clone(path),
                kind: EventKind::Instant,
                tid: u64::from(trace.tenant),
                ts_ns: tick.saturating_mul(1000),
            });
        }
    }
    manifest
        .events
        .sort_by(|a, b| (a.ts_ns, a.tid, &a.path).cmp(&(b.ts_ns, b.tid, &b.path)));
    manifest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> OpsConfig {
        OpsConfig::default()
    }

    #[test]
    fn lifecycle_records_transitions_in_admission_order() {
        let mut log = LifecycleLog::new(&config());
        log.open(1, 0, 0xAA, 0xA1, 5);
        log.open(2, 1, 0xBB, 0xB1, 6);
        log.push(1, Stage::Queued, 5);
        log.push(2, Stage::Completed, 6);
        log.push(1, Stage::Dispatched, 5);
        log.push(1, Stage::Completed, 5);
        let traces = log.take();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].id, 1);
        assert_eq!(traces[0].terminal(), Some(Stage::Completed));
        assert_eq!(traces[0].terminal_count(), 1);
        assert_eq!(
            traces[0].stages,
            vec![
                (Stage::Admitted, 5),
                (Stage::Queued, 5),
                (Stage::Dispatched, 5),
                (Stage::Completed, 5),
            ]
        );
        assert_eq!(traces[1].terminal(), Some(Stage::Completed));
        // Drained: later transitions for old ids are ignored, new opens
        // restart the dense block.
        log.push(1, Stage::Failed, 9);
        log.open(3, 0, 0xCC, 0xC1, 9);
        let traces = log.take();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].id, 3);
        assert_eq!(traces[0].terminal(), None);
    }

    #[test]
    fn lifecycle_capacity_drops_and_counts() {
        let mut log = LifecycleLog::new(&OpsConfig {
            lifecycle_capacity: 2,
            ..config()
        });
        for id in 1..=5 {
            log.open(id, 0, 0, 0, id);
        }
        assert_eq!(log.dropped(), 3);
        // Transitions for dropped ids are ignored, not misattributed.
        log.push(4, Stage::Completed, 9);
        let traces = log.take();
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|t| t.terminal().is_none()));
        assert_eq!(log.dropped(), 0, "drain resets the drop count");
    }

    #[test]
    fn disabled_lifecycle_records_nothing() {
        let mut log = LifecycleLog::new(&OpsConfig {
            lifecycle: false,
            ..config()
        });
        log.open(1, 0, 0, 0, 1);
        log.push(1, Stage::Completed, 1);
        assert!(log.take().is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn journal_lines_are_canonical() {
        let ev = JournalEvent::new(7, "quarantine_add")
            .tenant(2)
            .spec(0x1234)
            .request(41)
            .note("panicked")
            .field("strikes", 3);
        assert_eq!(
            ev.to_json_line(),
            "{\"tick\":7,\"event\":\"quarantine_add\",\"tenant\":2,\
             \"spec_fp\":\"0x0000000000001234\",\"request\":41,\
             \"note\":\"panicked\",\"strikes\":3}"
        );
        let bare = JournalEvent::new(0, "spill_recovery")
            .field("recovered", 5)
            .field("corrupt", 1);
        assert_eq!(
            bare.to_json_line(),
            "{\"tick\":0,\"event\":\"spill_recovery\",\"recovered\":5,\"corrupt\":1}"
        );
        let rendered = render_journal(&[ev.clone(), bare]);
        assert_eq!(rendered.lines().count(), 2);
        assert!(rendered.ends_with('\n'));
        assert!(render_journal(&[]).is_empty());
    }

    #[test]
    fn trace_json_line_round_trips_through_qtrace_json() {
        let trace = RequestTrace {
            id: 9,
            tenant: 1,
            spec_fp: u64::MAX,
            key_fp: 0xDEAD_BEEF,
            stages: vec![(Stage::Admitted, 3), (Stage::Throttled, 3)],
        };
        let line = trace.to_json_line();
        // Hex-string fingerprints keep the document inside f64-exact
        // integer range for qtrace's strict JSON parser.
        let doc = qtrace::json::Json::parse(&line).expect("valid JSON");
        assert_eq!(
            doc.get("spec_fp").and_then(|v| v.as_str()),
            Some("0xffffffffffffffff")
        );
        assert_eq!(
            doc.get("stages").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn metrics_flush_emits_only_nonzero_series() {
        let mut ops = OpsState::new(&config(), 2);
        ops.on_admit(1, 0, 0xA, 0xA1, 1);
        ops.finish(
            1,
            0,
            Stage::Completed,
            1,
            1,
            None,
            Duration::from_nanos(500),
        );
        ops.on_admit(2, 0, 0xB, 0xB1, 2);
        ops.finish(
            2,
            0,
            Stage::Throttled,
            2,
            2,
            Some("throttled"),
            Duration::from_nanos(100),
        );
        let rec = qtrace::Recorder::new();
        rec.enable();
        ops.flush_metrics(&rec);
        let m = rec.take_manifest("t");
        assert_eq!(m.counters["qserve/tenant/0/requests"], 2);
        assert_eq!(m.counters["qserve/tenant/0/completed"], 1);
        assert_eq!(m.counters["qserve/tenant/0/throttled"], 1);
        assert_eq!(m.counters["qserve/tenant/0/error/throttled"], 1);
        assert_eq!(m.counters[&format!("qserve/spec/{:016x}/requests", 0xA)], 1);
        assert!(
            !m.counters.contains_key("qserve/tenant/1/requests"),
            "idle tenants emit nothing"
        );
        assert!(
            !m.counters.contains_key("qserve/tenant/0/failed"),
            "zero counters are skipped"
        );
        assert_eq!(m.histograms["qserve/tenant/0/e2e_ns"].count(), 2);
        assert_eq!(m.histograms["qserve/tenant/0/e2e_ticks"].count(), 2);
        assert!(
            !m.histograms.contains_key("qserve/tenant/0/compile_ns"),
            "empty histograms are skipped"
        );
        assert_eq!(m.gauges["qserve/tenant/0/hit_permille"], 0);
    }

    #[test]
    fn lifecycle_manifest_exports_one_track_per_tenant() {
        let traces = vec![
            RequestTrace {
                id: 1,
                tenant: 0,
                spec_fp: 1,
                key_fp: 1,
                stages: vec![(Stage::Admitted, 1), (Stage::Completed, 1)],
            },
            RequestTrace {
                id: 2,
                tenant: 3,
                spec_fp: 2,
                key_fp: 2,
                stages: vec![(Stage::Admitted, 2), (Stage::Reaped, 7)],
            },
        ];
        let manifest = lifecycle_manifest("lc", &traces);
        assert_eq!(manifest.events.len(), 4);
        let tids: std::collections::BTreeSet<u64> =
            manifest.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.into_iter().collect::<Vec<_>>(), vec![0, 3]);
        assert!(manifest
            .events
            .iter()
            .all(|e| e.kind == EventKind::Instant && e.path.starts_with("qserve/")));
        // Ticks render as microseconds.
        assert_eq!(manifest.events.last().map(|e| e.ts_ns), Some(7000));
        // The export path accepts it.
        let ctf = qtrace::export::chrome_trace(&manifest);
        assert!(ctf.contains("\"ph\": \"i\""));
        assert!(ctf.contains("\"tid\": 3"));
    }
}
