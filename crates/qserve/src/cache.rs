//! Content-addressed compiled-artifact cache.
//!
//! Entries are located by a 64-bit structural fingerprint of the full
//! [`CacheKey`], but a fingerprint match alone never serves an artifact:
//! every bucket keeps the complete owned key and verifies **full
//! equality** on hit (the same discipline as
//! [`qhw::HardwareContext::shared`]). A hash collision between distinct
//! specs therefore degrades to an ordinary miss-and-compile — wrong
//! artifacts are impossible by construction, which is what the
//! cache-correctness suite pins down by forcing two distinct keys into
//! one bucket.
//!
//! Recency, eviction and state transitions are all driven by the caller
//! (the service's admission path) under one lock, so the hit/miss/
//! eviction sequence is deterministic for a given request stream.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use qcircuit::Angle;
use qcompile::{
    Compilation, CompileOptions, CompiledArtifact, InitialMapping, QaoaSpec, Resilience,
};

use crate::service::ServeError;

/// Full identity of one cached compile product. Two requests share an
/// artifact iff their keys are equal — structurally equal program, equal
/// options, same topology, and (for calibration-consuming
/// configurations) the same calibration epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheKey {
    /// The program being compiled, compared structurally.
    pub spec: QaoaSpec,
    /// The requested configuration (mapping, compilation mode, packing,
    /// resilience policy — all of it shapes the artifact).
    pub options: CompileOptions,
    /// [`qhw::Topology::fingerprint`] of the service's target.
    pub topology_fp: u64,
    /// `Some(epoch)` iff `options` consume calibration (VIC). Hop-metric
    /// and naive artifacts carry `None` and survive calibration
    /// hot-reloads untouched.
    pub calibration_epoch: Option<u64>,
}

impl CacheKey {
    /// Builds the key for a request against the service's current
    /// topology and calibration epoch. Only
    /// [`Compilation::IncrementalReliability`] reads calibration, so only
    /// it bakes the epoch into its identity.
    pub fn new(spec: QaoaSpec, options: CompileOptions, topology_fp: u64, epoch: u64) -> CacheKey {
        let calibration_epoch =
            matches!(options.compilation, Compilation::IncrementalReliability).then_some(epoch);
        CacheKey {
            spec,
            options,
            topology_fp,
            calibration_epoch,
        }
    }

    /// The 64-bit structural fingerprint locating this key's bucket.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        spec_fingerprint(&self.spec).hash(&mut h);
        hash_options(&self.options, &mut h);
        self.topology_fp.hash(&mut h);
        self.calibration_epoch.hash(&mut h);
        h.finish()
    }
}

/// Structural fingerprint of a [`QaoaSpec`]: qubit count, measurement
/// flag, every level's CPHASE list and mixer angle, every field term,
/// and the parameter table — all angle values hashed bit-exactly via
/// `f64::to_bits`. Specs that compare equal hash equal; the proptest
/// suite checks the converse over generated program pairs.
pub fn spec_fingerprint(spec: &QaoaSpec) -> u64 {
    let mut h = DefaultHasher::new();
    spec.num_qubits().hash(&mut h);
    spec.measure().hash(&mut h);
    spec.levels().len().hash(&mut h);
    for (level, (ops, mixer)) in spec.levels().iter().enumerate() {
        ops.len().hash(&mut h);
        for op in ops {
            op.a.hash(&mut h);
            op.b.hash(&mut h);
            hash_angle(&op.angle, &mut h);
        }
        hash_angle(mixer, &mut h);
        let fields = spec.field_terms(level);
        fields.len().hash(&mut h);
        for (q, angle) in fields {
            q.hash(&mut h);
            hash_angle(angle, &mut h);
        }
    }
    spec.param_table().len().hash(&mut h);
    for (_, name) in spec.param_table().iter() {
        name.hash(&mut h);
    }
    h.finish()
}

fn hash_angle<H: Hasher>(angle: &Angle, h: &mut H) {
    match angle {
        Angle::Const(v) => {
            0u8.hash(h);
            v.to_bits().hash(h);
        }
        Angle::Sym { param, scale } => {
            1u8.hash(h);
            param.0.hash(h);
            scale.to_bits().hash(h);
        }
    }
}

fn hash_options<H: Hasher>(options: &CompileOptions, h: &mut H) {
    let mapping: u8 = match options.mapping {
        InitialMapping::Naive => 0,
        InitialMapping::GreedyV => 1,
        InitialMapping::Dense => 2,
        InitialMapping::Qaim => 3,
    };
    let compilation: u8 = match options.compilation {
        Compilation::RandomOrder => 0,
        Compilation::Ip => 1,
        Compilation::IncrementalHops => 2,
        Compilation::IncrementalReliability => 3,
    };
    mapping.hash(h);
    compilation.hash(h);
    options.packing_limit.hash(h);
    let Resilience {
        fallback,
        pass_budget,
        swap_budget,
        max_retries,
    } = options.resilience;
    fallback.hash(h);
    pass_budget.map(|d| d.as_nanos()).hash(h);
    swap_budget.hash(h);
    max_retries.hash(h);
}

/// `(result, served_order, resolved_at)` of a finished compile.
pub(crate) type Resolution = (Result<Arc<CompiledArtifact>, ServeError>, u64, Instant);

/// The completion slot admission hands to every requester of an
/// in-flight compile. The worker (or an inline drain) fills it exactly
/// once; waiters block on the condvar.
#[derive(Debug, Default)]
pub(crate) struct Completion {
    pub slot: Mutex<Option<Resolution>>,
    pub ready: Condvar,
}

/// What a cache bucket entry currently holds.
#[derive(Debug, Clone)]
pub(crate) enum SlotState {
    /// Reserved at admission; the compile is queued or running. Later
    /// requests for the same key coalesce onto the shared completion.
    Pending(Arc<Completion>),
    /// A finished artifact, served by `Arc` clone.
    Ready(Arc<CompiledArtifact>),
    /// The compile failed; the error is served to later requests
    /// (negative caching keeps the outcome sequence deterministic and
    /// stops a poisoned key from hammering the workers) until
    /// `expires_at`, after which the next lookup reaps the entry and the
    /// service retries the compile with the strike count carried
    /// forward into the next backoff window.
    Failed {
        /// The error served while the entry lives.
        error: ServeError,
        /// Logical tick past which the entry expires; `None` caches the
        /// failure forever (non-recoverable errors).
        expires_at: Option<u64>,
        /// Consecutive failures of this key so far (drives backoff).
        strikes: u32,
    },
}

/// Three-way result of a cache probe at a logical instant.
#[derive(Debug)]
pub(crate) enum Lookup {
    /// A live entry (pending, ready, or an unexpired failure).
    Hit {
        state: SlotState,
        /// Reservation id of the entry (== the producing job's id). A
        /// pending hit parks its lifecycle settlement on this id so the
        /// fill drains exactly the waiters of *this* reservation, even
        /// if the key is later evicted and re-reserved.
        entry_id: u64,
    },
    /// A negative entry whose backoff TTL has lapsed: the entry has been
    /// reaped; the caller should re-admit the compile as a miss and
    /// carry `strikes` into the next failure's TTL.
    ExpiredNegative {
        /// Consecutive failures recorded before expiry.
        strikes: u32,
    },
    /// No entry for this key.
    Miss,
}

#[derive(Debug)]
struct Entry {
    /// Unique per reservation: a worker completing an evicted-and-
    /// re-reserved key must not overwrite the newer entry.
    id: u64,
    key: CacheKey,
    state: SlotState,
    /// Admission tick of the last lookup/reserve touching this entry —
    /// the LRU ordinate.
    last_used: u64,
}

/// Capacity-bounded LRU over compiled artifacts. Not internally
/// synchronized: the service wraps it in its admission lock.
#[derive(Debug)]
pub(crate) struct ArtifactCache {
    capacity: usize,
    /// Fingerprint → entries (more than one only on a fingerprint
    /// collision, where equality verification keeps them apart).
    buckets: HashMap<u64, Vec<Entry>>,
    /// `last_used` tick → `(fingerprint, id)`, the eviction order.
    recency: BTreeMap<u64, (u64, u64)>,
    len: usize,
    tick: u64,
    next_id: u64,
}

impl ArtifactCache {
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            capacity: capacity.max(1),
            buckets: HashMap::new(),
            recency: BTreeMap::new(),
            len: 0,
            tick: 0,
            next_id: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Probes for `key` in bucket `fp` at logical instant `now`,
    /// verifying full key equality. A live entry is touched (recency)
    /// and returned; a negative entry past its backoff TTL is reaped and
    /// reported as [`Lookup::ExpiredNegative`] so the caller retries the
    /// compile with the strike history intact.
    pub fn lookup(&mut self, fp: u64, key: &CacheKey, now: u64) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        let Some(entry) = self
            .buckets
            .get_mut(&fp)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.key == *key))
        else {
            return Lookup::Miss;
        };
        if let SlotState::Failed {
            expires_at: Some(expires_at),
            strikes,
            ..
        } = entry.state
        {
            if now > expires_at {
                self.recency.remove(&entry.last_used);
                let id = entry.id;
                self.remove_entry(fp, id);
                return Lookup::ExpiredNegative { strikes };
            }
        }
        self.recency.remove(&entry.last_used);
        entry.last_used = tick;
        let id = entry.id;
        let state = entry.state.clone();
        self.recency.insert(tick, (fp, id));
        Lookup::Hit {
            state,
            entry_id: id,
        }
    }

    /// Shed-ladder probe: returns a live, servable entry for `key`
    /// (ready or pending — a shed request can coalesce onto an
    /// in-flight compile), touching its recency. Failed entries are
    /// `None` whether their TTL lapsed or not, and an expired negative
    /// entry is **not** reaped: reaping here would discard the strike
    /// history [`Lookup::ExpiredNegative`] exists to carry forward, so
    /// the entry is left for the rung's own next admission to reap.
    pub fn probe_servable(&mut self, fp: u64, key: &CacheKey) -> Option<SlotState> {
        let entry = self
            .buckets
            .get_mut(&fp)?
            .iter_mut()
            .find(|e| e.key == *key)?;
        if matches!(entry.state, SlotState::Failed { .. }) {
            return None;
        }
        self.tick += 1;
        self.recency.remove(&entry.last_used);
        entry.last_used = self.tick;
        let id = entry.id;
        let state = entry.state.clone();
        self.recency.insert(self.tick, (fp, id));
        Some(state)
    }

    /// Reserves a pending entry for `key` in bucket `fp`, evicting the
    /// least-recently-used entries first if at capacity. Returns the
    /// reservation id and the fingerprints of the evicted entries (the
    /// service unlinks their disk spills).
    ///
    /// Pending entries are evictable like any other: their waiters hold
    /// the completion `Arc` directly, so eviction only forgets the cache
    /// slot, it never strands a requester.
    pub fn reserve(
        &mut self,
        fp: u64,
        key: CacheKey,
        completion: Arc<Completion>,
    ) -> (u64, Vec<u64>) {
        let evicted = self.evict_to_capacity();
        self.tick += 1;
        let id = self.next_id;
        self.next_id += 1;
        self.buckets.entry(fp).or_default().push(Entry {
            id,
            key,
            state: SlotState::Pending(completion),
            last_used: self.tick,
        });
        self.recency.insert(self.tick, (fp, id));
        self.len += 1;
        (id, evicted)
    }

    /// Inserts an already-compiled artifact (warm-start recovery),
    /// evicting as needed. Returns the evicted fingerprints.
    pub fn insert_ready(
        &mut self,
        fp: u64,
        key: CacheKey,
        artifact: Arc<CompiledArtifact>,
    ) -> Vec<u64> {
        let evicted = self.evict_to_capacity();
        self.tick += 1;
        let id = self.next_id;
        self.next_id += 1;
        self.buckets.entry(fp).or_default().push(Entry {
            id,
            key,
            state: SlotState::Ready(artifact),
            last_used: self.tick,
        });
        self.recency.insert(self.tick, (fp, id));
        self.len += 1;
        evicted
    }

    fn evict_to_capacity(&mut self) -> Vec<u64> {
        let mut evicted = Vec::new();
        while self.len >= self.capacity {
            let (&tick, &(victim_fp, victim_id)) =
                self.recency.iter().next().expect("len > 0 implies recency");
            self.recency.remove(&tick);
            self.remove_entry(victim_fp, victim_id);
            evicted.push(victim_fp);
        }
        evicted
    }

    /// Flips the reservation `(fp, id)` to its terminal state. Failures
    /// become negative entries expiring at `expires_at` (`None` =
    /// cached forever) carrying `strikes` consecutive failures for the
    /// backoff ladder. Returns whether the entry was still live — a
    /// no-op `false` when it was evicted (or invalidated) while the
    /// compile ran.
    pub fn complete(
        &mut self,
        fp: u64,
        id: u64,
        result: &Result<Arc<CompiledArtifact>, ServeError>,
        expires_at: Option<u64>,
        strikes: u32,
    ) -> bool {
        if let Some(bucket) = self.buckets.get_mut(&fp) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.id == id) {
                entry.state = match result {
                    Ok(artifact) => SlotState::Ready(Arc::clone(artifact)),
                    Err(error) => SlotState::Failed {
                        error: error.clone(),
                        expires_at,
                        strikes,
                    },
                };
                return true;
            }
        }
        false
    }

    /// Unconditionally removes the reservation `(fp, id)` and its
    /// recency locator. Used when admission reaps an expired queued job:
    /// a deadline lapse says nothing about the key's compilability, so
    /// it must not leave a negative entry behind.
    pub fn forget(&mut self, fp: u64, id: u64) {
        if let Some(bucket) = self.buckets.get(&fp) {
            if let Some(entry) = bucket.iter().find(|e| e.id == id) {
                self.recency.remove(&entry.last_used);
                self.remove_entry(fp, id);
            }
        }
    }

    /// Drops every entry whose key consumed calibration (the epoch-`Some`
    /// keys) — the hot-reload invalidation. Calibration-independent
    /// artifacts are untouched. Returns the dropped fingerprints (the
    /// service unlinks their disk spills; the count is the stat).
    pub fn invalidate_calibration_dependent(&mut self) -> Vec<u64> {
        let mut dropped = Vec::new();
        self.buckets.retain(|&fp, bucket| {
            bucket.retain(|e| {
                if e.key.calibration_epoch.is_some() {
                    dropped.push(fp);
                    false
                } else {
                    true
                }
            });
            !bucket.is_empty()
        });
        let buckets = &self.buckets;
        self.recency.retain(|_, (fp, id)| {
            buckets
                .get(fp)
                .is_some_and(|b| b.iter().any(|e| e.id == *id))
        });
        self.len -= dropped.len();
        dropped
    }

    fn remove_entry(&mut self, fp: u64, id: u64) {
        if let Some(bucket) = self.buckets.get_mut(&fp) {
            let before = bucket.len();
            bucket.retain(|e| e.id != id);
            self.len -= before - bucket.len();
            if bucket.is_empty() {
                self.buckets.remove(&fp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcompile::CphaseOp;

    fn spec(n: usize, edges: &[(usize, usize)]) -> QaoaSpec {
        let ops: Vec<CphaseOp> = edges
            .iter()
            .map(|&(a, b)| CphaseOp::new(a, b, 0.5))
            .collect();
        QaoaSpec::new(n, vec![(ops, 0.3)], true)
    }

    fn key(edges: &[(usize, usize)]) -> CacheKey {
        CacheKey::new(spec(4, edges), CompileOptions::ic(), 11, 0)
    }

    fn dummy_artifact(marker: usize) -> Arc<CompiledArtifact> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let context = qhw::HardwareContext::new(qhw::Topology::linear(4));
        let spec = spec(4, &[(0, 1), (marker % 2 + 1, marker % 2 + 2)]);
        Arc::new(
            qcompile::try_compile_artifact_with_context(
                &spec,
                &context,
                &CompileOptions::naive(),
                &mut StdRng::seed_from_u64(1),
            )
            .expect("linear chain compiles"),
        )
    }

    fn hit(lookup: Lookup) -> Option<SlotState> {
        match lookup {
            Lookup::Hit { state, .. } => Some(state),
            _ => None,
        }
    }

    fn is_miss(lookup: Lookup) -> bool {
        matches!(lookup, Lookup::Miss)
    }

    /// Two *distinct* keys forced into the same fingerprint bucket must
    /// keep their identities apart: equality verification makes a
    /// collision cost a rebuild, never a wrong artifact.
    #[test]
    fn forced_fingerprint_collision_cannot_cross_serve() {
        let mut cache = ArtifactCache::new(8);
        let ka = key(&[(0, 1), (1, 2)]);
        let kb = key(&[(0, 1), (2, 3)]);
        assert_ne!(ka, kb);
        let forced_fp = 42u64;

        let (ida, _) = cache.reserve(forced_fp, ka.clone(), Arc::default());
        let (idb, _) = cache.reserve(forced_fp, kb.clone(), Arc::default());
        let (a, b) = (dummy_artifact(0), dummy_artifact(1));
        cache.complete(forced_fp, ida, &Ok(Arc::clone(&a)), None, 0);
        cache.complete(forced_fp, idb, &Ok(Arc::clone(&b)), None, 0);

        match hit(cache.lookup(forced_fp, &ka, 0)) {
            Some(SlotState::Ready(got)) => assert!(Arc::ptr_eq(&got, &a)),
            other => panic!("expected ka's artifact, got {other:?}"),
        }
        match hit(cache.lookup(forced_fp, &kb, 0)) {
            Some(SlotState::Ready(got)) => assert!(Arc::ptr_eq(&got, &b)),
            other => panic!("expected kb's artifact, got {other:?}"),
        }
        // A third distinct key landing in the bucket is a clean miss.
        assert!(is_miss(cache.lookup(forced_fp, &key(&[(1, 2), (2, 3)]), 0)));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut cache = ArtifactCache::new(2);
        let (k1, k2, k3) = (key(&[(0, 1)]), key(&[(1, 2)]), key(&[(2, 3)]));
        cache.reserve(k1.fingerprint(), k1.clone(), Arc::default());
        cache.reserve(k2.fingerprint(), k2.clone(), Arc::default());
        // Touch k1 so k2 becomes the LRU victim.
        assert!(hit(cache.lookup(k1.fingerprint(), &k1, 0)).is_some());
        let (_, evicted) = cache.reserve(k3.fingerprint(), k3.clone(), Arc::default());
        assert_eq!(evicted, vec![k2.fingerprint()], "evicted fps surfaced");
        assert_eq!(cache.len(), 2);
        assert!(is_miss(cache.lookup(k2.fingerprint(), &k2, 0)), "k2 gone");
        assert!(hit(cache.lookup(k1.fingerprint(), &k1, 0)).is_some());
        assert!(hit(cache.lookup(k3.fingerprint(), &k3, 0)).is_some());
    }

    #[test]
    fn completing_an_evicted_reservation_is_a_no_op() {
        let mut cache = ArtifactCache::new(1);
        let (k1, k2) = (key(&[(0, 1)]), key(&[(1, 2)]));
        let (id1, _) = cache.reserve(k1.fingerprint(), k1.clone(), Arc::default());
        let (_, evicted) = cache.reserve(k2.fingerprint(), k2.clone(), Arc::default());
        assert_eq!(evicted.len(), 1);
        // The worker of the evicted reservation reports in late.
        cache.complete(k1.fingerprint(), id1, &Ok(dummy_artifact(0)), None, 0);
        assert!(is_miss(cache.lookup(k1.fingerprint(), &k1, 0)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidation_touches_only_calibration_consumers() {
        let mut cache = ArtifactCache::new(8);
        let vic = CacheKey::new(spec(4, &[(0, 1)]), CompileOptions::vic(), 11, 3);
        let ic = CacheKey::new(spec(4, &[(0, 1)]), CompileOptions::ic(), 11, 3);
        assert!(vic.calibration_epoch.is_some());
        assert!(ic.calibration_epoch.is_none());
        cache.reserve(vic.fingerprint(), vic.clone(), Arc::default());
        cache.reserve(ic.fingerprint(), ic.clone(), Arc::default());
        assert_eq!(
            cache.invalidate_calibration_dependent(),
            vec![vic.fingerprint()]
        );
        assert!(is_miss(cache.lookup(vic.fingerprint(), &vic, 0)));
        assert!(hit(cache.lookup(ic.fingerprint(), &ic, 0)).is_some());
        // Recency bookkeeping stays consistent: filling back up evicts
        // cleanly rather than panicking on stale locators.
        for i in 0..20 {
            let k = key(&[(0, 1), (1, 2), (2, 3), (i % 3, 3 - i % 3)]);
            cache.reserve(k.fingerprint(), k, Arc::default());
        }
        assert!(cache.len() <= 8);
    }

    /// Satellite regression (PR 9): a negatively cached key must stop
    /// serving its error once the backoff TTL lapses — the entry is
    /// reaped at lookup and the strike history is handed back.
    #[test]
    fn negative_entries_expire_and_surface_their_strikes() {
        let mut cache = ArtifactCache::new(8);
        let k = key(&[(0, 1)]);
        let fp = k.fingerprint();
        let (id, _) = cache.reserve(fp, k.clone(), Arc::default());
        let error = ServeError::Overloaded {
            queued: 0,
            capacity: 0,
        };
        cache.complete(fp, id, &Err(error), Some(10), 2);
        // Live through the deadline tick itself...
        match hit(cache.lookup(fp, &k, 10)) {
            Some(SlotState::Failed { strikes, .. }) => assert_eq!(strikes, 2),
            other => panic!("expected live negative entry, got {other:?}"),
        }
        // ...reaped one tick later, strikes carried out.
        match cache.lookup(fp, &k, 11) {
            Lookup::ExpiredNegative { strikes } => assert_eq!(strikes, 2),
            other => panic!("expected expiry, got {other:?}"),
        }
        assert_eq!(cache.len(), 0);
        assert!(is_miss(cache.lookup(fp, &k, 11)), "expiry reaped it");

        // `expires_at: None` (non-recoverable) never expires.
        let (id, _) = cache.reserve(fp, k.clone(), Arc::default());
        let error = ServeError::Overloaded {
            queued: 1,
            capacity: 1,
        };
        cache.complete(fp, id, &Err(error), None, 1);
        assert!(hit(cache.lookup(fp, &k, u64::MAX)).is_some());
    }

    /// The shed-ladder probe is read-only with respect to failure
    /// state: it must neither serve a failed rung nor reap an expired
    /// negative entry (reaping would lose the strike history the rung's
    /// own next admission carries into its backoff TTL).
    #[test]
    fn probe_servable_skips_failures_and_preserves_expired_strikes() {
        let mut cache = ArtifactCache::new(8);
        let k = key(&[(0, 1)]);
        let fp = k.fingerprint();
        let (id, _) = cache.reserve(fp, k.clone(), Arc::default());
        let error = ServeError::Overloaded {
            queued: 0,
            capacity: 0,
        };
        cache.complete(fp, id, &Err(error), Some(10), 3);

        // Live or expired, a failed entry is never a shed target…
        assert!(cache.probe_servable(fp, &k).is_none(), "live negative");
        assert!(hit(cache.lookup(fp, &k, 10)).is_some());
        // (now 11 > expires_at 10: the negative entry has lapsed)
        assert!(cache.probe_servable(fp, &k).is_none(), "expired negative");

        // …and the probe left the entry in place: the key's own next
        // lookup still reaps it with the full strike count.
        match cache.lookup(fp, &k, 11) {
            Lookup::ExpiredNegative { strikes } => assert_eq!(strikes, 3),
            other => panic!("expected expiry with strikes intact, got {other:?}"),
        }

        // A ready entry probes servable (and a missing key is None).
        let k2 = key(&[(1, 2)]);
        let (id2, _) = cache.reserve(k2.fingerprint(), k2.clone(), Arc::default());
        cache.complete(k2.fingerprint(), id2, &Ok(dummy_artifact(0)), None, 0);
        assert!(matches!(
            cache.probe_servable(k2.fingerprint(), &k2),
            Some(SlotState::Ready(_))
        ));
        assert!(cache.probe_servable(fp, &k).is_none(), "reaped above");
    }

    #[test]
    fn forget_removes_the_reservation_and_its_recency() {
        let mut cache = ArtifactCache::new(2);
        let (k1, k2) = (key(&[(0, 1)]), key(&[(1, 2)]));
        let (id1, _) = cache.reserve(k1.fingerprint(), k1.clone(), Arc::default());
        cache.reserve(k2.fingerprint(), k2.clone(), Arc::default());
        cache.forget(k1.fingerprint(), id1);
        assert_eq!(cache.len(), 1);
        assert!(is_miss(cache.lookup(k1.fingerprint(), &k1, 0)));
        // The recency locator went with it: churning past capacity keeps
        // the books straight instead of panicking on a stale locator.
        for i in 0..10 {
            let k = key(&[(0, 1), (i % 3, 3 - i % 3)]);
            cache.reserve(k.fingerprint(), k, Arc::default());
        }
        assert!(cache.len() <= 2);
        // Forgetting a second time (or an unknown id) is a no-op.
        cache.forget(k1.fingerprint(), id1);
    }

    #[test]
    fn insert_ready_serves_immediately_and_respects_capacity() {
        let mut cache = ArtifactCache::new(1);
        let (k1, k2) = (key(&[(0, 1)]), key(&[(1, 2)]));
        let a = dummy_artifact(0);
        assert!(cache
            .insert_ready(k1.fingerprint(), k1.clone(), Arc::clone(&a))
            .is_empty());
        match hit(cache.lookup(k1.fingerprint(), &k1, 0)) {
            Some(SlotState::Ready(got)) => assert!(Arc::ptr_eq(&got, &a)),
            other => panic!("expected recovered artifact, got {other:?}"),
        }
        let evicted = cache.insert_ready(k2.fingerprint(), k2.clone(), dummy_artifact(1));
        assert_eq!(evicted, vec![k1.fingerprint()]);
        assert_eq!(cache.len(), 1);
    }
}
