//! Content-addressed compiled-artifact cache.
//!
//! Entries are located by a 64-bit structural fingerprint of the full
//! [`CacheKey`], but a fingerprint match alone never serves an artifact:
//! every bucket keeps the complete owned key and verifies **full
//! equality** on hit (the same discipline as
//! [`qhw::HardwareContext::shared`]). A hash collision between distinct
//! specs therefore degrades to an ordinary miss-and-compile — wrong
//! artifacts are impossible by construction, which is what the
//! cache-correctness suite pins down by forcing two distinct keys into
//! one bucket.
//!
//! Recency, eviction and state transitions are all driven by the caller
//! (the service's admission path) under one lock, so the hit/miss/
//! eviction sequence is deterministic for a given request stream.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use qcircuit::Angle;
use qcompile::{
    Compilation, CompileOptions, CompiledArtifact, InitialMapping, QaoaSpec, Resilience,
};

use crate::service::ServeError;

/// Full identity of one cached compile product. Two requests share an
/// artifact iff their keys are equal — structurally equal program, equal
/// options, same topology, and (for calibration-consuming
/// configurations) the same calibration epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheKey {
    /// The program being compiled, compared structurally.
    pub spec: QaoaSpec,
    /// The requested configuration (mapping, compilation mode, packing,
    /// resilience policy — all of it shapes the artifact).
    pub options: CompileOptions,
    /// [`qhw::Topology::fingerprint`] of the service's target.
    pub topology_fp: u64,
    /// `Some(epoch)` iff `options` consume calibration (VIC). Hop-metric
    /// and naive artifacts carry `None` and survive calibration
    /// hot-reloads untouched.
    pub calibration_epoch: Option<u64>,
}

impl CacheKey {
    /// Builds the key for a request against the service's current
    /// topology and calibration epoch. Only
    /// [`Compilation::IncrementalReliability`] reads calibration, so only
    /// it bakes the epoch into its identity.
    pub fn new(spec: QaoaSpec, options: CompileOptions, topology_fp: u64, epoch: u64) -> CacheKey {
        let calibration_epoch =
            matches!(options.compilation, Compilation::IncrementalReliability).then_some(epoch);
        CacheKey {
            spec,
            options,
            topology_fp,
            calibration_epoch,
        }
    }

    /// The 64-bit structural fingerprint locating this key's bucket.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        spec_fingerprint(&self.spec).hash(&mut h);
        hash_options(&self.options, &mut h);
        self.topology_fp.hash(&mut h);
        self.calibration_epoch.hash(&mut h);
        h.finish()
    }
}

/// Structural fingerprint of a [`QaoaSpec`]: qubit count, measurement
/// flag, every level's CPHASE list and mixer angle, every field term,
/// and the parameter table — all angle values hashed bit-exactly via
/// `f64::to_bits`. Specs that compare equal hash equal; the proptest
/// suite checks the converse over generated program pairs.
pub fn spec_fingerprint(spec: &QaoaSpec) -> u64 {
    let mut h = DefaultHasher::new();
    spec.num_qubits().hash(&mut h);
    spec.measure().hash(&mut h);
    spec.levels().len().hash(&mut h);
    for (level, (ops, mixer)) in spec.levels().iter().enumerate() {
        ops.len().hash(&mut h);
        for op in ops {
            op.a.hash(&mut h);
            op.b.hash(&mut h);
            hash_angle(&op.angle, &mut h);
        }
        hash_angle(mixer, &mut h);
        let fields = spec.field_terms(level);
        fields.len().hash(&mut h);
        for (q, angle) in fields {
            q.hash(&mut h);
            hash_angle(angle, &mut h);
        }
    }
    spec.param_table().len().hash(&mut h);
    for (_, name) in spec.param_table().iter() {
        name.hash(&mut h);
    }
    h.finish()
}

fn hash_angle<H: Hasher>(angle: &Angle, h: &mut H) {
    match angle {
        Angle::Const(v) => {
            0u8.hash(h);
            v.to_bits().hash(h);
        }
        Angle::Sym { param, scale } => {
            1u8.hash(h);
            param.0.hash(h);
            scale.to_bits().hash(h);
        }
    }
}

fn hash_options<H: Hasher>(options: &CompileOptions, h: &mut H) {
    let mapping: u8 = match options.mapping {
        InitialMapping::Naive => 0,
        InitialMapping::GreedyV => 1,
        InitialMapping::Dense => 2,
        InitialMapping::Qaim => 3,
    };
    let compilation: u8 = match options.compilation {
        Compilation::RandomOrder => 0,
        Compilation::Ip => 1,
        Compilation::IncrementalHops => 2,
        Compilation::IncrementalReliability => 3,
    };
    mapping.hash(h);
    compilation.hash(h);
    options.packing_limit.hash(h);
    let Resilience {
        fallback,
        pass_budget,
        swap_budget,
        max_retries,
    } = options.resilience;
    fallback.hash(h);
    pass_budget.map(|d| d.as_nanos()).hash(h);
    swap_budget.hash(h);
    max_retries.hash(h);
}

/// `(result, served_order, resolved_at)` of a finished compile.
pub(crate) type Resolution = (Result<Arc<CompiledArtifact>, ServeError>, u64, Instant);

/// The completion slot admission hands to every requester of an
/// in-flight compile. The worker (or an inline drain) fills it exactly
/// once; waiters block on the condvar.
#[derive(Debug, Default)]
pub(crate) struct Completion {
    pub slot: Mutex<Option<Resolution>>,
    pub ready: Condvar,
}

/// What a cache bucket entry currently holds.
#[derive(Debug, Clone)]
pub(crate) enum SlotState {
    /// Reserved at admission; the compile is queued or running. Later
    /// requests for the same key coalesce onto the shared completion.
    Pending(Arc<Completion>),
    /// A finished artifact, served by `Arc` clone.
    Ready(Arc<CompiledArtifact>),
    /// The compile failed; the error is served to later requests too
    /// (negative caching keeps the outcome sequence deterministic and
    /// stops a poisoned key from hammering the workers).
    Failed(ServeError),
}

#[derive(Debug)]
struct Entry {
    /// Unique per reservation: a worker completing an evicted-and-
    /// re-reserved key must not overwrite the newer entry.
    id: u64,
    key: CacheKey,
    state: SlotState,
    /// Admission tick of the last lookup/reserve touching this entry —
    /// the LRU ordinate.
    last_used: u64,
}

/// Capacity-bounded LRU over compiled artifacts. Not internally
/// synchronized: the service wraps it in its admission lock.
#[derive(Debug)]
pub(crate) struct ArtifactCache {
    capacity: usize,
    /// Fingerprint → entries (more than one only on a fingerprint
    /// collision, where equality verification keeps them apart).
    buckets: HashMap<u64, Vec<Entry>>,
    /// `last_used` tick → `(fingerprint, id)`, the eviction order.
    recency: BTreeMap<u64, (u64, u64)>,
    len: usize,
    tick: u64,
    next_id: u64,
}

impl ArtifactCache {
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            capacity: capacity.max(1),
            buckets: HashMap::new(),
            recency: BTreeMap::new(),
            len: 0,
            tick: 0,
            next_id: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Looks up `key` in bucket `fp`, verifying full key equality, and
    /// touches its recency on hit.
    pub fn lookup(&mut self, fp: u64, key: &CacheKey) -> Option<SlotState> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self
            .buckets
            .get_mut(&fp)?
            .iter_mut()
            .find(|e| e.key == *key)?;
        self.recency.remove(&entry.last_used);
        entry.last_used = tick;
        self.recency.insert(tick, (fp, entry.id));
        Some(entry.state.clone())
    }

    /// Reserves a pending entry for `key` in bucket `fp`, evicting the
    /// least-recently-used entries first if at capacity. Returns the
    /// reservation id and how many entries were evicted.
    ///
    /// Pending entries are evictable like any other: their waiters hold
    /// the completion `Arc` directly, so eviction only forgets the cache
    /// slot, it never strands a requester.
    pub fn reserve(&mut self, fp: u64, key: CacheKey, completion: Arc<Completion>) -> (u64, usize) {
        let mut evicted = 0;
        while self.len >= self.capacity {
            let (&tick, &(victim_fp, victim_id)) =
                self.recency.iter().next().expect("len > 0 implies recency");
            self.recency.remove(&tick);
            self.remove_entry(victim_fp, victim_id);
            evicted += 1;
        }
        self.tick += 1;
        let id = self.next_id;
        self.next_id += 1;
        self.buckets.entry(fp).or_default().push(Entry {
            id,
            key,
            state: SlotState::Pending(completion),
            last_used: self.tick,
        });
        self.recency.insert(self.tick, (fp, id));
        self.len += 1;
        (id, evicted)
    }

    /// Flips the reservation `(fp, id)` to its terminal state. A no-op
    /// when the entry was evicted (or invalidated) while the compile ran.
    pub fn complete(
        &mut self,
        fp: u64,
        id: u64,
        result: &Result<Arc<CompiledArtifact>, ServeError>,
    ) {
        if let Some(bucket) = self.buckets.get_mut(&fp) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.id == id) {
                entry.state = match result {
                    Ok(artifact) => SlotState::Ready(Arc::clone(artifact)),
                    Err(error) => SlotState::Failed(error.clone()),
                };
            }
        }
    }

    /// Drops every entry whose key consumed calibration (the epoch-`Some`
    /// keys) — the hot-reload invalidation. Calibration-independent
    /// artifacts are untouched. Returns how many entries were dropped.
    pub fn invalidate_calibration_dependent(&mut self) -> usize {
        let mut dropped = 0;
        self.buckets.retain(|_, bucket| {
            bucket.retain(|e| {
                if e.key.calibration_epoch.is_some() {
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
            !bucket.is_empty()
        });
        let buckets = &self.buckets;
        self.recency.retain(|_, (fp, id)| {
            buckets
                .get(fp)
                .is_some_and(|b| b.iter().any(|e| e.id == *id))
        });
        self.len -= dropped;
        dropped
    }

    fn remove_entry(&mut self, fp: u64, id: u64) {
        if let Some(bucket) = self.buckets.get_mut(&fp) {
            let before = bucket.len();
            bucket.retain(|e| e.id != id);
            self.len -= before - bucket.len();
            if bucket.is_empty() {
                self.buckets.remove(&fp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcompile::CphaseOp;

    fn spec(n: usize, edges: &[(usize, usize)]) -> QaoaSpec {
        let ops: Vec<CphaseOp> = edges
            .iter()
            .map(|&(a, b)| CphaseOp::new(a, b, 0.5))
            .collect();
        QaoaSpec::new(n, vec![(ops, 0.3)], true)
    }

    fn key(edges: &[(usize, usize)]) -> CacheKey {
        CacheKey::new(spec(4, edges), CompileOptions::ic(), 11, 0)
    }

    fn dummy_artifact(marker: usize) -> Arc<CompiledArtifact> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let context = qhw::HardwareContext::new(qhw::Topology::linear(4));
        let spec = spec(4, &[(0, 1), (marker % 2 + 1, marker % 2 + 2)]);
        Arc::new(
            qcompile::try_compile_artifact_with_context(
                &spec,
                &context,
                &CompileOptions::naive(),
                &mut StdRng::seed_from_u64(1),
            )
            .expect("linear chain compiles"),
        )
    }

    /// Two *distinct* keys forced into the same fingerprint bucket must
    /// keep their identities apart: equality verification makes a
    /// collision cost a rebuild, never a wrong artifact.
    #[test]
    fn forced_fingerprint_collision_cannot_cross_serve() {
        let mut cache = ArtifactCache::new(8);
        let ka = key(&[(0, 1), (1, 2)]);
        let kb = key(&[(0, 1), (2, 3)]);
        assert_ne!(ka, kb);
        let forced_fp = 42u64;

        let (ida, _) = cache.reserve(forced_fp, ka.clone(), Arc::default());
        let (idb, _) = cache.reserve(forced_fp, kb.clone(), Arc::default());
        let (a, b) = (dummy_artifact(0), dummy_artifact(1));
        cache.complete(forced_fp, ida, &Ok(Arc::clone(&a)));
        cache.complete(forced_fp, idb, &Ok(Arc::clone(&b)));

        match cache.lookup(forced_fp, &ka) {
            Some(SlotState::Ready(got)) => assert!(Arc::ptr_eq(&got, &a)),
            other => panic!("expected ka's artifact, got {other:?}"),
        }
        match cache.lookup(forced_fp, &kb) {
            Some(SlotState::Ready(got)) => assert!(Arc::ptr_eq(&got, &b)),
            other => panic!("expected kb's artifact, got {other:?}"),
        }
        // A third distinct key landing in the bucket is a clean miss.
        assert!(cache.lookup(forced_fp, &key(&[(1, 2), (2, 3)])).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut cache = ArtifactCache::new(2);
        let (k1, k2, k3) = (key(&[(0, 1)]), key(&[(1, 2)]), key(&[(2, 3)]));
        cache.reserve(k1.fingerprint(), k1.clone(), Arc::default());
        cache.reserve(k2.fingerprint(), k2.clone(), Arc::default());
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.lookup(k1.fingerprint(), &k1).is_some());
        let (_, evicted) = cache.reserve(k3.fingerprint(), k3.clone(), Arc::default());
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(k2.fingerprint(), &k2).is_none(), "k2 evicted");
        assert!(cache.lookup(k1.fingerprint(), &k1).is_some());
        assert!(cache.lookup(k3.fingerprint(), &k3).is_some());
    }

    #[test]
    fn completing_an_evicted_reservation_is_a_no_op() {
        let mut cache = ArtifactCache::new(1);
        let (k1, k2) = (key(&[(0, 1)]), key(&[(1, 2)]));
        let (id1, _) = cache.reserve(k1.fingerprint(), k1.clone(), Arc::default());
        let (_, evicted) = cache.reserve(k2.fingerprint(), k2.clone(), Arc::default());
        assert_eq!(evicted, 1);
        // The worker of the evicted reservation reports in late.
        cache.complete(k1.fingerprint(), id1, &Ok(dummy_artifact(0)));
        assert!(cache.lookup(k1.fingerprint(), &k1).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidation_touches_only_calibration_consumers() {
        let mut cache = ArtifactCache::new(8);
        let vic = CacheKey::new(spec(4, &[(0, 1)]), CompileOptions::vic(), 11, 3);
        let ic = CacheKey::new(spec(4, &[(0, 1)]), CompileOptions::ic(), 11, 3);
        assert!(vic.calibration_epoch.is_some());
        assert!(ic.calibration_epoch.is_none());
        cache.reserve(vic.fingerprint(), vic.clone(), Arc::default());
        cache.reserve(ic.fingerprint(), ic.clone(), Arc::default());
        assert_eq!(cache.invalidate_calibration_dependent(), 1);
        assert!(cache.lookup(vic.fingerprint(), &vic).is_none());
        assert!(cache.lookup(ic.fingerprint(), &ic).is_some());
        // Recency bookkeeping stays consistent: filling back up evicts
        // cleanly rather than panicking on stale locators.
        for i in 0..20 {
            let k = key(&[(0, 1), (1, 2), (2, 3), (i % 3, 3 - i % 3)]);
            cache.reserve(k.fingerprint(), k, Arc::default());
        }
        assert!(cache.len() <= 8);
    }
}
