//! Deadline bookkeeping, the negative-cache backoff state machine, and
//! the poison-pill quarantine ledger.
//!
//! All three run on the service's **logical clock** — a `u64` tick count
//! advanced once per admission plus explicit [`crate::Service::advance`]
//! steps — never wall time. That keeps every expiry, every backoff
//! window and every quarantine transition a pure function of the
//! request stream, which is what lets the chaos campaign gate these
//! mechanisms byte-exactly in CI.

use qcompile::CancelToken;

/// Seeded, jittered exponential-backoff policy for negative cache
/// entries (the TTL a failed key serves its error for before the
/// service retries the compile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// TTL of a key's first failure, in logical ticks (min 1).
    pub base_ticks: u64,
    /// Ceiling the doubling saturates at.
    pub max_ticks: u64,
    /// Seed for the deterministic jitter (≤ 25% of the TTL) that keeps
    /// a thundering herd of expired keys from retrying in lockstep.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_ticks: 16,
            max_ticks: 4096,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl BackoffConfig {
    /// The TTL for a key on its `strikes`-th consecutive failure
    /// (1-based): `base << (strikes-1)` capped at `max_ticks`, plus a
    /// seeded jitter in `[0, ttl/4]` keyed by `(seed, key, strikes)`.
    pub fn ttl(&self, key_fp: u64, strikes: u32) -> u64 {
        let base = self.base_ticks.max(1);
        let shift = u64::from(strikes.saturating_sub(1)).min(52);
        let ttl = base
            .checked_shl(shift as u32)
            .unwrap_or(u64::MAX)
            .min(self.max_ticks.max(base));
        let jitter_span = ttl / 4 + 1;
        ttl + splitmix64(self.seed ^ key_fp ^ u64::from(strikes)) % jitter_span
    }
}

/// SplitMix64 — a tiny seeded mixer; good enough for jitter and cheap
/// enough for the admission path.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Why a spec fingerprint was quarantined. The variant names the
/// category of the strike that crossed the threshold; `strikes` is the
/// **combined** panic + timeout count, because that combined count is
/// what trips quarantine — reporting only one category would
/// under-count a mixed history in telemetry and error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The final strike was a worker panic.
    Panicked {
        /// Total strikes (panics + timeouts) at quarantine.
        strikes: u32,
    },
    /// The final strike was a blown deadline (cancelled in flight).
    TimedOut {
        /// Total strikes (panics + timeouts) at quarantine.
        strikes: u32,
    },
}

impl QuarantineReason {
    /// A short stable label for telemetry and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            QuarantineReason::Panicked { .. } => "panicked",
            QuarantineReason::TimedOut { .. } => "timed-out",
        }
    }
}

/// Per-spec strike counts feeding the quarantine ledger.
#[derive(Debug, Clone, Copy, Default)]
struct Strikes {
    panics: u32,
    timeouts: u32,
}

/// The poison-pill ledger: spec fingerprints whose compiles panic or
/// time out repeatedly are quarantined so coalesced and future callers
/// fail fast instead of re-detonating a worker. Keyed by
/// [`crate::spec_fingerprint`] (the *program*, not the full cache key):
/// a spec that crashes the compiler crashes it under every option set,
/// so one quarantine covers all of them.
#[derive(Debug, Default)]
pub(crate) struct PoisonLedger {
    threshold: u32,
    strikes: std::collections::HashMap<u64, Strikes>,
    quarantined: std::collections::HashMap<u64, QuarantineReason>,
}

impl PoisonLedger {
    /// A ledger quarantining after `threshold` strikes (0 disables it).
    pub fn new(threshold: u32) -> PoisonLedger {
        PoisonLedger {
            threshold,
            ..PoisonLedger::default()
        }
    }

    /// The quarantine verdict for `spec_fp`, if any.
    pub fn quarantined(&self, spec_fp: u64) -> Option<QuarantineReason> {
        self.quarantined.get(&spec_fp).copied()
    }

    /// Number of currently quarantined specs.
    pub fn len(&self) -> usize {
        self.quarantined.len()
    }

    /// Records one panic strike; returns the reason iff this strike
    /// quarantined the spec.
    pub fn strike_panic(&mut self, spec_fp: u64) -> Option<QuarantineReason> {
        if self.threshold == 0 || self.quarantined.contains_key(&spec_fp) {
            return None;
        }
        let s = self.strikes.entry(spec_fp).or_default();
        s.panics += 1;
        if s.panics + s.timeouts >= self.threshold {
            let reason = QuarantineReason::Panicked {
                strikes: s.panics + s.timeouts,
            };
            self.quarantined.insert(spec_fp, reason);
            Some(reason)
        } else {
            None
        }
    }

    /// Records one timeout (in-flight cancellation) strike; returns the
    /// reason iff this strike quarantined the spec.
    pub fn strike_timeout(&mut self, spec_fp: u64) -> Option<QuarantineReason> {
        if self.threshold == 0 || self.quarantined.contains_key(&spec_fp) {
            return None;
        }
        let s = self.strikes.entry(spec_fp).or_default();
        s.timeouts += 1;
        if s.panics + s.timeouts >= self.threshold {
            let reason = QuarantineReason::TimedOut {
                strikes: s.panics + s.timeouts,
            };
            self.quarantined.insert(spec_fp, reason);
            Some(reason)
        } else {
            None
        }
    }

    /// Clears the strikes and quarantine of `spec_fp` (the operator
    /// release valve). Returns whether it was quarantined.
    pub fn release(&mut self, spec_fp: u64) -> bool {
        self.strikes.remove(&spec_fp);
        self.quarantined.remove(&spec_fp).is_some()
    }
}

/// One deadline-bearing compile currently on a worker: tripping its
/// token at expiry makes the pipeline abort at its next pass boundary.
#[derive(Debug)]
struct InflightEntry {
    job_id: u64,
    deadline: u64,
    token: CancelToken,
}

/// Registry of in-flight deadline-bearing compiles, swept on every
/// clock movement under the admission lock.
#[derive(Debug, Default)]
pub(crate) struct InflightDeadlines {
    entries: Vec<InflightEntry>,
}

impl InflightDeadlines {
    /// Registers a dispatched job. Called when the job leaves its queue.
    pub fn register(&mut self, job_id: u64, deadline: u64, token: CancelToken) {
        self.entries.push(InflightEntry {
            job_id,
            deadline,
            token,
        });
    }

    /// Removes a completed job's registration.
    pub fn complete(&mut self, job_id: u64) {
        self.entries.retain(|e| e.job_id != job_id);
    }

    /// Trips the token of every entry whose deadline has passed at
    /// `now`, removing it. Returns how many were cancelled.
    pub fn sweep(&mut self, now: u64) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|e| {
            if now > e.deadline {
                e.token.cancel();
                false
            } else {
                true
            }
        });
        (before - self.entries.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_saturates_and_jitters_within_bounds() {
        let cfg = BackoffConfig {
            base_ticks: 8,
            max_ticks: 64,
            seed: 3,
        };
        for strikes in 1..12u32 {
            let nominal = (8u64 << u64::from(strikes - 1).min(52)).min(64);
            let ttl = cfg.ttl(42, strikes);
            assert!(ttl >= nominal, "jitter never shortens the TTL");
            assert!(ttl <= nominal + nominal / 4 + 1, "jitter ≤ 25% + 1");
        }
        // Deterministic per (seed, key, strikes); sensitive to each.
        assert_eq!(cfg.ttl(42, 3), cfg.ttl(42, 3));
        let other_seed = BackoffConfig { seed: 4, ..cfg };
        let distinct = (1..20u32).any(|s| cfg.ttl(42, s) != other_seed.ttl(42, s));
        assert!(distinct, "the jitter actually consumes the seed");
    }

    #[test]
    fn ledger_quarantines_at_threshold_and_releases() {
        let mut ledger = PoisonLedger::new(3);
        assert_eq!(ledger.strike_panic(7), None);
        assert_eq!(ledger.strike_timeout(7), None);
        let verdict = ledger.strike_panic(7);
        // Quarantine trips on the combined count, so the reason reports
        // it too: 2 panics + 1 timeout, categorized by the final strike.
        assert_eq!(verdict, Some(QuarantineReason::Panicked { strikes: 3 }));
        assert_eq!(ledger.quarantined(7), verdict);
        assert_eq!(ledger.len(), 1);
        // Further strikes on a quarantined spec are no-ops.
        assert_eq!(ledger.strike_panic(7), None);
        // Other specs are independent.
        assert_eq!(ledger.quarantined(8), None);
        assert!(ledger.release(7));
        assert_eq!(ledger.quarantined(7), None);
        assert!(!ledger.release(7), "already released");
        // Strikes were cleared too: the count restarts.
        assert_eq!(ledger.strike_panic(7), None);
        assert_eq!(ledger.strike_panic(7), None);
    }

    #[test]
    fn zero_threshold_never_quarantines() {
        let mut ledger = PoisonLedger::new(0);
        for _ in 0..100 {
            assert_eq!(ledger.strike_panic(1), None);
        }
        assert_eq!(ledger.quarantined(1), None);
    }

    #[test]
    fn sweep_trips_only_expired_tokens() {
        let mut inflight = InflightDeadlines::default();
        let (a, b) = (CancelToken::new(), CancelToken::new());
        inflight.register(1, 10, a.clone());
        inflight.register(2, 20, b.clone());
        assert_eq!(inflight.sweep(10), 0, "deadline tick itself still lives");
        assert_eq!(inflight.sweep(11), 1);
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
        // Completion removes the registration before it can fire.
        inflight.complete(2);
        assert_eq!(inflight.sweep(100), 0);
        assert!(!b.is_cancelled());
    }
}
