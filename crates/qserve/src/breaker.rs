//! Per-tenant admission control: a token-bucket rate limiter and a
//! circuit breaker, layered above the round-robin tenant FIFOs.
//!
//! Both run on the service's **logical clock** (one tick per admission,
//! plus explicit [`crate::Service::advance`] steps), never wall time, so
//! every open/close/refill transition is a pure function of the request
//! stream — the property the chaos campaign's byte-identical manifests
//! rest on. Both are consulted and updated only under the service's
//! admission lock.
//!
//! The breaker watches *compile completions* (failures trip it, a
//! success closes it); the bucket charges *admitted compiles* (cache
//! hits are free — serving an `Arc` clone costs nothing worth
//! protecting). An abusive tenant therefore trips open or runs dry
//! without touching other tenants' state.

/// Token-bucket policy: `capacity` tokens, one token back per
/// `refill_ticks` logical ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketConfig {
    /// Maximum (and initial) token count.
    pub capacity: u64,
    /// Logical ticks per regained token (min 1).
    pub refill_ticks: u64,
}

impl Default for BucketConfig {
    fn default() -> Self {
        BucketConfig {
            capacity: 64,
            refill_ticks: 1,
        }
    }
}

/// Circuit-breaker policy. `failure_threshold: 0` disables the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive compile failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Logical ticks the breaker stays open before admitting one
    /// half-open probe.
    pub cooldown_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 8,
            cooldown_ticks: 64,
        }
    }
}

/// Lazily refilled token bucket on the logical clock.
#[derive(Debug, Clone)]
pub(crate) struct TokenBucket {
    config: BucketConfig,
    tokens: u64,
    last_refill: u64,
}

impl TokenBucket {
    pub fn new(config: BucketConfig) -> TokenBucket {
        TokenBucket {
            config,
            tokens: config.capacity,
            last_refill: 0,
        }
    }

    fn refill(&mut self, now: u64) {
        let per = self.config.refill_ticks.max(1);
        let elapsed = now.saturating_sub(self.last_refill);
        let earned = elapsed / per;
        if earned > 0 {
            self.tokens = (self.tokens + earned).min(self.config.capacity);
            self.last_refill += earned * per;
        }
    }

    /// Takes one token at `now` if available.
    pub fn try_take(&mut self, now: u64) -> bool {
        self.refill(now);
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Tokens that would be available at `now`, without charging or
    /// mutating the bucket — the ops-plane `bucket_level` gauge.
    pub fn level(&self, now: u64) -> u64 {
        let per = self.config.refill_ticks.max(1);
        let earned = now.saturating_sub(self.last_refill) / per;
        (self.tokens + earned).min(self.config.capacity)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Normal service; counts consecutive failures.
    Closed { failures: u32 },
    /// Tripped; misses fail fast until the cooldown elapses.
    Open { until: u64 },
    /// Cooldown over; exactly one probe compile is in flight.
    HalfOpen,
}

/// Closed → Open → HalfOpen circuit breaker on the logical clock.
#[derive(Debug, Clone)]
pub(crate) struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
}

/// What the breaker said about admitting one compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerDecision {
    /// Admit normally.
    Admit,
    /// Admit as the half-open probe (its completion decides the state).
    Probe,
    /// Fail fast; the breaker reopens in `retry_in` ticks.
    Reject {
        /// Ticks until the next half-open probe is allowed.
        retry_in: u64,
    },
}

/// What a completion did to the breaker state — the ops journal
/// distinguishes trips from probe-driven closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerTransition {
    /// No journal-worthy transition.
    None,
    /// This completion tripped the breaker open.
    Tripped,
    /// A successful half-open probe closed the breaker.
    Closed,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed { failures: 0 },
        }
    }

    /// Consults the breaker for one compile admission at `now`.
    pub fn admit(&mut self, now: u64) -> BreakerDecision {
        if self.config.failure_threshold == 0 {
            return BreakerDecision::Admit;
        }
        match self.state {
            BreakerState::Closed { .. } => BreakerDecision::Admit,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen;
                BreakerDecision::Probe
            }
            BreakerState::Open { until } => BreakerDecision::Reject {
                retry_in: until - now,
            },
            // A probe is already in flight; its completion decides.
            BreakerState::HalfOpen => BreakerDecision::Reject { retry_in: 0 },
        }
    }

    /// Returns an unused half-open probe slot. The admission that
    /// consumed the probe never dispatched a compile (a later gate
    /// rejected it, served it from a shed rung, or the queued job was
    /// deadline-reaped before a worker took it), so no completion will
    /// ever [`CircuitBreaker::record`] the probe's verdict. Without
    /// this, `HalfOpen` — which only exits via `record` — would reject
    /// the tenant's misses forever. Re-opening with `until: now` makes
    /// the very next admission eligible to probe again.
    pub fn abort_probe(&mut self, now: u64) {
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Open { until: now };
        }
    }

    /// Records one compile completion for this tenant at `now`,
    /// reporting the state transition it caused (if any).
    pub fn record(&mut self, now: u64, success: bool) -> BreakerTransition {
        if self.config.failure_threshold == 0 {
            return BreakerTransition::None;
        }
        match (&mut self.state, success) {
            (BreakerState::Closed { .. }, true) => {
                self.state = BreakerState::Closed { failures: 0 };
                BreakerTransition::None
            }
            (BreakerState::Closed { failures }, false) => {
                *failures += 1;
                if *failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open {
                        until: now + self.config.cooldown_ticks,
                    };
                    BreakerTransition::Tripped
                } else {
                    BreakerTransition::None
                }
            }
            (BreakerState::HalfOpen, true) => {
                self.state = BreakerState::Closed { failures: 0 };
                BreakerTransition::Closed
            }
            (BreakerState::HalfOpen, false) => {
                self.state = BreakerState::Open {
                    until: now + self.config.cooldown_ticks,
                };
                BreakerTransition::Tripped
            }
            // A straggler completing while the breaker is open (e.g. a
            // pre-trip job finishing late) does not move the state.
            (BreakerState::Open { .. }, _) => BreakerTransition::None,
        }
    }

    /// Whether the breaker is currently open (for stats snapshots).
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// State encoded for the ops-plane gauge: 0 closed, 1 half-open,
    /// 2 open.
    pub fn state_code(&self) -> u64 {
        match self.state {
            BreakerState::Closed { .. } => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open { .. } => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_charges_and_refills_on_the_logical_clock() {
        let mut bucket = TokenBucket::new(BucketConfig {
            capacity: 2,
            refill_ticks: 10,
        });
        assert_eq!(bucket.level(0), 2);
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0));
        assert_eq!(bucket.level(5), 0, "level previews without charging");
        assert!(!bucket.try_take(5), "empty until a refill interval passes");
        assert_eq!(bucket.level(10), 1);
        assert!(bucket.try_take(10), "one token back after refill_ticks");
        assert!(!bucket.try_take(19));
        // Long idle refills to capacity, never beyond.
        assert!(bucket.try_take(1000));
        assert!(bucket.try_take(1000));
        assert!(!bucket.try_take(1000));
    }

    #[test]
    fn breaker_trips_probes_and_recloses() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 10,
        });
        assert_eq!(breaker.admit(1), BreakerDecision::Admit);
        assert_eq!(breaker.state_code(), 0);
        assert_eq!(breaker.record(1, false), BreakerTransition::None);
        assert_eq!(
            breaker.record(2, false),
            BreakerTransition::Tripped,
            "second failure trips it"
        );
        assert!(breaker.is_open());
        assert_eq!(breaker.state_code(), 2);
        assert_eq!(breaker.admit(3), BreakerDecision::Reject { retry_in: 9 });
        // Cooldown over: exactly one probe; concurrent misses still fail.
        assert_eq!(breaker.admit(12), BreakerDecision::Probe);
        assert_eq!(breaker.state_code(), 1);
        assert_eq!(breaker.admit(12), BreakerDecision::Reject { retry_in: 0 });
        // Failed probe reopens; successful probe closes.
        assert_eq!(breaker.record(12, false), BreakerTransition::Tripped);
        assert!(breaker.is_open());
        assert_eq!(breaker.admit(22), BreakerDecision::Probe);
        assert_eq!(breaker.record(22, true), BreakerTransition::Closed);
        assert!(!breaker.is_open());
        assert_eq!(breaker.state_code(), 0);
        assert_eq!(breaker.admit(23), BreakerDecision::Admit);
    }

    #[test]
    fn aborted_probe_returns_the_slot_instead_of_wedging_half_open() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 10,
        });
        assert_eq!(breaker.record(1, false), BreakerTransition::Tripped);
        assert_eq!(breaker.admit(11), BreakerDecision::Probe);
        // The probe's request was rejected by a later gate: no compile
        // will ever record a verdict, so the slot must come back.
        breaker.abort_probe(11);
        assert_eq!(breaker.admit(11), BreakerDecision::Probe);
        // A dispatched probe's completion still decides normally.
        assert_eq!(breaker.record(12, true), BreakerTransition::Closed);
        assert_eq!(breaker.admit(13), BreakerDecision::Admit);
        // Aborting when no probe is outstanding is a no-op.
        breaker.abort_probe(13);
        assert_eq!(breaker.admit(13), BreakerDecision::Admit);
    }

    #[test]
    fn successes_reset_the_consecutive_failure_count() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 5,
        });
        for t in 0..20 {
            assert_eq!(
                breaker.record(t, t % 2 == 0),
                BreakerTransition::None,
                "alternation never trips"
            );
        }
        assert!(!breaker.is_open());
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0,
            cooldown_ticks: 5,
        });
        for t in 0..100 {
            assert_eq!(breaker.record(t, false), BreakerTransition::None);
            assert_eq!(breaker.admit(t), BreakerDecision::Admit);
        }
    }

    #[test]
    fn late_straggler_completion_cannot_close_an_open_breaker() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 100,
        });
        assert_eq!(breaker.record(1, false), BreakerTransition::Tripped);
        assert!(breaker.is_open());
        assert_eq!(
            breaker.record(2, true),
            BreakerTransition::None,
            "straggler success is ignored"
        );
        assert!(breaker.is_open());
    }
}
