//! `qserve` — the compile stack's front door: a long-running,
//! in-process compile service.
//!
//! The rest of the workspace answers "how do we compile one QAOA program
//! well" (mapping, ordering, routing, the degradation ladder, parametric
//! artifacts). This crate answers "how do we *serve* compilations": a
//! [`Service`] owns a pool of worker threads behind per-tenant job
//! queues, a content-addressed [`Arc`](std::sync::Arc)-shared artifact
//! cache keyed by `(problem structure, CompileOptions, topology
//! fingerprint, calibration epoch)`, calibration hot-reload that bumps
//! the epoch and invalidates only the entries that actually consumed
//! calibration, and admission control that sheds overload down the
//! [`CompileOptions::ladder`](qcompile::CompileOptions::ladder) before
//! rejecting.
//!
//! # Determinism
//!
//! Every cache decision — hit/miss classification, LRU recency, eviction
//! victims, shed and reject outcomes — is made at **admission time**,
//! serialized under one lock in request-arrival order. Worker threads
//! only *fill in* completion slots that admission already reserved. For
//! a single-threaded submitter the full hit/miss/eviction sequence is
//! therefore a pure function of the request stream, independent of how
//! many workers race the compiles — which is what lets the load
//! generator's run manifest gate byte-identical in CI across 1, 2 or 8
//! workers.
//!
//! # Example
//!
//! ```
//! use qcompile::{CompileOptions, CphaseOp, QaoaSpec};
//! use qhw::Topology;
//! use qserve::{Outcome, Request, Service, ServiceConfig};
//!
//! let service = Service::new(Topology::grid(3, 3), None, ServiceConfig::default());
//! let ops = vec![
//!     CphaseOp::new(0, 1, 0.5),
//!     CphaseOp::new(1, 2, 0.5),
//!     CphaseOp::new(2, 3, 0.5),
//! ];
//! let spec = QaoaSpec::new(4, vec![(ops, 0.3)], true);
//! let request = Request::new(0, spec, CompileOptions::ic(), 7);
//! let first = service.call(request.clone());
//! assert_eq!(first.outcome, Outcome::Miss);
//! let second = service.call(request);
//! assert_eq!(second.outcome, Outcome::Hit);
//! // Hits share the artifact, they do not recompile it.
//! assert!(std::sync::Arc::ptr_eq(
//!     first.result.as_ref().unwrap(),
//!     second.result.as_ref().unwrap(),
//! ));
//! ```

mod breaker;
mod cache;
mod deadline;
pub mod ops;
mod service;
mod spill;

pub use breaker::{BreakerConfig, BucketConfig};
pub use cache::{spec_fingerprint, CacheKey};
pub use deadline::{BackoffConfig, QuarantineReason};
pub use ops::{
    lifecycle_manifest, render_journal, render_lifecycle, JournalEvent, OpsConfig, RequestTrace,
    Stage,
};
pub use service::{
    Outcome, Request, Response, ServeError, Service, ServiceConfig, ServiceStats, Ticket,
};
