//! The fault-tolerance plane, end to end: deadlines and cancellation,
//! backoff-TTL'd negative caching, poison-pill quarantine, per-tenant
//! circuit breaking and throttling, and crash-safe warm starts from the
//! spill directory. Every test runs with `workers: 0` and drives the
//! queue through `drain_one` on the logical clock, so every expiry and
//! state transition is under test control and nothing here can flake on
//! scheduling.

use std::sync::Arc;

use qcompile::{CompileError, CompileOptions, CphaseOp, QaoaSpec};
use qhw::fault::{FaultInjector, ServiceFaultPlane, SpillCorruption};
use qhw::{Calibration, Topology};
use qserve::{
    spec_fingerprint, BackoffConfig, BreakerConfig, BucketConfig, Outcome, QuarantineReason,
    Request, ServeError, Service, ServiceConfig,
};

fn line_spec(n: usize, shift: usize) -> QaoaSpec {
    let ops = (0..n - 1)
        .map(|i| CphaseOp::new(i, i + 1, 0.4 + shift as f64 * 0.01))
        .collect();
    QaoaSpec::new(n, vec![(ops, 0.3)], true)
}

fn inline_config() -> ServiceConfig {
    ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    }
}

/// A fault plane whose first `jobs` compiles all detonate `fault`-style.
fn plane(
    jobs: usize,
    panic_rate: f64,
    stall_rate: f64,
    stall_ticks: u64,
) -> Arc<ServiceFaultPlane> {
    Arc::new(ServiceFaultPlane::plan(
        9,
        jobs,
        panic_rate,
        stall_rate,
        stall_ticks,
    ))
}

#[test]
fn deadlines_reap_queued_jobs_and_forget_reservations() {
    let service = Service::new(Topology::grid(2, 3), None, inline_config());
    let request = Request::new(0, line_spec(6, 0), CompileOptions::ic(), 3);
    let ticket = service.submit(request.clone().with_deadline(2));
    assert_eq!(ticket.outcome(), Outcome::Miss);

    // Nothing dequeues; the clock leaves the job behind.
    service.advance(5);
    let response = ticket.wait();
    assert!(matches!(
        response.result.unwrap_err(),
        ServeError::DeadlineExceeded { deadline, now } if now > deadline
    ));
    assert_eq!(service.stats().deadline_reaped, 1);

    // A deadline lapse is not a verdict on the key: the reservation was
    // forgotten, not negatively cached, so the key re-admits cleanly.
    let retry = service.submit(request);
    assert_eq!(retry.outcome(), Outcome::Miss);
    assert!(service.drain_one());
    assert!(retry.wait().result.is_ok());
}

#[test]
fn stalled_compiles_cancel_at_the_deadline_in_flight() {
    // The first compile stalls 100 ticks — far past the 4-tick deadline
    // — so the cooperative token cancels it at a pass boundary.
    let config = ServiceConfig {
        fault_plane: Some(plane(1, 0.0, 1.0, 100)),
        ..inline_config()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let request = Request::new(0, line_spec(6, 0), CompileOptions::ic(), 3);
    let ticket = service.submit(request.clone().with_deadline(4));
    assert!(service.drain_one());
    assert!(matches!(
        ticket.wait().result.unwrap_err(),
        ServeError::DeadlineExceeded { .. }
    ));

    // The fault plane is exhausted: the retry compiles cleanly after
    // the timeout's backoff TTL lapses.
    service.advance(64);
    let retry = service.submit(request);
    assert_eq!(retry.outcome(), Outcome::Miss);
    assert!(service.drain_one());
    assert!(retry.wait().result.is_ok());
}

#[test]
fn panicked_compiles_are_contained_attributed_and_retried_after_backoff() {
    let config = ServiceConfig {
        fault_plane: Some(plane(1, 1.0, 0.0, 0)),
        ..inline_config()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let spec = line_spec(6, 0);
    let request = Request::new(3, spec.clone(), CompileOptions::ic(), 3);

    let ticket = service.submit(request.clone());
    assert!(service.drain_one());
    let error = ticket.wait().result.unwrap_err();
    // The containment error names the offender: spec fingerprint and
    // tenant, so one log line identifies what to quarantine or bill.
    match &error {
        ServeError::Compile(CompileError::Internal(message)) => {
            assert!(message.contains(&format!("{:#018x}", spec_fingerprint(&spec))));
            assert!(message.contains("tenant 3"));
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }

    // Within the backoff TTL the failure serves from cache.
    let cached = service.submit(request.clone());
    assert_eq!(cached.outcome(), Outcome::Hit);
    assert_eq!(cached.wait().result.unwrap_err(), error);

    // Past the TTL the entry expires into a retry, which succeeds (the
    // fault plane scheduled only one panic).
    service.advance(64);
    let retry = service.submit(request);
    assert_eq!(retry.outcome(), Outcome::Miss);
    assert!(service.drain_one());
    assert!(retry.wait().result.is_ok());
    let stats = service.stats();
    assert_eq!(stats.negative_expired, 1);
    assert_eq!(stats.quarantined_specs, 0, "one strike is not quarantine");
}

#[test]
fn repeated_panics_quarantine_the_spec_until_released() {
    let config = ServiceConfig {
        quarantine_threshold: 2,
        backoff: BackoffConfig {
            base_ticks: 1,
            max_ticks: 4,
            ..BackoffConfig::default()
        },
        fault_plane: Some(plane(16, 1.0, 0.0, 0)),
        ..inline_config()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let spec = line_spec(6, 0);
    let spec_fp = spec_fingerprint(&spec);
    let request = Request::new(0, spec.clone(), CompileOptions::ic(), 3);

    for strike in 1..=2u32 {
        let ticket = service.submit(request.clone());
        assert_eq!(ticket.outcome(), Outcome::Miss, "strike {strike} admitted");
        assert!(service.drain_one());
        assert!(ticket.wait().result.is_err());
        service.advance(8); // let the backoff TTL lapse
    }

    // Two strikes hit the threshold: the program fails fast now —
    // under *every* option set, because quarantine keys on the spec.
    let rejected = service.call(request.clone());
    assert_eq!(rejected.outcome, Outcome::Quarantined);
    assert_eq!(
        rejected.result.unwrap_err(),
        ServeError::Quarantined {
            spec_fp,
            reason: QuarantineReason::Panicked { strikes: 2 },
        }
    );
    let other_options = service.call(Request::new(0, spec, CompileOptions::qaim_only(), 3));
    assert_eq!(other_options.outcome, Outcome::Quarantined);
    let stats = service.stats();
    assert_eq!(stats.quarantine_rejects, 2);
    assert_eq!(stats.quarantined_specs, 1);

    // Release lifts it: the next request is admitted again.
    assert!(service.release_quarantine(spec_fp));
    assert!(!service.release_quarantine(spec_fp), "already released");
    let retry = service.submit(request);
    assert_eq!(retry.outcome(), Outcome::Miss);
}

#[test]
fn breaker_trips_on_one_tenant_and_spares_the_others() {
    let config = ServiceConfig {
        quarantine_threshold: 0, // isolate the breaker
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 8,
        },
        fault_plane: Some(plane(16, 1.0, 0.0, 0)),
        ..inline_config()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let request = |shift: usize, tenant: u32| {
        Request::new(tenant, line_spec(6, shift), CompileOptions::ic(), 3)
    };

    // Two consecutive failures trip tenant 0's breaker.
    for shift in 0..2 {
        let ticket = service.submit(request(shift, 0));
        assert!(service.drain_one());
        assert!(ticket.wait().result.is_err());
    }
    let rejected = service.call(request(2, 0));
    assert_eq!(rejected.outcome, Outcome::BreakerOpen);
    assert!(matches!(
        rejected.result.unwrap_err(),
        ServeError::CircuitOpen { tenant: 0, retry_in } if retry_in <= 8
    ));

    // Tenant 1 is untouched: its miss is admitted (and tried).
    let innocent = service.submit(request(3, 1));
    assert_eq!(innocent.outcome(), Outcome::Miss);
    assert!(service.drain_one());
    assert!(innocent.wait().result.is_err(), "the compile still fails");

    // Cooldown over: the half-open probe is admitted, fails, re-trips.
    service.advance(9);
    let probe = service.submit(request(4, 0));
    assert_eq!(probe.outcome(), Outcome::Miss, "half-open probe admitted");
    assert!(service.drain_one());
    assert!(probe.wait().result.is_err());
    let stats = service.stats();
    assert_eq!(
        stats.breaker_trips, 2,
        "the trip and the failed-probe re-trip"
    );
    assert_eq!(stats.breaker_rejects, 1);
}

/// A half-open probe admission that a *later* gate rejects dispatches
/// no compile, so no completion can ever resolve the half-open state —
/// the probe slot must be returned, or the tenant's compile path fails
/// fast forever (a permanent lockout triggered exactly under the
/// overload that tripped the breaker).
#[test]
fn throttled_probe_returns_the_breaker_slot() {
    let config = ServiceConfig {
        quarantine_threshold: 0, // isolate the breaker
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 4,
        },
        bucket: Some(BucketConfig {
            capacity: 1,
            refill_ticks: 8,
        }),
        fault_plane: Some(plane(16, 1.0, 0.0, 0)),
        ..inline_config()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let request = |shift: usize| Request::new(0, line_spec(6, shift), CompileOptions::ic(), 3);

    // One failure trips the breaker; the miss also spent the token.
    let ticket = service.submit(request(0));
    assert!(service.drain_one());
    assert!(ticket.wait().result.is_err());

    // Cooldown over, but the bucket is dry: the probe admission is
    // throttled before it can queue.
    service.advance(5);
    let throttled = service.call(request(1));
    assert_eq!(throttled.outcome, Outcome::Throttled);

    // The probe slot came back: once a token refills, the next miss is
    // admitted as the probe instead of failing fast forever.
    service.advance(2); // past the 8-tick refill interval
    let probe = service.submit(request(2));
    assert_eq!(
        probe.outcome(),
        Outcome::Miss,
        "the throttled probe was aborted, not leaked"
    );
    assert!(service.drain_one());
    assert!(probe.wait().result.is_err(), "the probe compile still fails");
}

/// Same leak through the deadline plane: a queued probe reaped before
/// dispatch never completes, so the reap must return the probe slot.
#[test]
fn deadline_reaped_probe_returns_the_breaker_slot() {
    let config = ServiceConfig {
        quarantine_threshold: 0,
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 4,
        },
        fault_plane: Some(plane(16, 1.0, 0.0, 0)),
        ..inline_config()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let request = |shift: usize| Request::new(0, line_spec(6, shift), CompileOptions::ic(), 3);

    let ticket = service.submit(request(0));
    assert!(service.drain_one());
    assert!(ticket.wait().result.is_err(), "one failure trips the breaker");

    // The probe queues with a deadline and nothing dequeues it
    // (workers: 0): the sweep reaps it before any worker reports.
    service.advance(5);
    let reaped = service.submit(request(1).with_deadline(2));
    assert_eq!(reaped.outcome(), Outcome::Miss, "probe admitted");
    service.advance(5);
    assert!(matches!(
        reaped.wait().result.unwrap_err(),
        ServeError::DeadlineExceeded { .. }
    ));

    // The reap returned the slot: the next miss probes again.
    let probe = service.submit(request(2));
    assert_eq!(
        probe.outcome(),
        Outcome::Miss,
        "the reaped probe was aborted, not leaked"
    );
}

/// The token bucket charges compiles that actually queue: a request
/// rejected under overload must not drain the tenant's budget (or a
/// tenant would pay tokens for rejections all through an overload and
/// then be throttled once capacity frees up).
#[test]
fn overload_rejection_does_not_charge_the_bucket() {
    let config = ServiceConfig {
        queue_capacity: 0, // every miss is overload
        bucket: Some(BucketConfig {
            capacity: 1,
            refill_ticks: 1_000,
        }),
        ..inline_config()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let request = |shift: usize| Request::new(0, line_spec(6, shift), CompileOptions::ic(), 3);

    // Both rejections surface as Overloaded — with the token charged
    // first, the second would burn the budget and report Throttled.
    for shift in 0..2 {
        let rejected = service.call(request(shift));
        assert_eq!(rejected.outcome, Outcome::Rejected);
    }
    let stats = service.stats();
    assert_eq!((stats.rejected, stats.throttled), (2, 0));
}

#[test]
fn token_bucket_charges_misses_only_and_refills_on_the_clock() {
    let config = ServiceConfig {
        bucket: Some(BucketConfig {
            capacity: 1,
            refill_ticks: 4,
        }),
        ..inline_config()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let request = |shift: usize| Request::new(0, line_spec(6, shift), CompileOptions::ic(), 3);

    // The single token pays for the first miss.
    let first = service.submit(request(0));
    assert_eq!(first.outcome(), Outcome::Miss);
    assert!(service.drain_one());
    assert!(first.wait().result.is_ok());

    // The bucket is dry: a second miss fails fast…
    let throttled = service.call(request(1));
    assert_eq!(throttled.outcome, Outcome::Throttled);
    assert_eq!(
        throttled.result.unwrap_err(),
        ServeError::Throttled { tenant: 0 }
    );

    // …but hits are free — serving an Arc clone needs no protection.
    assert_eq!(service.call(request(0)).outcome, Outcome::Hit);

    // A refill interval buys one more compile.
    service.advance(4);
    assert_eq!(service.submit(request(2)).outcome(), Outcome::Miss);
    assert_eq!(service.stats().throttled, 1);
}

#[test]
fn warm_start_recovers_spills_and_drops_stale_vic_entries() {
    let dir = std::env::temp_dir().join(format!("qserve_warm_start_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let topo = Topology::grid(2, 3);
    let cal_a = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
    let cal_b = Calibration::uniform(&topo, 0.03, 0.002, 0.03);
    let config = || ServiceConfig {
        spill_dir: Some(dir.clone()),
        ..inline_config()
    };
    // 5 specs × {IC, VIC} = 10 spilled artifacts.
    let keys: Vec<(QaoaSpec, CompileOptions)> = (0..5)
        .flat_map(|shift| {
            let spec = line_spec(6, shift);
            [
                (spec.clone(), CompileOptions::ic()),
                (spec, CompileOptions::vic()),
            ]
        })
        .collect();

    // First incarnation: warm everything, then "crash" (drop).
    {
        let service = Service::new(topo.clone(), Some(cal_a.clone()), config());
        for (spec, options) in &keys {
            assert!(service
                .warm(Request::new(0, spec.clone(), *options, 3))
                .result
                .is_ok());
        }
        assert_eq!(service.stats().spill_saved, keys.len() as u64);
    }

    // Torn write on one file: recovery must skip exactly that one.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "qart"))
        .collect();
    files.sort();
    assert_eq!(files.len(), keys.len());
    FaultInjector::new(3)
        .corrupt_spill_file(&files[0], SpillCorruption::Truncate)
        .unwrap();

    // Same-calibration restart: >= 90% of the artifacts come back and
    // serve as first-request hits without a single compile.
    {
        let service = Service::new(topo.clone(), Some(cal_a), config());
        let stats = service.stats();
        assert_eq!(stats.spill_recovered, keys.len() as u64 - 1);
        assert_eq!(stats.spill_corrupt, 1);
        assert!(stats.spill_recovered as f64 >= 0.9 * keys.len() as f64);
        let tickets: Vec<_> = keys
            .iter()
            .map(|(spec, options)| service.submit(Request::new(0, spec.clone(), *options, 3)))
            .collect();
        let hits = tickets
            .iter()
            .filter(|ticket| ticket.outcome() == Outcome::Hit)
            .count();
        assert_eq!(hits, keys.len() - 1, "every recovered artifact hits");
        // Drain the one recompile so its artifact is spilled again for
        // the next incarnation.
        while service.drain_one() {}
        for ticket in tickets {
            assert!(ticket.wait().result.is_ok());
        }
    }

    // Changed-calibration restart: VIC spills are stale-epoch and must
    // be dropped — serving one would hand out reliability mappings
    // computed against dead calibration data.
    {
        let service = Service::new(topo, Some(cal_b), config());
        assert_eq!(service.stats().spill_stale, 5, "all five VIC spills die");
        for (spec, options) in &keys {
            let outcome = service
                .submit(Request::new(0, spec.clone(), *options, 3))
                .outcome();
            if matches!(
                options.compilation,
                qcompile::Compilation::IncrementalReliability
            ) {
                assert_eq!(outcome, Outcome::Miss, "no stale-epoch VIC entry serves");
            } else {
                assert_eq!(outcome, Outcome::Hit, "calibration-free entries survive");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
