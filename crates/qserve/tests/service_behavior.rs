//! Serving-policy behavior: request coalescing, tenant fairness,
//! overload shedding down the ladder, rejection, and negative caching
//! of failed compiles. Every test runs with `workers: 0` and drives the
//! queue through `drain_one`, so completion order is fully under test
//! control and nothing here can flake on scheduling.

use std::sync::Arc;

use qcompile::{CompileError, CompileOptions, CphaseOp, QaoaSpec};
use qhw::fault::ServiceFaultPlane;
use qhw::Topology;
use qserve::{BackoffConfig, Outcome, Request, ServeError, Service, ServiceConfig};

fn line_spec(n: usize, shift: usize) -> QaoaSpec {
    let ops = (0..n - 1)
        .map(|i| CphaseOp::new(i, i + 1, 0.4 + shift as f64 * 0.01))
        .collect();
    QaoaSpec::new(n, vec![(ops, 0.3)], true)
}

fn inline_config() -> ServiceConfig {
    ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    }
}

#[test]
fn concurrent_requests_for_one_key_coalesce() {
    let service = Service::new(Topology::grid(2, 3), None, inline_config());
    let request = Request::new(0, line_spec(6, 0), CompileOptions::ic(), 3);
    let first = service.submit(request.clone());
    let second = service.submit(request);
    assert_eq!(first.outcome(), Outcome::Miss);
    assert_eq!(
        second.outcome(),
        Outcome::Hit,
        "a request for an in-flight key is a (coalesced) hit"
    );
    assert!(!first.is_ready());

    assert!(service.drain_one(), "exactly one compile was admitted");
    assert!(!service.drain_one(), "coalescing queued no second job");

    let (a, b) = (first.wait(), second.wait());
    assert!(Arc::ptr_eq(
        a.result.as_ref().unwrap(),
        b.result.as_ref().unwrap()
    ));
    let stats = service.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

#[test]
fn tenant_backlog_cannot_starve_another_tenant() {
    let service = Service::new(Topology::grid(2, 3), None, inline_config());
    // Tenant 0 floods four distinct jobs, then tenant 1 submits one.
    let flood: Vec<_> = (0..4)
        .map(|i| service.submit(Request::new(0, line_spec(6, i), CompileOptions::ic(), 3)))
        .collect();
    let single = service.submit(Request::new(1, line_spec(6, 99), CompileOptions::ic(), 3));

    while service.drain_one() {}

    // Round-robin pop: one job of tenant 0, then tenant 1's job — the
    // late single request is served second, not fifth.
    let responses: Vec<_> = flood.into_iter().map(|t| t.wait()).collect();
    let single = single.wait();
    assert_eq!(responses[0].served_order, 1);
    assert_eq!(single.served_order, 2, "fair queuing served tenant 1 early");
    assert!(responses[1..].iter().all(|r| r.served_order > 2));
}

#[test]
fn overload_sheds_down_the_ladder_then_rejects() {
    let config = ServiceConfig {
        workers: 0,
        queue_capacity: 0, // every miss is overload
        ..ServiceConfig::default()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let spec = line_spec(6, 0);

    // Warm the NAIVE rung inline (warm bypasses admission control).
    let naive = service.warm(Request::new(0, spec.clone(), CompileOptions::naive(), 3));
    assert_eq!(naive.outcome, Outcome::Miss);

    // A VIC request cannot queue; the ladder probe VIC → IC → NAIVE
    // finds the cached NAIVE artifact two rungs down.
    let shed = service.call(Request::new(0, spec.clone(), CompileOptions::vic(), 3));
    assert_eq!(shed.outcome, Outcome::Shed { rungs: 2 });
    assert!(Arc::ptr_eq(
        shed.result.as_ref().unwrap(),
        naive.result.as_ref().unwrap(),
    ));

    // A different program has no cached rung anywhere: rejected.
    let rejected = service.call(Request::new(0, line_spec(6, 5), CompileOptions::ic(), 3));
    assert_eq!(rejected.outcome, Outcome::Rejected);
    assert_eq!(
        rejected.result.unwrap_err(),
        ServeError::Overloaded {
            queued: 0,
            capacity: 0
        }
    );

    let stats = service.stats();
    assert_eq!((stats.shed, stats.rejected), (1, 1));
}

#[test]
fn failed_compiles_are_negatively_cached() {
    // Two disconnected components: every compile fails structurally.
    let graph = qgraph::Graph::from_edges(4, vec![(0, 1), (2, 3)]).unwrap();
    let topo = Topology::from_graph("split", graph);
    let service = Service::new(topo, None, inline_config());

    let request = Request::new(0, line_spec(4, 0), CompileOptions::ic(), 3);
    let first = service.submit(request.clone());
    assert!(service.drain_one());
    let first = first.wait();
    let err = first.result.unwrap_err();
    assert_eq!(
        err,
        ServeError::Compile(CompileError::DisconnectedTopology { components: 2 })
    );

    // The failure is served from cache: no new compile job.
    let second = service.submit(request);
    assert_eq!(second.outcome(), Outcome::Hit);
    assert!(second.is_ready());
    assert!(!service.drain_one());
    assert_eq!(second.wait().result.unwrap_err(), err);
}

#[test]
fn coalesced_waiters_receive_the_leaders_failure() {
    // Two disconnected components: the leader's compile fails.
    let graph = qgraph::Graph::from_edges(4, vec![(0, 1), (2, 3)]).unwrap();
    let topo = Topology::from_graph("split", graph);
    let service = Service::new(topo, None, inline_config());

    let request = Request::new(0, line_spec(4, 0), CompileOptions::ic(), 3);
    let leader = service.submit(request.clone());
    let waiter = service.submit(request);
    assert_eq!(waiter.outcome(), Outcome::Hit, "second request coalesces");
    assert!(!waiter.is_ready(), "the waiter blocks on the leader's job");

    assert!(service.drain_one());
    let expected = ServeError::Compile(CompileError::DisconnectedTopology { components: 2 });
    assert_eq!(leader.wait().result.unwrap_err(), expected);
    assert_eq!(
        waiter.wait().result.unwrap_err(),
        expected,
        "the coalesced waiter receives the leader's structured error, not a hang"
    );
}

#[test]
fn shed_probe_skips_negatively_cached_rungs() {
    let graph = qgraph::Graph::from_edges(4, vec![(0, 1), (2, 3)]).unwrap();
    let topo = Topology::from_graph("split", graph);
    let config = ServiceConfig {
        workers: 0,
        queue_capacity: 0, // every miss is overload
        ..ServiceConfig::default()
    };
    let service = Service::new(topo, None, config);
    let spec = line_spec(4, 0);

    // Negative-cache the NAIVE rung: its compile fails structurally.
    let naive = service.warm(Request::new(0, spec.clone(), CompileOptions::naive(), 3));
    assert!(naive.result.is_err());

    // Queue full: the VIC probe walks VIC → IC → NAIVE and finds only
    // the failed NAIVE entry. Serving one key's cached error for
    // another key's request helps nobody — the probe must skip it and
    // reject, not report a shed "hit".
    let response = service.call(Request::new(0, spec, CompileOptions::vic(), 3));
    assert_eq!(response.outcome, Outcome::Rejected);
    assert!(matches!(
        response.result.unwrap_err(),
        ServeError::Overloaded { .. }
    ));
    assert_eq!(
        service.stats().shed,
        0,
        "a failed rung is not a shed target"
    );
}

/// The shed probe is read-only over failure state: walking the ladder
/// past an *expired* negative rung must not reap it (and must not count
/// a retry) — the rung's strike history belongs to its own next
/// admission, which carries it into the next backoff TTL.
#[test]
fn shed_probe_leaves_expired_negative_rungs_unreaped() {
    let config = ServiceConfig {
        workers: 0,
        queue_capacity: 0, // every miss is overload
        backoff: BackoffConfig {
            base_ticks: 4,
            max_ticks: 64,
            ..BackoffConfig::default()
        },
        // Exactly the first compile panics: the NAIVE rung's failure is
        // retryable, so it negative-caches with a backoff TTL.
        fault_plane: Some(Arc::new(ServiceFaultPlane::plan(7, 1, 1.0, 0.0, 0))),
        ..ServiceConfig::default()
    };
    let service = Service::new(Topology::grid(2, 3), None, config);
    let spec = line_spec(6, 0);

    let naive = service.warm(Request::new(0, spec.clone(), CompileOptions::naive(), 3));
    assert!(naive.result.is_err(), "the injected panic is contained");

    // Let the rung's backoff TTL lapse, then overload-probe past it.
    service.advance(10);
    let response = service.call(Request::new(0, spec.clone(), CompileOptions::vic(), 3));
    assert_eq!(response.outcome, Outcome::Rejected, "no servable rung");
    assert_eq!(
        service.stats().negative_expired,
        0,
        "the probe neither reaped the expired rung nor counted a retry"
    );

    // The entry is still in place: the rung's own next admission is the
    // one that observes the expiry (and inherits the strike history).
    let direct = service.submit(Request::new(0, spec, CompileOptions::naive(), 3));
    assert!(direct.wait().result.is_err());
    assert_eq!(service.stats().negative_expired, 1);
}

#[test]
fn identical_streams_produce_identical_stats() {
    let run = || {
        let service = Service::new(Topology::grid(2, 3), None, inline_config());
        for i in 0..20 {
            let shift = i % 3;
            let t = service.submit(Request::new(
                i as u32,
                line_spec(6, shift),
                CompileOptions::ic(),
                3,
            ));
            while service.drain_one() {}
            t.wait();
        }
        service.stats()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b);
    assert_eq!((a.hits, a.misses), (17, 3));
    assert_ne!(a.sequence_fp, 0);
}
