//! Cache-correctness suite: structural hashing over generated programs
//! and calibration-epoch invalidation.
//!
//! The service trusts [`qserve::spec_fingerprint`] only as a bucket
//! locator — full key equality is verified on every hit (see the
//! forced-collision unit test inside `qserve::cache`) — but the
//! fingerprint should still separate distinct programs essentially
//! always, and must be a pure function of program structure. The epoch
//! tests pin the invalidation contract: a calibration reload never lets
//! a VIC artifact compiled under the old epoch be served again, and
//! never touches calibration-independent entries.

use std::sync::Arc;

use proptest::prelude::*;
use qcompile::{CompileOptions, CphaseOp, QaoaSpec};
use qhw::{Calibration, Topology};
use qserve::{spec_fingerprint, CacheKey, Outcome, Request, Service, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec_from(n: usize, edges: &[(usize, usize)], levels: usize, angle: f64) -> QaoaSpec {
    let per_level: Vec<(Vec<CphaseOp>, f64)> = (0..levels)
        .map(|k| {
            let ops = edges
                .iter()
                .map(|&(a, b)| CphaseOp::new(a, b, angle + k as f64))
                .collect();
            (ops, 0.3 + k as f64 * 0.1)
        })
        .collect();
    QaoaSpec::new(n, per_level, true)
}

fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect()
}

/// Strategy: a qubit count and a non-empty edge subset of its complete
/// graph.
fn arb_program() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (4usize..=8).prop_flat_map(|n| {
        let universe = all_pairs(n);
        let edges = proptest::sample::subsequence(universe.clone(), 1..=universe.len());
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural hashing: rebuilding a spec from the same parts gives
    /// the same fingerprint, and any structural difference — edge set,
    /// level count, angle bits, qubit count — moves it.
    #[test]
    fn fingerprint_is_structural(
        problem in arb_program(),
        levels in 1usize..=2,
    ) {
        let (n, edges) = problem;
        let spec = spec_from(n, &edges, levels, 0.5);

        // Pure function of structure.
        prop_assert_eq!(spec_fingerprint(&spec), spec_fingerprint(&spec_from(n, &edges, levels, 0.5)));

        // Distinct structures hash apart (64-bit hash over tiny
        // generated sets: a collision here means the hash ignores the
        // mutated component, not bad luck).
        let mut fewer = edges.clone();
        if fewer.len() > 1 {
            fewer.pop();
            prop_assert_ne!(spec_fingerprint(&spec), spec_fingerprint(&spec_from(n, &fewer, levels, 0.5)));
        }
        prop_assert_ne!(spec_fingerprint(&spec), spec_fingerprint(&spec_from(n, &edges, levels + 1, 0.5)));
        prop_assert_ne!(spec_fingerprint(&spec), spec_fingerprint(&spec_from(n, &edges, levels, 0.5000001)));
        prop_assert_ne!(spec_fingerprint(&spec), spec_fingerprint(&spec_from(n + 1, &edges, levels, 0.5)));

        // Key fingerprints additionally separate options, topology and
        // (for VIC only) the calibration epoch.
        let base = CacheKey::new(spec.clone(), CompileOptions::ic(), 7, 0);
        prop_assert_ne!(
            base.fingerprint(),
            CacheKey::new(spec.clone(), CompileOptions::ip(), 7, 0).fingerprint()
        );
        prop_assert_ne!(
            base.fingerprint(),
            CacheKey::new(spec.clone(), CompileOptions::ic(), 8, 0).fingerprint()
        );
        // IC ignores the epoch; VIC bakes it in.
        prop_assert_eq!(
            base.fingerprint(),
            CacheKey::new(spec.clone(), CompileOptions::ic(), 7, 5).fingerprint()
        );
        prop_assert_ne!(
            CacheKey::new(spec.clone(), CompileOptions::vic(), 7, 0).fingerprint(),
            CacheKey::new(spec, CompileOptions::vic(), 7, 5).fingerprint()
        );
    }
}

/// A calibration hot-reload must never serve a VIC artifact compiled
/// under the previous epoch, and must leave hop-metric artifacts alone.
#[test]
fn epoch_bump_never_serves_stale_vic() {
    let topo = Topology::ibmq_20_tokyo();
    let cal_a = Calibration::random_normal(&topo, 2e-2, 8e-3, &mut StdRng::seed_from_u64(11));
    let cal_b = Calibration::random_normal(&topo, 2e-2, 8e-3, &mut StdRng::seed_from_u64(99));
    assert_ne!(cal_a.fingerprint(), cal_b.fingerprint());

    let service = Service::new(
        topo.clone(),
        Some(cal_a),
        ServiceConfig {
            workers: 0,
            ..ServiceConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let g = qgraph::generators::connected_erdos_renyi(12, 0.3, 1000, &mut rng).unwrap();
    let problem = qaoa::MaxCut::without_optimum(g);
    let spec = QaoaSpec::from_maxcut_parametric(&problem, 1, true);

    let vic = Request::new(0, spec.clone(), CompileOptions::vic(), 7);
    let ic = Request::new(0, spec.clone(), CompileOptions::ic(), 7);
    let vic_before = service.warm(vic.clone());
    let ic_before = service.warm(ic.clone());
    assert_eq!(vic_before.outcome, Outcome::Miss);
    assert_eq!(service.warm(vic.clone()).outcome, Outcome::Hit);

    let invalidated = service.reload_calibration(Some(cal_b.clone()));
    assert_eq!(invalidated, 1, "exactly the VIC entry drops");
    assert_eq!(service.epoch(), 1);

    // The VIC key re-misses and recompiles against the new epoch…
    let vic_after = service.warm(vic);
    assert_eq!(vic_after.outcome, Outcome::Miss);
    let (old, new) = (
        vic_before.result.as_ref().unwrap(),
        vic_after.result.as_ref().unwrap(),
    );
    assert!(!Arc::ptr_eq(old, new), "stale artifact must not be served");
    // …and the recompile matches a fresh compile under the new tables.
    let fresh_context = qhw::HardwareContext::with_calibration(topo, cal_b);
    let fresh = qcompile::try_compile_artifact_with_context(
        &spec,
        &fresh_context,
        &CompileOptions::vic(),
        &mut StdRng::seed_from_u64(7),
    )
    .unwrap();
    assert_eq!(new.template().physical(), fresh.template().physical());

    // The IC entry survived: same Arc, no recompile.
    let ic_after = service.warm(ic);
    assert_eq!(ic_after.outcome, Outcome::Hit);
    assert!(Arc::ptr_eq(
        ic_before.result.as_ref().unwrap(),
        ic_after.result.as_ref().unwrap(),
    ));

    let stats = service.stats();
    assert_eq!(stats.invalidated, 1);
    assert_eq!(stats.epoch_bumps, 1);
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 3);
}
