//! Ops-plane contracts: stable error codes and lifecycle conservation.
//!
//! Two pins. First, [`ServeError::code`] is the vocabulary every
//! ops-plane artifact speaks — journal lines, per-tenant error
//! counters, `qstat` breakdowns — so the mapping is pinned verbatim:
//! renaming a code silently orphans committed baselines and operator
//! runbooks. Second, the lifecycle log must *conserve* requests: every
//! admitted request reaches exactly one terminal stage, whatever mix of
//! hits, coalesced waits, sheds, rejections, reaps and deadline
//! cancellations the stream produces. The conservation test drives a
//! `workers: 0` service through `drain_one` with proptest-chosen
//! traffic (tenant mix, queue pressure, deadlines, sweep cadence), so
//! admission-path and scheduler-path terminals are both exercised
//! without any scheduling nondeterminism.

use proptest::prelude::*;
use qcompile::{CompileError, CompileOptions, CphaseOp, QaoaSpec};
use qhw::Topology;
use qserve::{QuarantineReason, Request, ServeError, Service, ServiceConfig, Stage};

fn line_spec(n: usize, shift: usize) -> QaoaSpec {
    let ops = (0..n - 1)
        .map(|i| CphaseOp::new(i, i + 1, 0.4 + shift as f64 * 0.01))
        .collect();
    QaoaSpec::new(n, vec![(ops, 0.3)], true)
}

/// The stable code table, verbatim. A change here is a breaking change
/// to every committed journal/baseline and must be deliberate.
#[test]
fn serve_error_codes_are_pinned() {
    let cases: [(ServeError, &str); 6] = [
        (
            ServeError::Overloaded {
                queued: 4,
                capacity: 4,
            },
            "overloaded",
        ),
        (
            ServeError::Compile(CompileError::DisconnectedTopology { components: 2 }),
            "compile_failed",
        ),
        (
            ServeError::DeadlineExceeded {
                deadline: 10,
                now: 12,
            },
            "deadline_exceeded",
        ),
        (
            ServeError::Quarantined {
                spec_fp: 0xAB,
                reason: QuarantineReason::Panicked { strikes: 3 },
            },
            "quarantined",
        ),
        (
            ServeError::CircuitOpen {
                tenant: 1,
                retry_in: 7,
            },
            "circuit_open",
        ),
        (ServeError::Throttled { tenant: 0 }, "throttled"),
    ];
    for (error, code) in cases {
        assert_eq!(error.code(), code, "{error:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: `admitted == sum over terminal stages`, i.e. every
    /// admitted request's trace carries exactly one terminal stage, and
    /// the log holds exactly one record per admission.
    #[test]
    fn every_admitted_request_reaches_exactly_one_terminal(
        seed in 0u64..1_000_000,
        requests in 1usize..60,
        tenants in 1u32..4,
        queue_capacity in 0usize..6,
        universe in 1usize..8,
        deadline in proptest::option::of(1u64..6),
        sweep_every in 2u64..5,
    ) {
        let service = Service::new(
            Topology::grid(2, 3),
            None,
            ServiceConfig {
                workers: 0,
                queue_capacity,
                tenants: tenants as usize,
                ..ServiceConfig::default()
            },
        );
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64: cheap, deterministic stream decisions.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut tickets = Vec::new();
        for i in 0..requests {
            let mut request = Request::new(
                next() as u32 % tenants,
                line_spec(6, next() as usize % universe),
                CompileOptions::ic(),
                3,
            );
            if let Some(ticks) = deadline {
                request = request.with_deadline(ticks);
            }
            tickets.push(service.submit(request));
            // Interleave queue drains, clock advances (which reap
            // lapsed deadlines) and idle gaps, so traces terminate via
            // every path: direct hits, worker completion, deadline
            // reap, shed/reject on queue pressure.
            match next() % 4 {
                0 => {
                    service.drain_one();
                }
                1 if (i as u64) % sweep_every == 0 => service.advance(next() % 8),
                _ => {}
            }
        }
        while service.drain_one() {}
        for ticket in tickets {
            // Outcome itself is irrelevant here; waiting just proves
            // every ticket resolved before the log is drained.
            let _ = ticket.wait();
        }

        let stats = service.stats();
        let traces = service.take_lifecycle();
        prop_assert_eq!(service.lifecycle_dropped(), 0);
        prop_assert_eq!(
            traces.len() as u64, stats.requests,
            "one lifecycle record per admitted request"
        );
        for trace in &traces {
            prop_assert_eq!(
                trace.terminal_count(), 1,
                "request {} terminals != 1: {:?}", trace.id, trace.stages
            );
            let (first_stage, _) = trace.stages[0];
            prop_assert_eq!(
                first_stage, Stage::Admitted,
                "request {} did not start at Admitted", trace.id
            );
        }
        // The terminal tally must add back up to the admission count.
        let terminals = traces
            .iter()
            .filter_map(|t| t.terminal())
            .count() as u64;
        prop_assert_eq!(terminals, stats.requests);
    }
}
