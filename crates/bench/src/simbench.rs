//! Simulation-engine throughput workloads: the statevector and
//! noisy-density hot paths every fidelity number in the paper flows
//! through.
//!
//! This lives in the library (rather than only in the
//! `benches/sim_throughput.rs` harness) so the `baseline` binary can
//! regenerate the committed baselines from the same code. Two
//! configurations exist:
//!
//! * **full** (`figure = "sim"`) — the paper-scale sizes, matching the
//!   committed `results/BENCH_sim_baseline.json` labels;
//! * **quick** (`figure = "sim_quick"`) — CI smoke sizes, seconds of wall
//!   clock, compared in CI against `results/BENCH_sim_quick.json`. Quick
//!   mode gets its own figure name because its labels (e.g. `sv_14q_p2`)
//!   differ from full mode's — diffing a quick run against a full
//!   baseline would share no series and the `regress` gate errors out
//!   rather than passing vacuously.
//!
//! Workloads:
//! * `sv_<n>q_p<p>` — noiseless statevector of an n-qubit, p-level QAOA
//!   circuit on a 3-regular graph (the paper's largest execution regime).
//! * `density_fig10_<n>q` — exact density-matrix evolution of a
//!   VIC-compiled Erdős–Rényi instance under the calibrated Pauli-channel
//!   noise model: the Fig. 10 success-probability workload at
//!   density-matrix scale.
//! * `trajectory_<n>q` — trajectory-noise sampling of an IC-compiled
//!   instance on melbourne (the Fig. 11b "hardware" path).

use std::time::Instant;

use crate::report::Report;
use crate::stats::{mean, std_dev};
use crate::workloads::{instances, Family};
use qaoa::{qaoa_circuit, MaxCut, QaoaParams};
use qcircuit::Circuit;
use qcompile::{compile, CompileOptions};
use qhw::{Calibration, Topology};
use qsim::{NoiseModel, StateVector, TrajectorySimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One throughput configuration (sizes and sample counts).
pub struct Config {
    /// Report figure name (`"sim"` or `"sim_quick"`).
    pub figure: &'static str,
    sv_nodes: usize,
    sv_levels: usize,
    sv_samples: usize,
    density_nodes: usize,
    density_samples: usize,
    traj_nodes: usize,
    traj_samples: usize,
}

/// Paper-scale sizes; labels match `results/BENCH_sim_baseline.json`.
pub const FULL: Config = Config {
    figure: "sim",
    sv_nodes: 20,
    sv_levels: 2,
    sv_samples: 5,
    density_nodes: 8,
    density_samples: 3,
    traj_nodes: 12,
    traj_samples: 5,
};

/// CI smoke sizes: same code paths, seconds of wall clock, own figure
/// name (see the module docs).
pub const QUICK: Config = Config {
    figure: "sim_quick",
    sv_nodes: 14,
    sv_levels: 2,
    sv_samples: 3,
    density_nodes: 6,
    density_samples: 2,
    traj_nodes: 10,
    traj_samples: 3,
};

/// The p-level QAOA statevector workload circuit.
fn sv_circuit(nodes: usize, levels: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(nodes as u64);
    let g = qgraph::generators::connected_random_regular(nodes, 3, 10_000, &mut rng)
        .expect("regular graph");
    let problem = MaxCut::without_optimum(g);
    let params = QaoaParams::new((0..levels).map(|k| (0.9 / (k + 1) as f64, 0.35)).collect());
    qaoa_circuit(&problem, &params, false)
}

/// A VIC-compiled physical circuit plus noise model on a linear device —
/// the Fig. 10 success-probability workload shrunk to density-matrix size.
fn density_workload(nodes: usize) -> (Circuit, NoiseModel) {
    let topo = Topology::linear(nodes);
    let cal = Calibration::uniform(&topo, 0.02, 0.002, 0.02);
    let g = instances(Family::ErdosRenyi(0.5), nodes, 1, 10_001).remove(0);
    let spec = crate::compilation_spec(g, false);
    let mut rng = StdRng::seed_from_u64(77);
    let compiled = compile(&spec, &topo, Some(&cal), &CompileOptions::vic(), &mut rng);
    let model = NoiseModel::new(cal).with_idle_error(1e-3);
    (compiled.physical().clone(), model)
}

/// An IC-compiled instance on melbourne for the trajectory sampler.
fn trajectory_workload(nodes: usize) -> (Circuit, TrajectorySimulator) {
    let (topo, cal) = Calibration::melbourne_2020_04_08();
    let g = instances(Family::ErdosRenyi(0.5), nodes, 1, 11_201).remove(0);
    let spec = crate::compilation_spec(g, true);
    let mut rng = StdRng::seed_from_u64(78);
    let compiled = compile(&spec, &topo, Some(&cal), &CompileOptions::ic(), &mut rng);
    let sim = TrajectorySimulator::new(NoiseModel::new(cal));
    (compiled.physical().clone(), sim)
}

/// Times `samples` runs of `f` (after one warmup), returning per-run ms.
fn time_ms<O>(samples: usize, mut f: impl FnMut() -> O) -> Vec<f64> {
    std::hint::black_box(f());
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

fn print_series(label: &str, ms: &[f64]) {
    println!(
        "{label:<28} {:>10.2} ms  ±{:>8.2}  (n={})",
        mean(ms),
        std_dev(ms),
        ms.len()
    );
}

/// Runs the three throughput workloads at `cfg` sizes, printing a table
/// and returning the per-series [`Report`].
pub fn run(cfg: &Config) -> Report {
    let mut report = Report::new(cfg.figure);
    println!("=== sim_throughput ({}) ===", cfg.figure);

    // Statevector: n-qubit, p-level QAOA.
    let circuit = sv_circuit(cfg.sv_nodes, cfg.sv_levels);
    let label = format!("sv_{}q_p{}/ms", cfg.sv_nodes, cfg.sv_levels);
    let ms = time_ms(cfg.sv_samples, || StateVector::from_circuit(&circuit));
    print_series(&label, &ms);
    report.add(label, &ms);

    // Noisy density evolution of the compiled fig10-style instance.
    let (physical, model) = density_workload(cfg.density_nodes);
    let label = format!("density_fig10_{}q/ms", cfg.density_nodes);
    let ms = time_ms(cfg.density_samples, || {
        qsim::density::evolve_with_noise(&physical, &model)
    });
    print_series(&label, &ms);
    report.add(label, &ms);

    // Trajectory-noise sampling of the compiled fig11b-style instance.
    let (physical, sim) = trajectory_workload(cfg.traj_nodes);
    let label = format!("trajectory_{}q/ms", cfg.traj_nodes);
    let ms = time_ms(cfg.traj_samples, || {
        let mut rng = StdRng::seed_from_u64(5);
        sim.sample(&physical, 1024, 16, &mut rng)
    });
    print_series(&label, &ms);
    report.add(label, &ms);

    report
}
