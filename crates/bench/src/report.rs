//! Machine-readable per-figure results: each `fig*` binary emits a
//! `BENCH_<figure>.json` next to its table, carrying a
//! [`Summary`](crate::stats::Summary) (mean, median, 95% bootstrap CI)
//! per metric series so plots and regressions don't re-parse stdout.
//!
//! JSON is emitted by hand — the workspace is offline and carries no
//! serde; the format is flat enough that escaping labels is the only
//! subtlety.

use std::io::Write;
use std::path::PathBuf;

use crate::stats::{summarize, Summary};

/// A per-figure result set, serialized as `BENCH_<figure>.json`.
#[derive(Debug, Clone)]
pub struct Report {
    figure: String,
    entries: Vec<(String, Summary)>,
}

impl Report {
    /// An empty report for `figure` (e.g. `"fig07_qaim"`).
    pub fn new(figure: &str) -> Self {
        Report {
            figure: figure.to_owned(),
            entries: Vec::new(),
        }
    }

    /// Records the summary of one metric series. The bootstrap seed is
    /// derived from the label, so re-runs emit identical JSON.
    pub fn add(&mut self, label: impl Into<String>, samples: &[f64]) {
        let label = label.into();
        let summary = summarize(samples, fnv1a(label.as_bytes()));
        self.entries.push((label, summary));
    }

    /// The recorded entries, in insertion order.
    pub fn entries(&self) -> &[(String, Summary)] {
        &self.entries
    }

    /// Serializes the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"figure\": \"{}\",\n", escape(&self.figure)));
        out.push_str("  \"metrics\": [\n");
        for (i, (label, s)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"n\": {}, \"mean\": {}, \"median\": {}, \"ci95\": [{}, {}]}}{}\n",
                escape(label),
                s.n,
                number(s.mean),
                number(s.median),
                number(s.ci_lo),
                number(s.ci_hi),
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<figure>.json` into [`out_dir`] and returns the
    /// path.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = out_dir().join(format!("BENCH_{}.json", self.figure));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// [`Report::save`], reporting the outcome on stdout instead of
    /// propagating errors — figure tables stay useful on read-only
    /// filesystems.
    pub fn save_and_announce(&self) {
        match self.save() {
            Ok(path) => println!("\n[wrote {}]", path.display()),
            Err(e) => println!("\n[could not write BENCH_{}.json: {e}]", self.figure),
        }
    }
}

/// Where bench artifacts land: `$BENCH_OUT_DIR` when set; otherwise the
/// repo's `results/` directory when it exists (so driver output sits next
/// to the committed baselines); otherwise the current directory.
///
/// Every producer (`fig*` drivers, `sim_throughput`, the `baseline` bin)
/// resolves its output through this single rule.
pub fn out_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("BENCH_OUT_DIR") {
        return PathBuf::from(dir);
    }
    let results = PathBuf::from("results");
    if results.is_dir() {
        results
    } else {
        PathBuf::from(".")
    }
}

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON-safe number literal (`null` for non-finite values).
fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// FNV-1a, used to derive a stable bootstrap seed from a metric label.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut r = Report::new("fig_test");
        r.add("series/depth", &[1.0, 2.0, 3.0]);
        r.add("series/gates", &[]);
        let json = r.to_json();
        assert!(json.contains("\"figure\": \"fig_test\""));
        assert!(json.contains("\"label\": \"series/depth\""));
        assert!(json.contains("\"n\": 3"));
        assert!(json.contains("\"mean\": 2"));
        assert!(json.contains("\"ci95\": [0, 0]"), "empty series: {json}");
        // Re-adding the same data produces byte-identical JSON.
        let mut r2 = Report::new("fig_test");
        r2.add("series/depth", &[1.0, 2.0, 3.0]);
        r2.add("series/gates", &[]);
        assert_eq!(json, r2.to_json());
    }

    #[test]
    fn labels_are_escaped() {
        let mut r = Report::new("fig_test");
        r.add("weird \"label\"\\\n", &[1.0]);
        let json = r.to_json();
        assert!(json.contains("weird \\\"label\\\"\\\\\\u000a"));
    }

    #[test]
    fn save_writes_to_bench_out_dir() {
        let dir = std::env::temp_dir().join("bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("BENCH_OUT_DIR", &dir);
        let mut r = Report::new("fig_unit");
        r.add("x", &[1.0, 2.0]);
        let path = r.save().unwrap();
        std::env::remove_var("BENCH_OUT_DIR");
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, r.to_json());
        std::fs::remove_file(path).unwrap();
    }
}
