//! Workload generators matching the paper's problem sets (§V-B):
//! Erdős–Rényi random graphs with varied edge probabilities and random
//! regular graphs with varied degrees, all connected, seeded for
//! reproducibility.

use qgraph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named family of problem graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// `G(n, p)` with the given edge probability.
    ErdosRenyi(f64),
    /// Random `k`-regular with the given degree.
    Regular(usize),
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::ErdosRenyi(p) => write!(f, "er(p={p})"),
            Family::Regular(k) => write!(f, "reg(k={k})"),
        }
    }
}

/// Generates `count` connected problem graphs of `family` on `n` nodes.
///
/// Seeding is a pure function of `(family, n, base_seed, index)` so every
/// figure reuses identical instances.
///
/// # Panics
///
/// Panics if the family parameters are unsatisfiable (e.g. `k >= n`).
pub fn instances(family: Family, n: usize, count: usize, base_seed: u64) -> Vec<Graph> {
    (0..count)
        .map(|i| {
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_add(match family {
                    Family::ErdosRenyi(p) => (p * 1e6) as u64,
                    Family::Regular(k) => 0xABCD_0000 + k as u64,
                })
                .wrapping_add((n as u64) << 32);
            let mut rng = StdRng::seed_from_u64(seed);
            match family {
                Family::ErdosRenyi(p) => generators::connected_erdos_renyi(n, p, 10_000, &mut rng)
                    .expect("connected ER sample within retry budget"),
                Family::Regular(k) => generators::connected_random_regular(n, k, 10_000, &mut rng)
                    .expect("connected regular sample within retry budget"),
            }
        })
        .collect()
}

/// The Figure 7 sweep: ER edge probabilities 0.1–0.6.
pub const ER_PROBABILITIES: [f64; 6] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];

/// The Figure 7 sweep: regular degrees 3–8.
pub const REGULAR_DEGREES: [usize; 6] = [3, 4, 5, 6, 7, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_connected_and_sized() {
        for g in instances(Family::ErdosRenyi(0.3), 12, 5, 7) {
            assert_eq!(g.node_count(), 12);
            assert!(g.is_connected());
        }
        for g in instances(Family::Regular(3), 14, 5, 7) {
            assert!(g.nodes().all(|v| g.degree(v) == 3));
            assert!(g.is_connected());
        }
    }

    #[test]
    fn instances_are_reproducible() {
        let a = instances(Family::Regular(4), 16, 3, 42);
        let b = instances(Family::Regular(4), 16, 3, 42);
        assert_eq!(a, b);
        let c = instances(Family::Regular(4), 16, 3, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn families_display() {
        assert_eq!(Family::ErdosRenyi(0.5).to_string(), "er(p=0.5)");
        assert_eq!(Family::Regular(3).to_string(), "reg(k=3)");
    }
}
