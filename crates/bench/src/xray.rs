//! Post-mortem analysis of telemetry artifacts: text flamegraph, hot-path
//! table and counter deltas.
//!
//! Backs the `xray` binary. Accepts either artifact the harness emits —
//! a qtrace run manifest (`"qtrace_version"`) or a Chrome Trace Format
//! export (`"traceEvents"`, written by `--trace`) — and renders:
//!
//! * a **flamegraph**: span paths are `/`-separated hierarchies, so they
//!   aggregate into a tree; each node shows a bar scaled to the hottest
//!   root, its total wall time and its share;
//! * the **top-N hot paths** by total wall time, with count, mean and
//!   the p50/p90/p99 tail quantiles when the artifact carries them;
//! * **counters** — absolute values, or deltas against a `--baseline`
//!   artifact. In a Chrome trace, instant events stand in for counters
//!   (each occurrence counts 1).

use std::collections::BTreeMap;

use qtrace::json::Json;
use qtrace::Manifest;

/// Aggregated wall time for one span path.
#[derive(Debug, Clone, Default)]
pub struct PathStat {
    /// Completed occurrences.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Median occurrence, nanoseconds (0 when the artifact lacks it).
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
}

/// One parsed artifact, reduced to what `xray` renders.
#[derive(Debug, Clone)]
pub struct XrayInput {
    /// Run/figure name stamped in the artifact.
    pub name: String,
    /// Span wall time per path.
    pub spans: BTreeMap<String, PathStat>,
    /// Counters (manifest) or instant-event occurrences (Chrome trace).
    pub counters: BTreeMap<String, i64>,
}

/// Parses an artifact, sniffing the kind from its top-level keys.
pub fn parse_input(text: &str) -> Result<XrayInput, String> {
    let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if json.get("qtrace_version").is_some() {
        let manifest = Manifest::from_json(text).map_err(|e| format!("bad manifest: {e}"))?;
        Ok(from_manifest(&manifest))
    } else if json.get("traceEvents").is_some() {
        from_chrome_trace(&json)
    } else {
        Err("unrecognized artifact: expected a qtrace manifest \
             (\"qtrace_version\") or a Chrome trace (\"traceEvents\")"
            .to_owned())
    }
}

/// Reduces a run manifest to xray's view.
pub fn from_manifest(manifest: &Manifest) -> XrayInput {
    let mut spans = BTreeMap::new();
    for (path, stat) in &manifest.spans {
        spans.insert(
            path.clone(),
            PathStat {
                count: stat.count,
                total_ns: stat.total_ns,
                p50_ns: stat.p50_ns,
                p90_ns: stat.p90_ns,
                p99_ns: stat.p99_ns,
            },
        );
    }
    let counters = manifest
        .counters
        .iter()
        .map(|(name, value)| (name.clone(), *value as i64))
        .collect();
    XrayInput {
        name: manifest.name.clone(),
        spans,
        counters,
    }
}

/// Rebuilds per-path durations from a Chrome trace by pairing `B`/`E`
/// events on a per-thread stack (the inverse of `qtrace::export`).
/// Instant events (`i`) become counter occurrences. Unbalanced events
/// (an `E` with no open `B`, or `B`s left open at the end) are dropped —
/// the exporter only writes balanced pairs, but a hand-edited file
/// should degrade, not error.
pub fn from_chrome_trace(json: &Json) -> Result<XrayInput, String> {
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("\"traceEvents\" is not an array")?;
    let mut name = String::from("trace");
    let mut spans: BTreeMap<String, PathStat> = BTreeMap::new();
    let mut counters: BTreeMap<String, i64> = BTreeMap::new();
    // Open-span stack per tid: (path, begin ts in µs).
    let mut open: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let ev_name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        match ph {
            "M" if ev_name == "process_name" => {
                if let Some(n) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    name = n.to_owned();
                }
            }
            "M" => {}
            "B" => {
                let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
                let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
                open.entry(tid).or_default().push((ev_name.to_owned(), ts));
            }
            "E" => {
                let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
                let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
                if let Some((path, begin)) = open.entry(tid).or_default().pop() {
                    let stat = spans.entry(path).or_default();
                    stat.count += 1;
                    stat.total_ns += ((ts - begin).max(0.0) * 1000.0).round() as u64;
                }
            }
            "i" => *counters.entry(ev_name.to_owned()).or_insert(0) += 1,
            _ => {}
        }
    }
    Ok(XrayInput {
        name,
        spans,
        counters,
    })
}

/// Narrows an artifact to one tenant's `qserve/tenant/<id>/...` series
/// (spans and counters alike). Everything else — global `qserve/*`
/// counters, compiler series, other tenants — is dropped, so the
/// flamegraph, hot paths and counter deltas all read per-tenant. Backs
/// the `--tenant` flag.
pub fn filter_tenant(input: &XrayInput, tenant: u32) -> XrayInput {
    let prefix = format!("qserve/tenant/{tenant}/");
    XrayInput {
        name: format!("{} (tenant {tenant})", input.name),
        spans: input
            .spans
            .iter()
            .filter(|(path, _)| path.starts_with(&prefix))
            .map(|(path, stat)| (path.clone(), stat.clone()))
            .collect(),
        counters: input
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with(&prefix))
            .map(|(name, value)| (name.clone(), *value))
            .collect(),
    }
}

/// A node of the path hierarchy: wall time attributed to exactly this
/// path (`self_ns`) plus everything under it.
#[derive(Debug, Default)]
struct Node {
    self_ns: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn total_ns(&self) -> u64 {
        self.self_ns + self.children.values().map(Node::total_ns).sum::<u64>()
    }

    fn insert(&mut self, segments: &[&str], total_ns: u64) {
        match segments.split_first() {
            None => self.self_ns += total_ns,
            Some((head, rest)) => self
                .children
                .entry((*head).to_owned())
                .or_default()
                .insert(rest, total_ns),
        }
    }
}

fn build_tree(spans: &BTreeMap<String, PathStat>) -> Node {
    let mut root = Node::default();
    for (path, stat) in spans {
        let segments: Vec<&str> = path.split('/').collect();
        root.insert(&segments, stat.total_ns);
    }
    root
}

const BAR_WIDTH: usize = 30;

fn render_node(out: &mut String, name: &str, node: &Node, depth: usize, scale_ns: u64) {
    let total = node.total_ns();
    let bar_len = if scale_ns == 0 {
        0
    } else {
        ((total as f64 / scale_ns as f64) * BAR_WIDTH as f64).round() as usize
    };
    let bar = "#".repeat(bar_len.min(BAR_WIDTH));
    let label = format!("{}{}", "  ".repeat(depth), name);
    out.push_str(&format!(
        "{label:<40} {bar:<BAR_WIDTH$} {:>12}  {:>6.1}%\n",
        fmt_ns(total),
        if scale_ns == 0 {
            0.0
        } else {
            100.0 * total as f64 / scale_ns as f64
        },
    ));
    let mut children: Vec<(&String, &Node)> = node.children.iter().collect();
    children.sort_by(|a, b| b.1.total_ns().cmp(&a.1.total_ns()).then(a.0.cmp(b.0)));
    for (child_name, child) in children {
        render_node(out, child_name, child, depth + 1, scale_ns);
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the full report: flamegraph, top-`top` hot paths, counters
/// (as deltas when `baseline` is given).
pub fn render(input: &XrayInput, top: usize, baseline: Option<&XrayInput>) -> String {
    let mut out = format!("xray: {}\n", input.name);

    out.push_str("\nflamegraph (wall time by span path)\n");
    if input.spans.is_empty() {
        out.push_str("  (no spans in artifact)\n");
    } else {
        let root = build_tree(&input.spans);
        let scale = root
            .children
            .values()
            .map(Node::total_ns)
            .max()
            .unwrap_or(0);
        let mut roots: Vec<(&String, &Node)> = root.children.iter().collect();
        roots.sort_by(|a, b| b.1.total_ns().cmp(&a.1.total_ns()).then(a.0.cmp(b.0)));
        for (name, node) in roots {
            render_node(&mut out, name, node, 0, scale);
        }
    }

    out.push_str(&format!("\ntop {top} hot paths (by total wall time)\n"));
    let mut hot: Vec<(&String, &PathStat)> = input.spans.iter().collect();
    hot.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    if hot.is_empty() {
        out.push_str("  (no spans in artifact)\n");
    } else {
        out.push_str(&format!(
            "{:<40} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "path", "count", "total", "mean", "p50", "p90", "p99"
        ));
        for (path, stat) in hot.into_iter().take(top) {
            let mean = stat.total_ns.checked_div(stat.count).unwrap_or(0);
            out.push_str(&format!(
                "{:<40} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                path,
                stat.count,
                fmt_ns(stat.total_ns),
                fmt_ns(mean),
                fmt_ns(stat.p50_ns),
                fmt_ns(stat.p90_ns),
                fmt_ns(stat.p99_ns),
            ));
        }
    }

    match baseline {
        None => {
            out.push_str("\ncounters\n");
            if input.counters.is_empty() {
                out.push_str("  (no counters in artifact)\n");
            }
            for (name, value) in &input.counters {
                out.push_str(&format!("{name:<40} {value:>12}\n"));
            }
        }
        Some(base) => {
            out.push_str(&format!("\ncounter deltas (vs {})\n", base.name));
            let mut names: Vec<&String> =
                input.counters.keys().chain(base.counters.keys()).collect();
            names.sort();
            names.dedup();
            if names.is_empty() {
                out.push_str("  (no counters in either artifact)\n");
            }
            for name in names {
                let cur = input.counters.get(name).copied().unwrap_or(0);
                let was = base.counters.get(name).copied().unwrap_or(0);
                let delta = cur - was;
                out.push_str(&format!(
                    "{name:<40} {cur:>12} ({}{delta})\n",
                    if delta >= 0 { "+" } else { "" }
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_manifest() -> Manifest {
        let rec = qtrace::Recorder::new();
        rec.enable();
        rec.add("qcompile/swaps", 12);
        rec.record_span("qcompile/route", Duration::from_micros(300));
        rec.record_span("qcompile/route", Duration::from_micros(500));
        rec.record_span("qcompile/map", Duration::from_micros(200));
        rec.record_span("qsim/apply", Duration::from_micros(900));
        rec.take_manifest("fig09_ip_ic")
    }

    #[test]
    fn manifest_renders_flamegraph_and_hot_paths() {
        let input = parse_input(&sample_manifest().to_json()).unwrap();
        let text = render(&input, 10, None);
        assert!(text.contains("xray: fig09_ip_ic"));
        assert!(text.contains("qcompile"));
        // Child rows are indented under their root segment.
        assert!(text.contains("  route"));
        assert!(text.contains("qcompile/route"));
        assert!(text.contains('#'), "bars rendered");
        assert!(text.contains("qcompile/swaps"));
    }

    #[test]
    fn chrome_trace_round_trip_recovers_spans() {
        let rec = qtrace::Recorder::new();
        rec.enable();
        rec.capture_events(true);
        {
            let outer = rec.span("qcompile/full");
            let inner = outer.child("route");
            std::thread::sleep(Duration::from_millis(2));
            drop(inner);
            drop(outer);
        }
        rec.instant("qcompile/fallback");
        let manifest = rec.take_manifest("roundtrip");
        let trace = qtrace::export::chrome_trace(&manifest);

        let input = parse_input(&trace).unwrap();
        assert_eq!(input.name, "roundtrip");
        assert_eq!(input.spans.len(), 2, "{:?}", input.spans);
        let outer = &input.spans["qcompile/full"];
        let inner = &input.spans["qcompile/full/route"];
        assert_eq!(outer.count, 1);
        assert!(inner.total_ns >= 2_000_000);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(input.counters.get("qcompile/fallback"), Some(&1));

        let text = render(&input, 5, None);
        assert!(text.contains("full"));
    }

    #[test]
    fn counter_deltas_against_baseline() {
        let base = from_manifest(&sample_manifest());
        let rec = qtrace::Recorder::new();
        rec.enable();
        rec.add("qcompile/swaps", 20);
        rec.add("qcompile/fallbacks", 2);
        let cur = from_manifest(&rec.take_manifest("fig09_ip_ic"));
        let text = render(&cur, 5, Some(&base));
        assert!(text.contains("counter deltas"));
        assert!(text.contains("(+8)"), "{text}");
        assert!(text.contains("(+2)"), "{text}");
    }

    #[test]
    fn tenant_filter_keeps_only_that_tenants_series() {
        let rec = qtrace::Recorder::new();
        rec.enable();
        rec.add("qserve/tenant/0/requests", 10);
        rec.add("qserve/tenant/1/requests", 20);
        rec.add("qserve/requests", 30);
        rec.record_span("qserve/tenant/1/e2e", Duration::from_micros(5));
        rec.record_span("qcompile/route", Duration::from_micros(5));
        let input = from_manifest(&rec.take_manifest("serve_load"));

        let one = filter_tenant(&input, 1);
        assert_eq!(one.name, "serve_load (tenant 1)");
        assert_eq!(one.counters.len(), 1);
        assert_eq!(one.counters["qserve/tenant/1/requests"], 20);
        assert_eq!(one.spans.len(), 1);
        assert!(one.spans.contains_key("qserve/tenant/1/e2e"));

        // Deltas against a filtered baseline stay per-tenant.
        let text = render(&one, 5, Some(&filter_tenant(&input, 1)));
        assert!(text.contains("counter deltas (vs serve_load (tenant 1))"));
        assert!(text.contains("(+0)"));
        assert!(!text.contains("tenant/0"), "{text}");
    }

    #[test]
    fn unrecognized_artifact_errors() {
        assert!(parse_input("{\"nope\": 1}").is_err());
        assert!(parse_input("not json").is_err());
    }
}
