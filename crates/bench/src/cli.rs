//! Shared command-line handling for the figure binaries.
//!
//! Every `fig*` driver historically took bare positional arguments
//! (instance counts, shot counts). This module keeps that contract and
//! adds the telemetry flag all drivers share:
//!
//! * `--manifest <path>` (or `--manifest=<path>`) — enable the global
//!   [`qtrace`] recorder for the run and write the drained run manifest
//!   to `<path>` when the driver finishes.
//!
//! Positional arguments keep their old positions regardless of where the
//! flag appears.

use std::path::{Path, PathBuf};

/// Parsed driver arguments: positionals plus the shared telemetry flag.
#[derive(Debug, Clone)]
pub struct Cli {
    figure: String,
    positional: Vec<String>,
    manifest: Option<PathBuf>,
}

impl Cli {
    /// Parses `std::env::args()` for the driver named `figure` (the name
    /// stamped into the manifest). Enables the global `qtrace` recorder
    /// when `--manifest` is present.
    ///
    /// Exits with status 2 on a malformed flag (missing value or unknown
    /// `--` option), printing the usage hint to stderr.
    pub fn parse(figure: &str) -> Cli {
        match Cli::from_args(figure, std::env::args().skip(1).collect()) {
            Ok(cli) => {
                if cli.manifest.is_some() {
                    qtrace::enable();
                }
                cli
            }
            Err(message) => {
                eprintln!("{figure}: {message}");
                eprintln!("usage: {figure} [positional args…] [--manifest <path>]");
                std::process::exit(2);
            }
        }
    }

    /// Flag-parsing core, separated from process concerns for testing.
    pub fn from_args(figure: &str, args: Vec<String>) -> Result<Cli, String> {
        let mut positional = Vec::new();
        let mut manifest = None;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if arg == "--manifest" {
                let path = iter
                    .next()
                    .ok_or_else(|| "--manifest requires a path".to_owned())?;
                manifest = Some(PathBuf::from(path));
            } else if let Some(path) = arg.strip_prefix("--manifest=") {
                manifest = Some(PathBuf::from(path));
            } else if arg.starts_with("--") {
                return Err(format!("unknown option '{arg}'"));
            } else {
                positional.push(arg);
            }
        }
        Ok(Cli {
            figure: figure.to_owned(),
            positional,
            manifest,
        })
    }

    /// The `idx`-th positional argument parsed as `usize`, or `default`
    /// when absent or unparsable (the drivers' historical behavior).
    pub fn pos_usize(&self, idx: usize, default: usize) -> usize {
        self.positional
            .get(idx)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Like [`Cli::pos_usize`] for `u32` arguments (trajectory counts).
    pub fn pos_u32(&self, idx: usize, default: u32) -> u32 {
        self.positional
            .get(idx)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Like [`Cli::pos_usize`] for `u64` arguments (shot counts).
    pub fn pos_u64(&self, idx: usize, default: u64) -> u64 {
        self.positional
            .get(idx)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Where the run manifest will be written, if requested.
    pub fn manifest_path(&self) -> Option<&Path> {
        self.manifest.as_deref()
    }

    /// Drains the global recorder into a manifest named after the driver
    /// and writes it to the `--manifest` path. No-op without the flag.
    /// Call this last, after all instrumented work.
    pub fn write_manifest(&self) {
        let Some(path) = self.manifest.as_deref() else {
            return;
        };
        let manifest = qtrace::take(&self.figure);
        match manifest.save(path) {
            Ok(()) => println!("[wrote manifest {}]", path.display()),
            Err(e) => {
                eprintln!("[could not write manifest {}: {e}]", path.display());
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_survive_flag_interleaving() {
        let cli = Cli::from_args("fig", args(&["12", "--manifest", "m.json", "34"])).unwrap();
        assert_eq!(cli.pos_usize(0, 0), 12);
        assert_eq!(cli.pos_usize(1, 0), 34);
        assert_eq!(cli.pos_usize(2, 77), 77, "absent positional falls back");
        assert_eq!(cli.manifest_path(), Some(Path::new("m.json")));
    }

    #[test]
    fn equals_form_and_absence() {
        let cli = Cli::from_args("fig", args(&["--manifest=out/x.json"])).unwrap();
        assert_eq!(cli.manifest_path(), Some(Path::new("out/x.json")));
        let cli = Cli::from_args("fig", args(&["5"])).unwrap();
        assert_eq!(cli.manifest_path(), None);
        assert_eq!(cli.pos_u32(0, 1), 5);
        assert_eq!(cli.pos_u64(0, 1), 5);
    }

    #[test]
    fn malformed_flags_error() {
        assert!(Cli::from_args("fig", args(&["--manifest"])).is_err());
        assert!(Cli::from_args("fig", args(&["--bogus"])).is_err());
    }

    #[test]
    fn unparsable_positionals_fall_back() {
        let cli = Cli::from_args("fig", args(&["abc"])).unwrap();
        assert_eq!(cli.pos_usize(0, 9), 9);
    }
}
