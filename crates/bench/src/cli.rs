//! Shared command-line handling for the figure binaries.
//!
//! Every `fig*` driver historically took bare positional arguments
//! (instance counts, shot counts). This module keeps that contract and
//! adds the telemetry flags all drivers share:
//!
//! * `--manifest <path>` (or `--manifest=<path>`) — enable the global
//!   [`qtrace`] recorder for the run and write the drained run manifest
//!   to `<path>` when the driver finishes.
//! * `--trace <path>` (or `--trace=<path>`) — additionally capture the
//!   event timeline and export it as Chrome Trace Format JSON, loadable
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! * `--help` / `-h` — print the unified usage string and exit 0.
//!
//! Positional arguments keep their old positions regardless of where the
//! flags appear. Both output flags drain the recorder exactly once, so a
//! run may request the manifest, the trace, or both.

use std::path::{Path, PathBuf};

/// Parsed driver arguments: positionals plus the shared telemetry flags.
#[derive(Debug, Clone)]
pub struct Cli {
    figure: String,
    positional: Vec<String>,
    manifest: Option<PathBuf>,
    trace: Option<PathBuf>,
    /// Driver-specific boolean flags that were present, stored without
    /// the `--` prefix (see [`Cli::parse_with_flags`]).
    flags: Vec<String>,
    /// Driver-specific valued options (`--name <value>` or
    /// `--name=<value>`), stored without the `--` prefix (see
    /// [`Cli::parse_with_options`]).
    options: Vec<(String, String)>,
}

/// The unified usage string every driver prints (`--help` on stdout,
/// malformed-flag errors on stderr).
pub fn usage(figure: &str) -> String {
    format!(
        "usage: {figure} [positional args…] [--manifest <path>] [--trace <path>]\n\
         \n\
         options:\n\
         \x20 --manifest <path>  enable telemetry; write the qtrace run manifest to <path>\n\
         \x20 --trace <path>     also capture the event timeline; write Chrome Trace Format\n\
         \x20                    JSON to <path> (open in Perfetto or chrome://tracing)\n\
         \x20 -h, --help         print this help and exit"
    )
}

impl Cli {
    /// Parses `std::env::args()` for the driver named `figure` (the name
    /// stamped into the manifest). Enables the global `qtrace` recorder
    /// when `--manifest` or `--trace` is present; `--trace` additionally
    /// turns on event capture.
    ///
    /// Prints the usage string and exits 0 on `--help`/`-h`. Exits with
    /// status 2 on a malformed flag (missing value or unknown `--`
    /// option), printing the usage hint to stderr.
    pub fn parse(figure: &str) -> Cli {
        Cli::parse_with_flags(figure, &[])
    }

    /// Like [`Cli::parse`], additionally accepting the listed boolean
    /// flags (named without the `--` prefix). A present flag is readable
    /// through [`Cli::flag`]; any other `--` option still errors.
    pub fn parse_with_flags(figure: &str, allowed_flags: &[&str]) -> Cli {
        Cli::parse_with_options(figure, allowed_flags, &[])
    }

    /// Like [`Cli::parse_with_flags`], additionally accepting the listed
    /// valued options (`--name <value>` or `--name=<value>`, named
    /// without the `--` prefix). A present option's value is readable
    /// through [`Cli::opt`].
    pub fn parse_with_options(figure: &str, allowed_flags: &[&str], allowed_opts: &[&str]) -> Cli {
        match Cli::from_args_full(
            figure,
            std::env::args().skip(1).collect(),
            allowed_flags,
            allowed_opts,
        ) {
            Ok(None) => {
                println!("{}", usage(figure));
                std::process::exit(0);
            }
            Ok(Some(cli)) => {
                if cli.manifest.is_some() || cli.trace.is_some() {
                    qtrace::enable();
                }
                if cli.trace.is_some() {
                    qtrace::global().capture_events(true);
                }
                cli
            }
            Err(message) => {
                eprintln!("{figure}: {message}");
                eprintln!("{}", usage(figure));
                std::process::exit(2);
            }
        }
    }

    /// Flag-parsing core, separated from process concerns for testing.
    /// `Ok(None)` means `--help` was requested.
    pub fn from_args(figure: &str, args: Vec<String>) -> Result<Option<Cli>, String> {
        Cli::from_args_with(figure, args, &[])
    }

    /// [`Cli::from_args`] with driver-specific boolean flags allowed.
    pub fn from_args_with(
        figure: &str,
        args: Vec<String>,
        allowed_flags: &[&str],
    ) -> Result<Option<Cli>, String> {
        Cli::from_args_full(figure, args, allowed_flags, &[])
    }

    /// [`Cli::from_args_with`] with driver-specific valued options
    /// allowed as well.
    pub fn from_args_full(
        figure: &str,
        args: Vec<String>,
        allowed_flags: &[&str],
        allowed_opts: &[&str],
    ) -> Result<Option<Cli>, String> {
        let mut positional = Vec::new();
        let mut manifest = None;
        let mut trace = None;
        let mut flags = Vec::new();
        let mut options: Vec<(String, String)> = Vec::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if arg == "--help" || arg == "-h" {
                return Ok(None);
            } else if let Some(name) = arg
                .strip_prefix("--")
                .filter(|name| allowed_flags.contains(name))
            {
                if !flags.iter().any(|f| f == name) {
                    flags.push(name.to_owned());
                }
            } else if let Some(name) = arg
                .strip_prefix("--")
                .filter(|name| allowed_opts.contains(name))
            {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                options.retain(|(n, _)| n != name);
                options.push((name.to_owned(), value));
            } else if let Some((name, value)) = arg
                .strip_prefix("--")
                .and_then(|rest| rest.split_once('='))
                .filter(|(name, _)| allowed_opts.contains(name))
            {
                options.retain(|(n, _)| n != name);
                options.push((name.to_owned(), value.to_owned()));
            } else if arg == "--manifest" {
                let path = iter
                    .next()
                    .ok_or_else(|| "--manifest requires a path".to_owned())?;
                manifest = Some(PathBuf::from(path));
            } else if let Some(path) = arg.strip_prefix("--manifest=") {
                manifest = Some(PathBuf::from(path));
            } else if arg == "--trace" {
                let path = iter
                    .next()
                    .ok_or_else(|| "--trace requires a path".to_owned())?;
                trace = Some(PathBuf::from(path));
            } else if let Some(path) = arg.strip_prefix("--trace=") {
                trace = Some(PathBuf::from(path));
            } else if arg.starts_with("--") {
                return Err(format!("unknown option '{arg}'"));
            } else {
                positional.push(arg);
            }
        }
        Ok(Some(Cli {
            figure: figure.to_owned(),
            positional,
            manifest,
            trace,
            flags,
            options,
        }))
    }

    /// Whether the boolean flag `name` (without `--`) was present. Only
    /// flags listed in [`Cli::parse_with_flags`] can ever be present.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of the valued option `name` (without `--`), if present.
    /// Only options listed in [`Cli::parse_with_options`] can ever be
    /// present; the last occurrence wins.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `idx`-th positional argument parsed as `usize`, or `default`
    /// when absent or unparsable (the drivers' historical behavior).
    pub fn pos_usize(&self, idx: usize, default: usize) -> usize {
        self.positional
            .get(idx)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Like [`Cli::pos_usize`] for `u32` arguments (trajectory counts).
    pub fn pos_u32(&self, idx: usize, default: u32) -> u32 {
        self.positional
            .get(idx)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Like [`Cli::pos_usize`] for `u64` arguments (shot counts).
    pub fn pos_u64(&self, idx: usize, default: u64) -> u64 {
        self.positional
            .get(idx)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Where the run manifest will be written, if requested.
    pub fn manifest_path(&self) -> Option<&Path> {
        self.manifest.as_deref()
    }

    /// Where the Chrome Trace Format export will be written, if requested.
    pub fn trace_path(&self) -> Option<&Path> {
        self.trace.as_deref()
    }

    /// Drains the global recorder into a manifest named after the driver
    /// and writes the requested artifacts: the manifest to `--manifest`
    /// and the Chrome Trace Format export to `--trace`. The recorder is
    /// drained exactly once; both files come from the same manifest.
    /// No-op without either flag. Call this last, after all instrumented
    /// work.
    pub fn write_manifest(&self) {
        if self.manifest.is_none() && self.trace.is_none() {
            return;
        }
        let manifest = qtrace::take(&self.figure);
        if let Some(path) = self.manifest.as_deref() {
            match manifest.save(path) {
                Ok(()) => println!("[wrote manifest {}]", path.display()),
                Err(e) => {
                    eprintln!("[could not write manifest {}: {e}]", path.display());
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = self.trace.as_deref() {
            match qtrace::export::save_chrome_trace(&manifest, path) {
                Ok(()) => println!("[wrote trace {}]", path.display()),
                Err(e) => {
                    eprintln!("[could not write trace {}: {e}]", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn parse(figure: &str, list: &[&str]) -> Cli {
        Cli::from_args(figure, args(list))
            .expect("well-formed args")
            .expect("not a help request")
    }

    #[test]
    fn positionals_survive_flag_interleaving() {
        let cli = parse("fig", &["12", "--manifest", "m.json", "34"]);
        assert_eq!(cli.pos_usize(0, 0), 12);
        assert_eq!(cli.pos_usize(1, 0), 34);
        assert_eq!(cli.pos_usize(2, 77), 77, "absent positional falls back");
        assert_eq!(cli.manifest_path(), Some(Path::new("m.json")));
    }

    #[test]
    fn equals_form_and_absence() {
        let cli = parse("fig", &["--manifest=out/x.json"]);
        assert_eq!(cli.manifest_path(), Some(Path::new("out/x.json")));
        let cli = parse("fig", &["5"]);
        assert_eq!(cli.manifest_path(), None);
        assert_eq!(cli.trace_path(), None);
        assert_eq!(cli.pos_u32(0, 1), 5);
        assert_eq!(cli.pos_u64(0, 1), 5);
    }

    #[test]
    fn trace_flag_both_forms() {
        let cli = parse("fig", &["--trace", "t.json", "7"]);
        assert_eq!(cli.trace_path(), Some(Path::new("t.json")));
        assert_eq!(cli.pos_usize(0, 0), 7);
        let cli = parse("fig", &["--trace=out/t.json", "--manifest=m.json"]);
        assert_eq!(cli.trace_path(), Some(Path::new("out/t.json")));
        assert_eq!(cli.manifest_path(), Some(Path::new("m.json")));
    }

    #[test]
    fn help_is_recognized_in_any_position() {
        assert!(Cli::from_args("fig", args(&["--help"])).unwrap().is_none());
        assert!(Cli::from_args("fig", args(&["-h"])).unwrap().is_none());
        assert!(Cli::from_args("fig", args(&["3", "--help", "4"]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn usage_names_every_flag() {
        let text = usage("fig09_ip_ic");
        assert!(text.starts_with("usage: fig09_ip_ic"));
        for needle in ["--manifest", "--trace", "--help"] {
            assert!(text.contains(needle), "usage lacks {needle}");
        }
    }

    #[test]
    fn malformed_flags_error() {
        assert!(Cli::from_args("fig", args(&["--manifest"])).is_err());
        assert!(Cli::from_args("fig", args(&["--trace"])).is_err());
        assert!(Cli::from_args("fig", args(&["--bogus"])).is_err());
    }

    #[test]
    fn boolean_flags_are_opt_in_per_driver() {
        // Without an allowance the flag is still an error.
        assert!(Cli::from_args("fig", args(&["--quick"])).is_err());

        let cli = Cli::from_args_with(
            "fig",
            args(&["--quick", "7", "--manifest=m.json"]),
            &["quick"],
        )
        .expect("well-formed")
        .expect("not help");
        assert!(cli.flag("quick"));
        assert!(!cli.flag("deep"));
        assert_eq!(cli.pos_usize(0, 0), 7);
        assert_eq!(cli.manifest_path(), Some(Path::new("m.json")));

        // Absent flag reads false; unknown flags still error even with
        // an allowance in place.
        let cli = Cli::from_args_with("fig", args(&["7"]), &["quick"])
            .expect("well-formed")
            .expect("not help");
        assert!(!cli.flag("quick"));
        assert!(Cli::from_args_with("fig", args(&["--bogus"]), &["quick"]).is_err());
    }

    #[test]
    fn unparsable_positionals_fall_back() {
        let cli = parse("fig", &["abc"]);
        assert_eq!(cli.pos_usize(0, 9), 9);
    }

    #[test]
    fn valued_options_are_opt_in_per_driver() {
        // Without an allowance the option is an error.
        assert!(Cli::from_args("fig", args(&["--journal", "j.jsonl"])).is_err());

        let cli = Cli::from_args_full(
            "fig",
            args(&["--quick", "--journal", "j.jsonl", "7"]),
            &["quick"],
            &["journal"],
        )
        .expect("well-formed")
        .expect("not help");
        assert!(cli.flag("quick"));
        assert_eq!(cli.opt("journal"), Some("j.jsonl"));
        assert_eq!(cli.opt("absent"), None);
        assert_eq!(cli.pos_usize(0, 0), 7);

        // Equals form works and the last occurrence wins.
        let cli = Cli::from_args_full(
            "fig",
            args(&["--journal=a.jsonl", "--journal=b.jsonl"]),
            &[],
            &["journal"],
        )
        .expect("well-formed")
        .expect("not help");
        assert_eq!(cli.opt("journal"), Some("b.jsonl"));

        // A missing value is a parse error, not a silent skip.
        assert!(Cli::from_args_full("fig", args(&["--journal"]), &[], &["journal"]).is_err());
    }
}
