//! Seeded load generator for the `qserve` compile service.
//!
//! Drives a [`qserve::Service`] with a replayable fig09-class request
//! stream: 20-node Erdős–Rényi and 3-regular MaxCut instances on
//! ibmq_20_tokyo, parametric specs, all four paper configurations
//! (QAIM/IP/IC/VIC), skewed 80/20 key popularity, multi-tenant request
//! tagging, and one mid-run calibration hot-reload. Every admission
//! decision the service makes is deterministic for a fixed
//! [`LoadConfig`] (see the `qserve` crate docs), so the counter side of
//! the run — hits, misses, evictions, sheds, invalidations, the
//! admission-sequence fingerprint — is byte-reproducible across machines
//! *and worker counts*; only wall-clock throughput and latency vary.
//!
//! The cache is sized **below** the key universe on purpose
//! ([`LoadConfig::cache_slack`] entries short), so the cold tail
//! continuously exercises LRU eviction while the hot set stays resident
//! — a cached-serving workload, not a no-op loop.

use std::time::Instant;

use qaoa::MaxCut;
use qcompile::{CompileOptions, QaoaSpec};
use qhw::{Calibration, Topology};
use qserve::{Outcome, Request, Service, ServiceConfig, ServiceStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workloads::{instances, Family};

/// One load-generator run, fully determined by its field values.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Requests in the main (measured) phase.
    pub requests: usize,
    /// Problem instances per family (key universe scale).
    pub instances_per_family: usize,
    /// QAOA levels 1..=max_p per instance.
    pub max_p: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Tenant queues; requests tag tenants round-robin-randomly.
    pub tenants: usize,
    /// How many entries *fewer* than the key universe the cache holds
    /// (forces deterministic LRU churn on the cold tail).
    pub cache_slack: usize,
    /// Master seed of the request schedule and calibrations.
    pub seed: u64,
    /// Request index at which the calibration hot-reload fires (`None`
    /// skips the reload phase).
    pub reload_at: Option<usize>,
    /// Pre-compile the whole key universe before the measured phase.
    pub warm: bool,
    /// Capture the ops plane (lifecycle log + journal). Off only for
    /// the overhead guard's baseline leg.
    pub ops_capture: bool,
}

impl LoadConfig {
    /// The CI-gated quick configuration (32-key universe).
    pub fn quick() -> LoadConfig {
        LoadConfig {
            requests: 4_000,
            instances_per_family: 2,
            max_p: 2,
            workers: 4,
            tenants: 4,
            cache_slack: 4,
            seed: 0x5EED_1009,
            reload_at: Some(2_000),
            warm: true,
            ops_capture: true,
        }
    }

    /// The full committed-baseline configuration (48-key universe).
    pub fn full() -> LoadConfig {
        LoadConfig {
            requests: 40_000,
            instances_per_family: 3,
            max_p: 2,
            workers: 4,
            tenants: 4,
            cache_slack: 6,
            seed: 0x5EED_1009,
            reload_at: Some(20_000),
            warm: true,
            ops_capture: true,
        }
    }
}

/// What one run produced: the deterministic counter side (gated in CI)
/// plus the wall-clock side (reported, never gated).
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// Snapshot of the service counters after the run.
    pub stats: ServiceStats,
    /// Distinct keys in the request universe.
    pub keys: usize,
    /// Requests in the measured phase (excludes warm-up).
    pub measured_requests: usize,
    /// `hits / measured requests` of the measured phase.
    pub hit_rate: f64,
    /// Measured-phase requests per second.
    pub throughput_rps: f64,
    /// Measured-phase wall time, seconds.
    pub wall_s: f64,
    /// Exact latency quantiles over every measured request, microseconds.
    pub p50_us: f64,
    /// 90th percentile, microseconds.
    pub p90_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Requests whose artifact arrived via shedding.
    pub outcome_shed: u64,
    /// The rendered ops journal (deterministic JSON lines; empty when
    /// [`LoadConfig::ops_capture`] is off).
    pub journal: String,
    /// The rendered request lifecycle log (deterministic JSON lines).
    pub lifecycle: String,
    /// Lifecycle records captured (== admitted requests when capture is
    /// on and nothing was dropped).
    pub lifecycle_records: u64,
    /// Lifecycle records that reached exactly one terminal stage.
    pub lifecycle_terminals: u64,
    /// Lifecycle records lost to the capacity bound (0 in baselines).
    pub lifecycle_dropped: u64,
}

fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    // Nearest-rank, matching qtrace's manifest quantiles.
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e3
}

/// Runs one seeded load-generation campaign against a fresh service.
pub fn run_load(cfg: &LoadConfig) -> LoadOutcome {
    let topo = Topology::ibmq_20_tokyo();
    let mut cal_rng = StdRng::seed_from_u64(cfg.seed ^ 0xCA11_B8A7E);
    let calibration = Calibration::random_normal(&topo, 2e-2, 8e-3, &mut cal_rng);
    let reload_calibration = calibration.drifted(0.5, &mut cal_rng);

    // The fig09-class key universe: every (instance, p, configuration)
    // combination is one cacheable compile product.
    let mut keys: Vec<(QaoaSpec, CompileOptions)> = Vec::new();
    for family in [Family::ErdosRenyi(0.3), Family::Regular(3)] {
        for graph in instances(family, 20, cfg.instances_per_family, 9301) {
            let problem = MaxCut::without_optimum(graph);
            for p in 1..=cfg.max_p {
                let spec = QaoaSpec::from_maxcut_parametric(&problem, p, true);
                for options in [
                    CompileOptions::qaim_only(),
                    CompileOptions::ip(),
                    CompileOptions::ic(),
                    CompileOptions::vic(),
                ] {
                    keys.push((spec.clone(), options));
                }
            }
        }
    }

    let service = Service::new(
        topo,
        Some(calibration),
        ServiceConfig {
            workers: cfg.workers,
            cache_capacity: keys.len().saturating_sub(cfg.cache_slack).max(1),
            queue_capacity: 4096,
            tenants: cfg.tenants,
            ops: qserve::OpsConfig {
                lifecycle: cfg.ops_capture,
                journal: cfg.ops_capture,
                ..qserve::OpsConfig::default()
            },
            ..ServiceConfig::default()
        },
    );

    if cfg.warm {
        for (i, (spec, options)) in keys.iter().enumerate() {
            service.warm(Request::new(
                (i % cfg.tenants) as u32,
                spec.clone(),
                *options,
                cfg.seed.wrapping_add(i as u64),
            ));
        }
    }

    // 80/20 popularity: a fifth of the keys take 80% of the traffic.
    let hot = (keys.len() / 5).max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        if cfg.reload_at == Some(i) {
            service.reload_calibration(Some(reload_calibration.clone()));
        }
        let key_idx = if rng.gen_bool(0.8) {
            rng.gen_range(0..hot)
        } else {
            rng.gen_range(0..keys.len())
        };
        let (spec, options) = &keys[key_idx];
        let request = Request::new(
            rng.gen_range(0..cfg.tenants as u32),
            spec.clone(),
            *options,
            cfg.seed.wrapping_add(key_idx as u64),
        );
        tickets.push(service.submit(request));
    }

    let mut shed = 0u64;
    let mut latencies_ns: Vec<u64> = tickets
        .into_iter()
        .map(|ticket| {
            let response = ticket.wait();
            if let Outcome::Shed { .. } = response.outcome {
                shed += 1;
            }
            response
                .result
                .expect("load-generator workload always compiles");
            u64::try_from(response.latency.as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    let wall_s = start.elapsed().as_secs_f64();

    // One lock acquisition for all request latencies, then the service's
    // deterministic gauges, so a `--manifest` run carries the full
    // serving picture.
    qtrace::global().record_spans("qserve/request", &latencies_ns);
    service.flush_telemetry();

    // Drain the ops plane. Both artifacts are deterministic for a fixed
    // config: the lifecycle log is keyed by admission ordinal and
    // stamped with admission-stream ticks, the journal with occurrence
    // ticks — neither depends on the worker count.
    let journal_events = service.take_journal();
    let traces = service.take_lifecycle();
    let lifecycle_records = traces.len() as u64;
    let lifecycle_terminals = traces
        .iter()
        .filter(|trace| trace.terminal_count() == 1)
        .count() as u64;
    let journal = qserve::render_journal(&journal_events);
    let lifecycle = qserve::render_lifecycle(&traces);
    let lifecycle_dropped = service.lifecycle_dropped();

    latencies_ns.sort_unstable();
    let stats = service.stats();
    let warm_requests = stats.requests - cfg.requests as u64;
    let measured_hits = stats.hits; // warm-up requests never hit: all distinct
    debug_assert_eq!(warm_requests, if cfg.warm { keys.len() as u64 } else { 0 });
    LoadOutcome {
        stats,
        keys: keys.len(),
        measured_requests: cfg.requests,
        hit_rate: measured_hits as f64 / cfg.requests as f64,
        throughput_rps: cfg.requests as f64 / wall_s,
        wall_s,
        p50_us: quantile_us(&latencies_ns, 0.50),
        p90_us: quantile_us(&latencies_ns, 0.90),
        p99_us: quantile_us(&latencies_ns, 0.99),
        outcome_shed: shed,
        journal,
        lifecycle,
        lifecycle_records,
        lifecycle_terminals,
        lifecycle_dropped,
    }
}
