//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§V). See DESIGN.md for the experiment index.
//!
//! Each `fig*` binary in `src/bin/` prints the rows/series of one paper
//! artifact; the Criterion benches in `benches/` cover the
//! compilation-time claims. The helpers here keep workload generation and
//! statistics consistent across all of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod qstat;
pub mod quality;
pub mod regress;
pub mod report;
pub mod servechaos;
pub mod serveload;
pub mod simbench;
pub mod stats;
pub mod workloads;
pub mod xray;

use qaoa::{MaxCut, QaoaParams};
use qcompile::QaoaSpec;

/// Builds the p=1 QAOA-MaxCut spec the compilation experiments use.
///
/// Compilation quality is independent of the specific angles, so a fixed
/// representative `(γ, β)` is used; the ARG experiments optimize their own
/// parameters instead.
pub fn compilation_spec(graph: qgraph::Graph, measure: bool) -> QaoaSpec {
    let problem = MaxCut::without_optimum(graph);
    QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.9, 0.35), measure)
}
