//! `qstat` — render the `qserve` ops plane as a per-tenant text
//! dashboard.
//!
//! Usage:
//!
//! ```text
//! qstat <manifest.json> [--journal <path>] [--tenant <id>] [--top 8]
//! ```
//!
//! The manifest is a qtrace run artifact (`--manifest` output of
//! `serve_load`/`serve_chaos`) carrying the `qserve/` series family;
//! the optional journal is the matching `--journal` JSON-lines file.
//! `--tenant` narrows the dashboard (and the journal tallies) to one
//! tenant; `--top` caps the hot-spec table. Exit status: 0 on success,
//! 2 on usage/parse errors.

use std::path::PathBuf;
use std::process::ExitCode;

use bench::qstat::{dashboard, journal_tallies, render};
use qtrace::Manifest;

struct Args {
    manifest: PathBuf,
    journal: Option<PathBuf>,
    tenant: Option<u32>,
    top: usize,
}

fn usage_text() -> String {
    "usage: qstat <manifest.json> [--journal <path>] [--tenant <id>] [--top 8]\n\
     \n\
     options:\n\
     \x20 --journal <path>  tally the ops journal (JSON lines) alongside\n\
     \x20 --tenant <id>     show one tenant only (filters journal tallies too)\n\
     \x20 --top <n>         how many hot specs to list (default 8)\n\
     \x20 -h, --help        print this help and exit"
        .to_owned()
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut journal = None;
    let mut tenant = None;
    let mut top = 8;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            "--journal" => {
                let Some(p) = iter.next() else { usage() };
                journal = Some(PathBuf::from(p));
            }
            "--tenant" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                tenant = Some(v);
            }
            "--top" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                top = v;
            }
            _ if arg.starts_with("--") => usage(),
            _ => positional.push(PathBuf::from(arg)),
        }
    }
    if positional.len() != 1 || top == 0 {
        usage();
    }
    Args {
        manifest: positional.pop().expect("len checked"),
        journal,
        tenant,
        top,
    }
}

fn read(path: &PathBuf) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("qstat: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let manifest = match Manifest::from_json(&read(&args.manifest)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("qstat: {}: bad manifest: {e}", args.manifest.display());
            std::process::exit(2);
        }
    };
    let tallies = args.journal.as_ref().map(|path| {
        match journal_tallies(&read(path), args.tenant) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("qstat: {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    });
    let dash = dashboard(&manifest);
    print!("{}", render(&dash, tallies.as_ref(), args.tenant, args.top));
    ExitCode::SUCCESS
}
