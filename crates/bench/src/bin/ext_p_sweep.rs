//! Extension experiment: multi-level QAOA (p = 1…4).
//!
//! §II notes that "QAOA performance improves with added levels in the
//! PQC"; the compilation cost grows linearly in p (each level contributes
//! one commuting CPHASE block). This binary measures both sides:
//!
//! 1. the optimized expectation ratio versus p (12-node instances, exact
//!    simulation), and
//! 2. the compiled circuit cost versus p under IC(+QAIM) on
//!    ibmq_20_tokyo.
//!
//! Usage: `ext_p_sweep [instances] [--manifest <path>] [--trace <path>]` (default 3).

use bench::cli::Cli;
use bench::stats::mean;
use bench::workloads::{instances, Family};
use qaoa::MaxCut;
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("ext_p_sweep");
    let count = cli.pos_usize(0, 3);
    let topo = Topology::ibmq_20_tokyo();

    println!("=== Extension: QAOA level sweep ({count} 12-node 3-regular instances) ===");
    println!(
        "{:<4} {:>14} {:>10} {:>10} {:>10} {:>12}",
        "p", "approx ratio", "depth", "gates", "swaps", "compile"
    );
    for p in 1..=4usize {
        let mut ratios = Vec::new();
        let mut depths = Vec::new();
        let mut gates = Vec::new();
        let mut swaps = Vec::new();
        let mut times = Vec::new();
        for (gi, g) in instances(Family::Regular(3), 12, count, 30_001)
            .into_iter()
            .enumerate()
        {
            let problem = MaxCut::new(g);
            let (params, expectation) = qaoa::optimize::grid_then_nelder_mead(&problem, p, 16);
            ratios.push(expectation / problem.max_value());
            let spec = QaoaSpec::from_maxcut(&problem, &params, true);
            let mut rng = StdRng::seed_from_u64(30_100 + gi as u64);
            let c = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);
            depths.push(c.depth() as f64);
            gates.push(c.gate_count() as f64);
            swaps.push(c.swap_count() as f64);
            times.push(c.elapsed().as_secs_f64());
        }
        println!(
            "{:<4} {:>14.4} {:>10.1} {:>10.1} {:>10.1} {:>10.1}us",
            p,
            mean(&ratios),
            mean(&depths),
            mean(&gates),
            mean(&swaps),
            mean(&times) * 1e6
        );
    }
    println!("\n(expectation ratio rises monotonically with p; compiled cost grows ~linearly)");
    cli.write_manifest();
}
