//! Figure 7: NAIVE vs GreedyV vs QAIM — depth and gate-count ratios on
//! 20-node Erdős–Rényi (edge prob 0.1–0.6) and regular (3–8 edges/node)
//! MaxCut-QAOA instances, ibmq_20_tokyo target.
//!
//! Usage: `fig07_qaim [instances-per-bar] [--manifest <path>] [--trace <path>]`
//! (paper: 50 instances/bar; default 50).

use bench::cli::Cli;
use bench::report::Report;
use bench::stats::{mean, ratio_of_means, row};
use bench::workloads::{instances, Family, ER_PROBABILITIES, REGULAR_DEGREES};
use qcompile::{
    compile_batch, default_workers, BatchJob, Compilation, CompileOptions, InitialMapping,
};
use qhw::{HardwareContext, Topology};

fn main() {
    let cli = Cli::parse("fig07_qaim");
    let count = cli.pos_usize(0, 50);
    let topo = Topology::ibmq_20_tokyo();
    let context = HardwareContext::new(topo.clone());
    let workers = default_workers();
    let n = 20;

    let strategies = [
        ("naive", CompileOptions::naive()),
        (
            "greedyv",
            CompileOptions::new(InitialMapping::GreedyV, Compilation::RandomOrder),
        ),
        (
            "dense",
            CompileOptions::new(InitialMapping::Dense, Compilation::RandomOrder),
        ),
        ("qaim", CompileOptions::qaim_only()),
    ];

    println!(
        "=== Figure 7: initial mapping quality (n={n}, {count} instances/bar, {}) ===",
        topo.name()
    );
    let mut report = Report::new("fig07_qaim");
    for (title, families) in [
        (
            "erdos-renyi",
            ER_PROBABILITIES.map(Family::ErdosRenyi).to_vec(),
        ),
        ("regular", REGULAR_DEGREES.map(Family::Regular).to_vec()),
    ] {
        println!("\n-- {title} graphs --");
        println!(
            "{:<18} {:>11} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "family",
            "naive depth",
            "greedy D",
            "dense D",
            "qaim D",
            "greedy G",
            "dense G",
            "qaim G"
        );
        for family in families {
            // One batch per family: every (instance, strategy) pair is an
            // independent job with the same per-instance seed the serial
            // loop used, so results are unchanged — just parallel.
            let jobs: Vec<BatchJob> = instances(family, n, count, 7001)
                .into_iter()
                .enumerate()
                .flat_map(|(gi, g)| {
                    let spec = bench::compilation_spec(g, true);
                    strategies
                        .iter()
                        .map(move |(_, options)| {
                            BatchJob::new(spec.clone(), *options, 9000 + gi as u64)
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let compiled = compile_batch(&context, &jobs, workers);

            let mut depths = vec![Vec::new(); strategies.len()];
            let mut gates = vec![Vec::new(); strategies.len()];
            for (ji, result) in compiled.into_iter().enumerate() {
                let c = result.expect("figure workloads compile");
                let si = ji % strategies.len();
                depths[si].push(c.depth() as f64);
                gates[si].push(c.gate_count() as f64);
            }
            for (si, (name, _)) in strategies.iter().enumerate() {
                report.add(format!("{family}/{name}/depth"), &depths[si]);
                report.add(format!("{family}/{name}/gates"), &gates[si]);
            }
            println!(
                "{}",
                row(
                    &family.to_string(),
                    &[
                        mean(&depths[0]),
                        ratio_of_means(&depths[1], &depths[0]),
                        ratio_of_means(&depths[2], &depths[0]),
                        ratio_of_means(&depths[3], &depths[0]),
                        ratio_of_means(&gates[1], &gates[0]),
                        ratio_of_means(&gates[2], &gates[0]),
                        ratio_of_means(&gates[3], &gates[0]),
                    ],
                )
            );
        }
    }
    println!("\n(lower ratios are better; the paper reports QAIM winning clearly on sparse graphs\n and all approaches converging on dense graphs)");
    report.save_and_announce();
    cli.write_manifest();
}
