//! Figure 7: NAIVE vs GreedyV vs QAIM — depth and gate-count ratios on
//! 20-node Erdős–Rényi (edge prob 0.1–0.6) and regular (3–8 edges/node)
//! MaxCut-QAOA instances, ibmq_20_tokyo target.
//!
//! Usage: `fig07_qaim [instances-per-bar]` (paper: 50; default 50).

use bench::stats::{mean, ratio_of_means, row};
use bench::workloads::{instances, Family, ER_PROBABILITIES, REGULAR_DEGREES};
use qcompile::{compile, CompileOptions, Compilation, InitialMapping};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let count: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let topo = Topology::ibmq_20_tokyo();
    let n = 20;

    let strategies = [
        ("naive", CompileOptions::naive()),
        (
            "greedyv",
            CompileOptions::new(InitialMapping::GreedyV, Compilation::RandomOrder),
        ),
        (
            "dense",
            CompileOptions::new(InitialMapping::Dense, Compilation::RandomOrder),
        ),
        ("qaim", CompileOptions::qaim_only()),
    ];

    println!("=== Figure 7: initial mapping quality (n={n}, {count} instances/bar, {}) ===", topo.name());
    for (title, families) in [
        (
            "erdos-renyi",
            ER_PROBABILITIES.map(Family::ErdosRenyi).to_vec(),
        ),
        ("regular", REGULAR_DEGREES.map(Family::Regular).to_vec()),
    ] {
        println!("\n-- {title} graphs --");
        println!(
            "{:<18} {:>11} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "family", "naive depth", "greedy D", "dense D", "qaim D", "greedy G", "dense G", "qaim G"
        );
        for family in families {
            let graphs = instances(family, n, count, 7001);
            let mut depths = vec![Vec::new(); strategies.len()];
            let mut gates = vec![Vec::new(); strategies.len()];
            for (gi, g) in graphs.into_iter().enumerate() {
                let spec = bench::compilation_spec(g, true);
                for (si, (_, options)) in strategies.iter().enumerate() {
                    let mut rng = StdRng::seed_from_u64(9000 + gi as u64);
                    let c = compile(&spec, &topo, None, options, &mut rng);
                    depths[si].push(c.depth() as f64);
                    gates[si].push(c.gate_count() as f64);
                }
            }
            println!(
                "{}",
                row(
                    &family.to_string(),
                    &[
                        mean(&depths[0]),
                        ratio_of_means(&depths[1], &depths[0]),
                        ratio_of_means(&depths[2], &depths[0]),
                        ratio_of_means(&depths[3], &depths[0]),
                        ratio_of_means(&gates[1], &gates[0]),
                        ratio_of_means(&gates[2], &gates[0]),
                        ratio_of_means(&gates[3], &gates[0]),
                    ],
                )
            );
        }
    }
    println!("\n(lower ratios are better; the paper reports QAIM winning clearly on sparse graphs\n and all approaches converging on dense graphs)");
}
