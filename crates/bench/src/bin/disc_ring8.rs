//! §VI comparative analysis: IC(+QAIM) on an 8-qubit cyclic (ring)
//! architecture with 8-node Erdős–Rényi graphs of exactly 8 edges — the
//! workload the paper uses to compare against the temporal-planner
//! compiler of Venturelli et al. \[46\].
//!
//! Usage: `disc_ring8 [instances] [--manifest <path>] [--trace <path>]` (paper: 50).

use bench::cli::Cli;
use bench::stats::{mean, row};
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("disc_ring8");
    let count = cli.pos_usize(0, 50);
    let topo = Topology::ring(8);

    let mut depth_naive = Vec::new();
    let mut depth_ic = Vec::new();
    let mut gates_naive = Vec::new();
    let mut gates_ic = Vec::new();
    let mut times = Vec::new();
    for i in 0..count {
        let mut g_rng = StdRng::seed_from_u64(13_000 + i as u64);
        let g = qgraph::generators::connected_gnm(8, 8, 10_000, &mut g_rng)
            .expect("connected G(8, m=8) sample");
        let problem = qaoa::MaxCut::without_optimum(g);
        let spec = QaoaSpec::from_maxcut(&problem, &qaoa::QaoaParams::p1(0.9, 0.35), true);
        let mut rng = StdRng::seed_from_u64(13_500 + i as u64);
        let naive = compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng);
        let ic = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);
        depth_naive.push(naive.depth() as f64);
        depth_ic.push(ic.depth() as f64);
        gates_naive.push(naive.gate_count() as f64);
        gates_ic.push(ic.gate_count() as f64);
        times.push(ic.elapsed().as_secs_f64());
    }

    println!("=== §VI: 8-qubit ring, 8-node/8-edge ER graphs ({count} instances) ===");
    println!(
        "{:<18} {:>10} {:>10} {:>12}",
        "method", "depth", "gates", "compile (s)"
    );
    println!(
        "{}",
        row("naive", &[mean(&depth_naive), mean(&gates_naive), f64::NAN])
    );
    println!(
        "{}",
        row(
            "ic(+qaim)",
            &[mean(&depth_ic), mean(&gates_ic), mean(&times)]
        )
    );
    println!(
        "\n(paper: IC beats the temporal planner [46] by 8.5% depth / 13% gates on this set,\n with compilation far under the planner's 70 s per instance)"
    );
    cli.write_manifest();
}
