//! Parametric compile-once/rebind-many loop benchmark.
//!
//! Simulates the hybrid optimizer driver on the Figure 9 workload class
//! (20-node Erdős–Rényi and regular instances, ibmq_20_tokyo, IC): every
//! iteration must produce a hardware-compliant circuit at fresh `(γ, β)`
//! values. The *recompile* path rebuilds and recompiles the bound
//! program at each parameter point; the *rebind* path compiles the
//! parametric program once ([`qcompile::compile_artifact`]) and
//! substitutes values per iteration ([`qcompile::CompiledArtifact::bind`]).
//! Both paths must produce bit-identical physical circuits — asserted
//! per iteration — and the rebind path must be at least
//! [`SPEEDUP_FLOOR`]× cheaper per iteration, also asserted, so a CI run
//! fails loudly if rebinding ever degenerates into a recompile.
//!
//! Usage: `param_loop [instances-per-family] [iterations] [max-p]
//! [--manifest <path>] [--trace <path>]` (defaults: 3, 8, 2).
//!
//! `BENCH_param_loop.json` carries only the deterministic series
//! (depth, SWAPs, rebound-gate counts) so the regress gate cannot flap
//! on runner timing noise; wall-clock numbers go to stdout, and the
//! `qcompile/rebind*` counters land in the run manifest for the
//! deterministic manifest gate.

use std::time::Instant;

use bench::cli::Cli;
use bench::report::Report;
use bench::workloads::{instances, Family};
use qaoa::{MaxCut, QaoaParams};
use qcompile::{
    try_compile_artifact_with_context, try_compile_with_context, CompileOptions, QaoaSpec,
};
use qhw::{HardwareContext, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimum accepted per-iteration speedup of rebind over recompile.
/// The compile-engine rewrite made recompiling ~4x faster, which
/// narrowed this ratio from ~40x to ~10x; the floor tracks that —
/// rebinding degenerating into a recompile would read ~1x.
const SPEEDUP_FLOOR: f64 = 5.0;

/// A deterministic stand-in for an optimizer trajectory: iteration `i`
/// perturbs every level's `(γ, β)` away from the representative p=1
/// angles, so each rebind sees genuinely fresh values.
fn trajectory(iter: usize, p: usize) -> QaoaParams {
    QaoaParams::new(
        (0..p)
            .map(|k| {
                (
                    0.9 + 0.07 * iter as f64 - 0.11 * k as f64,
                    0.35 - 0.04 * iter as f64 + 0.05 * k as f64,
                )
            })
            .collect(),
    )
}

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Median, robust to the cold-cache first samples of tiny quick-mode
/// runs (the speedup gate uses this, not the mean).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

fn main() {
    let cli = Cli::parse("param_loop");
    let count = cli.pos_usize(0, 3);
    let iters = cli.pos_usize(1, 8);
    let max_p = cli.pos_usize(2, 2);
    let n = 20;
    let context = HardwareContext::new(Topology::ibmq_20_tokyo());
    let options = CompileOptions::ic();

    println!("=== Parametric loop: recompile-per-iteration vs compile-once/rebind ===");
    println!(
        "(n={n}, ibmq_20_tokyo, IC, {count} instances/family, {iters} iterations/instance, p ≤ {max_p})"
    );
    println!(
        "\n{:<12} {:>3} {:>15} {:>17} {:>15} {:>9}",
        "family", "p", "compile-once", "recompile/iter", "rebind/iter", "speedup"
    );

    let mut report = Report::new("param_loop");
    for family in [Family::ErdosRenyi(0.3), Family::Regular(3)] {
        let graphs = instances(family, n, count, 9001);
        for p in 1..=max_p {
            let mut depths = Vec::new();
            let mut swaps = Vec::new();
            let mut rebound_gates = Vec::new();
            let mut compile_once_s = Vec::new();
            let mut recompile_s = Vec::new();
            let mut rebind_s = Vec::new();

            for (gi, g) in graphs.iter().enumerate() {
                let seed = 9200 + gi as u64;
                let problem = MaxCut::without_optimum(g.clone());
                let spec = QaoaSpec::from_maxcut_parametric(&problem, p, true);

                let start = Instant::now();
                let artifact = try_compile_artifact_with_context(
                    &spec,
                    &context,
                    &options,
                    &mut StdRng::seed_from_u64(seed),
                )
                .expect("figure workloads compile");
                compile_once_s.push(start.elapsed().as_secs_f64());

                // One untimed warmup of each path so quick-mode means are
                // not dominated by first-touch allocator and cache costs.
                let _ = try_compile_with_context(
                    &QaoaSpec::from_maxcut(&problem, &trajectory(0, p), true),
                    &context,
                    &options,
                    &mut StdRng::seed_from_u64(seed),
                );
                let _ = artifact.bind(&trajectory(0, p).to_values());

                // Naive hybrid driver: rebuild and recompile the bound
                // program at every parameter point.
                let recompiled: Vec<_> = (0..iters)
                    .map(|i| {
                        let params = trajectory(i, p);
                        let start = Instant::now();
                        let bound_spec = QaoaSpec::from_maxcut(&problem, &params, true);
                        let compiled = try_compile_with_context(
                            &bound_spec,
                            &context,
                            &options,
                            &mut StdRng::seed_from_u64(seed),
                        )
                        .expect("figure workloads compile");
                        recompile_s.push(start.elapsed().as_secs_f64());
                        compiled
                    })
                    .collect();

                // Artifact driver: substitute values into the compiled
                // template. Each bound circuit is consumed (checked) and
                // dropped before the next bind, exactly like an optimizer
                // iteration that simulates and discards the circuit; only
                // the bind itself is timed.
                for (i, rc) in recompiled.iter().enumerate() {
                    let values = trajectory(i, p).to_values();
                    let start = Instant::now();
                    let rebound = artifact
                        .bind(&values)
                        .expect("trajectory values cover the template");
                    rebind_s.push(start.elapsed().as_secs_f64());

                    assert_eq!(
                        rebound.physical(),
                        rc.physical(),
                        "rebind and recompile diverged \
                         ({family}, p={p}, instance {gi}, iteration {i})"
                    );
                    assert_eq!(rebound.depth(), rc.depth());
                    assert_eq!(rebound.swap_count(), rc.swap_count());
                }

                let template = artifact.template();
                depths.push(template.depth() as f64);
                swaps.push(template.swap_count() as f64);
                rebound_gates.push(template.parametric_gate_count() as f64);
            }

            let speedup = median(&recompile_s) / median(&rebind_s);
            println!(
                "{:<12} {:>3} {:>13.2}ms {:>15.3}ms {:>13.2}µs {:>8.0}x",
                family.to_string(),
                p,
                mean(&compile_once_s) * 1e3,
                mean(&recompile_s) * 1e3,
                mean(&rebind_s) * 1e6,
                speedup,
            );

            report.add(format!("{family}/p{p}/depth"), &depths);
            report.add(format!("{family}/p{p}/swaps"), &swaps);
            report.add(format!("{family}/p{p}/rebound_gates"), &rebound_gates);

            assert!(
                speedup >= SPEEDUP_FLOOR,
                "rebind must be at least {SPEEDUP_FLOOR}x cheaper per iteration than \
                 recompile; measured {speedup:.1}x ({family}, p={p})"
            );
        }
    }

    println!(
        "\n(every iteration's rebound circuit is bit-identical to the recompiled one;\n \
         speedup floor {SPEEDUP_FLOOR}x enforced above)"
    );
    report.save_and_announce();
    cli.write_manifest();
}
