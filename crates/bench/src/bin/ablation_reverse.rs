//! Ablation: reverse-traversal mapping refinement (\[57\], §III) versus
//! QAIM. The paper argues QAIM achieves good mappings *without* the
//! repeated compilations reverse traversal needs; this binary measures
//! both quality (SWAPs of a subsequent compilation) and the extra
//! compilation work.
//!
//! Usage: `ablation_reverse [instances] [--manifest <path>] [--trace <path>]` (default 20).

use bench::cli::Cli;
use std::time::Instant;

use bench::stats::{mean, row};
use bench::workloads::{instances, Family};
use qcompile::mapping::{naive, qaim};
use qcompile::reverse::reverse_traversal_refine;
use qhw::Topology;
use qroute::{route, RoutingMetric};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("ablation_reverse");
    let count = cli.pos_usize(0, 20);
    let topo = Topology::ibmq_20_tokyo();
    let metric = RoutingMetric::hops(&topo);

    println!(
        "=== Reverse-traversal ablation ({count} 16-node ER(0.3) instances, {}) ===",
        topo.name()
    );
    println!("{:<26} {:>10} {:>14}", "mapping", "swaps", "map time (us)");
    let configs: [(&str, u8); 4] = [
        ("random", 0),
        ("random + 3 traversals", 1),
        ("qaim", 2),
        ("qaim + 3 traversals", 3),
    ];
    for (name, kind) in configs {
        let mut swaps = Vec::new();
        let mut times = Vec::new();
        for (gi, g) in instances(Family::ErdosRenyi(0.3), 16, count, 31_001)
            .into_iter()
            .enumerate()
        {
            let spec = bench::compilation_spec(g, true);
            let mut rng = StdRng::seed_from_u64(31_100 + gi as u64);
            let t = Instant::now();
            let layout = match kind {
                0 => naive(&spec, &topo, &mut rng),
                1 => {
                    let start = naive(&spec, &topo, &mut rng);
                    reverse_traversal_refine(&spec, &topo, start, 3)
                }
                2 => qaim(&spec, &topo),
                _ => {
                    let start = qaim(&spec, &topo);
                    reverse_traversal_refine(&spec, &topo, start, 3)
                }
            };
            times.push(t.elapsed().as_secs_f64() * 1e6);
            let logical = {
                let n = spec.num_qubits();
                let mut c = qcircuit::Circuit::new(n);
                for q in 0..n {
                    c.h(q);
                }
                for (ops, beta) in spec.levels() {
                    for op in ops {
                        c.rzz(op.angle, op.a, op.b);
                    }
                    for q in 0..n {
                        c.rx(beta.scaled(2.0), q);
                    }
                }
                c
            };
            swaps.push(route(&logical, &topo, layout, &metric).swap_count as f64);
        }
        println!("{}", row(name, &[mean(&swaps), mean(&times)]));
    }
    println!("\n(the [57] refinement improves random starts a lot; QAIM reaches comparable\n quality in a single pass — the paper's scalability argument)");
    cli.write_manifest();
}
