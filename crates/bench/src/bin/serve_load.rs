//! CI-gated load generator for the `qserve` compile service.
//!
//! Replays a seeded fig09-class request stream (see
//! [`bench::serveload`]) against an in-process [`qserve::Service`] and
//! prints the serving picture: throughput, cache hit rate, and exact
//! request-latency quantiles. Two fixed configurations exist —
//! `--quick` (the CI gate, 32-key universe, 4k requests) and the default
//! full run (48 keys, 40k requests) — so baselines are comparable
//! across machines.
//!
//! Usage: `serve_load [--quick] [--manifest <path>] [--trace <path>]
//! [--journal <path>]`.
//!
//! `BENCH_serve_load*.json` carries only the deterministic counter
//! series (requests, hits, misses, evictions, sheds, rejections,
//! invalidations, and the ops-plane lifecycle/journal tallies), so the
//! `regress` gate runs at tolerance 0; wall-clock throughput and
//! latency go to stdout and — as non-gating spans — into the run
//! manifest. Two serving-quality floors are asserted in-binary:
//! cached throughput of at least [`THROUGHPUT_FLOOR_RPS`] req/s and a
//! hit rate of at least [`HIT_RATE_FLOOR`]. The ops plane adds its own
//! non-vacuity floors: every admitted request has exactly one terminal
//! lifecycle stage (conservation), no lifecycle record was dropped,
//! and the journal saw the calibration reload. `--journal <path>`
//! writes the deterministic ops journal as JSON lines.

use bench::cli::Cli;
use bench::report::Report;
use bench::serveload::{run_load, LoadConfig};

/// Minimum accepted requests/second over the measured phase.
const THROUGHPUT_FLOOR_RPS: f64 = 10_000.0;

/// Minimum accepted cache hit rate over the measured phase.
const HIT_RATE_FLOOR: f64 = 0.90;

fn main() {
    let cli = Cli::parse_with_options("serve_load", &["quick"], &["journal"]);
    let quick = cli.flag("quick");
    let cfg = if quick {
        LoadConfig::quick()
    } else {
        LoadConfig::full()
    };

    println!("=== Compile-as-a-service load generation ===");
    println!(
        "({} requests over {} tenants, {} workers, seed {:#x}, {})",
        cfg.requests,
        cfg.tenants,
        cfg.workers,
        cfg.seed,
        if quick { "quick" } else { "full" },
    );

    let out = run_load(&cfg);
    let s = out.stats;

    println!(
        "\n{:<26} {:>12}",
        "key universe",
        format!("{} keys", out.keys)
    );
    println!("{:<26} {:>12}", "cached entries", s.cached_entries);
    println!(
        "{:<26} {:>11.1}%",
        "hit rate (measured)",
        out.hit_rate * 100.0
    );
    println!(
        "{:<26} {:>12}",
        "hits / misses",
        format!("{} / {}", s.hits, s.misses)
    );
    println!("{:<26} {:>12}", "evictions", s.evictions);
    println!(
        "{:<26} {:>12}",
        "shed / rejected",
        format!("{} / {}", s.shed, s.rejected)
    );
    println!(
        "{:<26} {:>12}",
        "invalidated (reload)",
        format!("{} @ epoch {}", s.invalidated, s.epoch)
    );
    println!(
        "{:<26} {:>9.0} req/s",
        "throughput (measured)", out.throughput_rps
    );
    println!(
        "{:<26} {:>10.1}µs / {:.1}µs / {:.1}µs",
        "latency p50/p90/p99", out.p50_us, out.p90_us, out.p99_us
    );
    println!("{:<26} {:>11.3}s", "wall (measured)", out.wall_s);

    let journal_lines = out.journal.lines().count() as u64;
    println!(
        "{:<26} {:>12}",
        "lifecycle records",
        format!("{} ({} terminal)", out.lifecycle_records, out.lifecycle_terminals)
    );
    println!("{:<26} {:>12}", "journal events", journal_lines);

    let mut report = Report::new(if quick {
        "serve_load_quick"
    } else {
        "serve_load"
    });
    report.add("serve/requests", &[out.measured_requests as f64]);
    report.add("serve/keys", &[out.keys as f64]);
    report.add("serve/hits", &[s.hits as f64]);
    report.add("serve/misses", &[s.misses as f64]);
    report.add("serve/evictions", &[s.evictions as f64]);
    report.add("serve/shed", &[s.shed as f64]);
    report.add("serve/rejected", &[s.rejected as f64]);
    report.add("serve/invalidated", &[s.invalidated as f64]);
    report.add("serve/hit_rate_pct", &[out.hit_rate * 100.0]);
    report.add("serve/lifecycle_records", &[out.lifecycle_records as f64]);
    report.add(
        "serve/lifecycle_terminals",
        &[out.lifecycle_terminals as f64],
    );
    report.add("serve/journal_events", &[journal_lines as f64]);
    report.save_and_announce();

    assert!(
        out.hit_rate >= HIT_RATE_FLOOR,
        "cache hit rate {:.3} fell below the {HIT_RATE_FLOOR} floor",
        out.hit_rate
    );
    assert!(
        out.throughput_rps >= THROUGHPUT_FLOOR_RPS,
        "cached serving throughput {:.0} req/s fell below the \
         {THROUGHPUT_FLOOR_RPS} req/s floor",
        out.throughput_rps
    );

    // Ops-plane non-vacuity floors: the lifecycle log conserves
    // requests (every admission reaches exactly one terminal, nothing
    // dropped) and the journal actually witnessed the failure plane's
    // one scheduled action, the mid-run calibration reload.
    assert_eq!(
        out.lifecycle_records, s.requests,
        "lifecycle log must hold one record per admitted request"
    );
    assert_eq!(
        out.lifecycle_terminals, out.lifecycle_records,
        "every admitted request must reach exactly one terminal stage"
    );
    assert_eq!(out.lifecycle_dropped, 0, "lifecycle capacity overflowed");
    assert!(
        out.journal.lines().any(|l| l.contains("calibration_reload")),
        "journal must record the mid-run calibration reload"
    );

    if let Some(path) = cli.opt("journal") {
        std::fs::write(path, &out.journal).expect("write journal");
        println!("[wrote journal {path}]");
    }

    cli.write_manifest();
}
