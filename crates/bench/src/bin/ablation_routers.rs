//! Router ablation: the layer-synchronous backend (matching the paper's
//! qiskit-era semantics) versus the SABRE-style lookahead router, under
//! both random gate order and IP packing. Shows whether the methodology
//! rankings survive a different backend — the paper's claim that its
//! techniques "can be integrated into any conventional compiler".
//!
//! Usage: `ablation_routers [instances] [--manifest <path>] [--trace <path>]` (default 20).

use bench::cli::Cli;
use bench::stats::{mean, row};
use bench::workloads::{instances, Family};
use qcompile::{ip, mapping};
use qhw::Topology;
use qroute::sabre::{route_sabre, SabreOptions};
use qroute::{route, RoutingMetric};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("ablation_routers");
    let count = cli.pos_usize(0, 20);
    let topo = Topology::ibmq_20_tokyo();
    let metric = RoutingMetric::hops(&topo);

    println!(
        "=== Router ablation ({count} 20-node ER(0.4) instances, {}) ===",
        topo.name()
    );
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "config", "swaps", "depth", "gates"
    );
    type Row = (String, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut rows: Vec<Row> = [
        "layer-sync + random order",
        "layer-sync + IP order",
        "sabre + random order",
        "sabre + IP order",
    ]
    .iter()
    .map(|n| (n.to_string(), Vec::new(), Vec::new(), Vec::new()))
    .collect();

    for (gi, g) in instances(Family::ErdosRenyi(0.4), 20, count, 23_001)
        .into_iter()
        .enumerate()
    {
        let spec = bench::compilation_spec(g, true);
        let layout = mapping::qaim(&spec, &topo);
        let mut rng = StdRng::seed_from_u64(23_100 + gi as u64);
        let (ops, beta) = &spec.levels()[0];
        let mut random_order = ops.clone();
        random_order.shuffle(&mut rng);
        let ip_order = ip::flatten(&ip::pack_layers(spec.num_qubits(), ops, None, &mut rng));

        for (ri, order) in [&random_order, &ip_order, &random_order, &ip_order]
            .into_iter()
            .enumerate()
        {
            let mut c = qcircuit::Circuit::new(spec.num_qubits());
            for q in 0..spec.num_qubits() {
                c.h(q);
            }
            for op in order {
                c.rzz(op.angle, op.a, op.b);
            }
            for q in 0..spec.num_qubits() {
                c.rx(beta.scaled(2.0), q);
            }
            c.measure_all();
            let r = if ri < 2 {
                route(&c, &topo, layout.clone(), &metric)
            } else {
                route_sabre(&c, &topo, layout.clone(), &metric, &SabreOptions::default())
            };
            let basis = qcircuit::basis::to_basis(&r.circuit, Default::default()).unwrap();
            rows[ri].1.push(r.swap_count as f64);
            rows[ri].2.push(basis.depth() as f64);
            rows[ri].3.push(basis.gate_count() as f64);
        }
    }
    for (name, swaps, depths, gates) in &rows {
        println!("{}", row(name, &[mean(swaps), mean(depths), mean(gates)]));
    }
    println!("\n(IP's ordering should help both routers; absolute numbers differ by backend)");
    cli.write_manifest();
}
