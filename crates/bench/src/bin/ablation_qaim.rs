//! Ablation of QAIM's decision metric: compare the full
//! `connectivity_strength / cumulative_distance` cost against variants
//! dropping one ingredient each (degree-only strength, no-distance,
//! no-strength) — the design choices DESIGN.md calls out from §IV-A.
//!
//! Usage: `ablation_qaim [instances-per-family] [--manifest <path>] [--trace <path>]` (default 20).

use bench::cli::Cli;
use bench::stats::{mean, row};
use bench::workloads::{instances, Family};
use qcompile::mapping::{qaim_variant, QaimVariant};
use qcompile::QaoaSpec;
use qhw::Topology;
use qroute::{route, Layout, RoutingMetric};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("ablation_qaim");
    let count = cli.pos_usize(0, 20);
    let topo = Topology::ibmq_20_tokyo();
    let metric = RoutingMetric::hops(&topo);

    let variants = [
        ("full", QaimVariant::Full),
        ("degree-strength", QaimVariant::DegreeStrength),
        ("no-distance", QaimVariant::NoDistance),
        ("no-strength", QaimVariant::NoStrength),
        ("random", QaimVariant::Full), // replaced below by a random layout
    ];

    println!(
        "=== QAIM metric ablation ({} instances/family, {}) ===",
        count,
        topo.name()
    );
    for family in [Family::ErdosRenyi(0.15), Family::Regular(3)] {
        println!("\n-- {family}, 16 nodes --");
        println!(
            "{:<18} {:>10} {:>10} {:>10}",
            "variant", "swaps", "depth", "gates"
        );
        for (vi, (name, variant)) in variants.iter().enumerate() {
            let mut swaps = Vec::new();
            let mut depths = Vec::new();
            let mut gates = Vec::new();
            for (gi, g) in instances(family, 16, count, 20_001).into_iter().enumerate() {
                let spec = bench::compilation_spec(g, true);
                let layout = if vi == variants.len() - 1 {
                    let mut rng = StdRng::seed_from_u64(21_000 + gi as u64);
                    Layout::random(16, topo.num_qubits(), &mut rng)
                } else {
                    qaim_variant(&spec, &topo, *variant)
                };
                let logical = logical_circuit(&spec);
                let r = route(&logical, &topo, layout, &metric);
                let basis = qcircuit::basis::to_basis(&r.circuit, Default::default()).unwrap();
                swaps.push(r.swap_count as f64);
                depths.push(basis.depth() as f64);
                gates.push(basis.gate_count() as f64);
            }
            println!(
                "{}",
                row(name, &[mean(&swaps), mean(&depths), mean(&gates)])
            );
        }
    }
    println!("\n(the full metric should dominate; no-strength typically costs the most swaps\n on sparse graphs, matching the §IV-A hardware-profiling rationale)");
    cli.write_manifest();
}

fn logical_circuit(spec: &QaoaSpec) -> qcircuit::Circuit {
    let n = spec.num_qubits();
    let mut c = qcircuit::Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for (ops, beta) in spec.levels() {
        for op in ops {
            c.rzz(op.angle, op.a, op.b);
        }
        for q in 0..n {
            c.rx(beta.scaled(2.0), q);
        }
    }
    c.measure_all();
    c
}
