//! Extension experiment: VIC under stale calibration data.
//!
//! §VI conditions VIC's benefit on "reliable calibration data", and §VII
//! criticizes pre-computed pulse compilation because "quantum hardware
//! suffers from the temporal variation \[69\]". The same critique applies
//! to VIC itself: it optimizes against the calibration snapshot it was
//! given, while the device executes under a drifted one. This binary
//! compiles with VIC against yesterday's calibration and evaluates the
//! success probability under today's (drifted) calibration, for several
//! drift magnitudes.
//!
//! Usage: `ext_stale_calibration [instances] [--manifest <path>] [--trace <path>]` (default 12).

use bench::cli::Cli;
use bench::stats::mean;
use bench::workloads::{instances, Family};
use qcompile::{compile, CompileOptions};
use qhw::Calibration;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("ext_stale_calibration");
    let count = cli.pos_usize(0, 12);
    let (topo, cal_compile) = Calibration::melbourne_2020_04_08();

    println!(
        "=== Extension: VIC with stale calibration ({}, {count} 12-node ER(0.5) instances) ===",
        topo.name()
    );
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "drift sigma", "SP(ic)", "SP(vic)", "vic/ic"
    );
    for sigma in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let mut sp_ic = Vec::new();
        let mut sp_vic = Vec::new();
        for (gi, g) in instances(Family::ErdosRenyi(0.5), 12, count, 33_001)
            .into_iter()
            .enumerate()
        {
            let spec = bench::compilation_spec(g, true);
            // Today's calibration = drifted copy of the compile-time one.
            let mut d_rng = StdRng::seed_from_u64(33_500 + gi as u64 + (sigma * 100.0) as u64);
            let cal_execute = cal_compile.drifted(sigma, &mut d_rng);
            let mut rng = StdRng::seed_from_u64(33_100 + gi as u64);
            let ic = compile(
                &spec,
                &topo,
                Some(&cal_compile),
                &CompileOptions::ic(),
                &mut rng,
            );
            let vic = compile(
                &spec,
                &topo,
                Some(&cal_compile),
                &CompileOptions::vic(),
                &mut rng,
            );
            // Evaluate under the *execution-day* calibration.
            sp_ic.push(ic.success_probability(&cal_execute));
            sp_vic.push(vic.success_probability(&cal_execute));
        }
        let (mi, mv) = (mean(&sp_ic), mean(&sp_vic));
        println!(
            "{:<14} {:>12.3e} {:>12.3e} {:>10.3}",
            sigma,
            mi,
            mv,
            mv / mi
        );
    }
    println!(
        "\n(VIC's edge should erode toward parity as drift grows — the [69]-style\n argument for recompiling against fresh calibration data)"
    );
    cli.write_manifest();
}
