//! `chaos` — the deterministic fault-injection campaign behind the CI
//! chaos gate.
//!
//! Replays a fixed grid of injected faults against the compile service
//! path and verifies the robustness invariant on every scenario: a
//! coupling-compliant circuit comes back, or a structured
//! [`CompileError`] does — never a panic. Only deterministic fault
//! triggers are used (corrupted tables, degraded topologies, zero
//! budgets), so the run manifest — including the `qcompile/fallbacks*`
//! counters the gate regresses — is identical on every run and runner.
//!
//! Usage: `chaos [seeds-per-class] [--manifest <path>] [--trace <path>]`
//! (shared driver flags; `--help` prints them). (default 7 seeds
//! per fault class — a 217-scenario campaign; the committed
//! `results/chaos.manifest.json` baseline was produced with the default).

use std::process::ExitCode;
use std::time::Duration;

use bench::cli::Cli;
use qcompile::{try_compile_with_context, CompileError, CompileOptions, QaoaSpec};
use qhw::fault::{FaultInjector, FaultKind};
use qhw::{Calibration, HardwareContext, Topology};
use qroute::satisfies_coupling;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec_for(seed: u64) -> QaoaSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = qgraph::generators::connected_erdos_renyi(10, 0.35, 1000, &mut rng).unwrap();
    let problem = qaoa::MaxCut::without_optimum(g);
    QaoaSpec::from_maxcut(&problem, &qaoa::QaoaParams::p1(0.5, 0.3), true)
}

/// One scenario. Returns `(delivered, violated)`.
fn run(
    spec: &QaoaSpec,
    topo: &Topology,
    context: &HardwareContext,
    options: &CompileOptions,
    seed: u64,
) -> (bool, bool) {
    let q = qtrace::global();
    q.add("chaos/scenarios", 1);
    let mut rng = StdRng::seed_from_u64(seed);
    match try_compile_with_context(spec, context, options, &mut rng) {
        Ok(compiled) => {
            let ok = satisfies_coupling(compiled.physical(), topo);
            if ok {
                q.add("chaos/delivered", 1);
                if compiled.trace().degraded() {
                    q.add("chaos/degraded_deliveries", 1);
                }
            } else {
                q.add("chaos/coupling_violations", 1);
            }
            (true, !ok)
        }
        Err(e) => {
            q.add("chaos/structured_errors", 1);
            if matches!(e, CompileError::DisconnectedTopology { .. }) {
                q.add("chaos/disconnected_errors", 1);
            }
            (false, false)
        }
    }
}

fn main() -> ExitCode {
    let cli = Cli::parse("chaos");
    let seeds = cli.pos_usize(0, 7) as u64;
    let topo = Topology::ibmq_16_melbourne();
    let base_cal = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
    let strategies = [
        ("vic", CompileOptions::vic()),
        ("ic", CompileOptions::ic()),
        ("naive", CompileOptions::naive()),
    ];

    let mut scenarios = 0usize;
    let mut delivered = 0usize;
    let mut violations = 0usize;
    let mut tally = |d: (bool, bool)| {
        scenarios += 1;
        delivered += usize::from(d.0);
        violations += usize::from(d.1);
    };

    println!(
        "=== chaos campaign ({seeds} seeds/class, {}) ===",
        topo.name()
    );

    // Calibration corruption, ladder on: every class must deliver.
    for kind in FaultKind::CALIBRATION {
        for seed in 0..seeds {
            let bad = FaultInjector::new(seed).corrupt_calibration(&topo, &base_cal, kind);
            let context = HardwareContext::with_calibration(topo.clone(), bad);
            let spec = spec_for(1000 + seed);
            for (_, options) in strategies {
                tally(run(&spec, &topo, &context, &options.with_fallback(), seed));
            }
        }
    }

    // Topology degradation: structured DisconnectedTopology or delivery.
    for kind in FaultKind::TOPOLOGY {
        for seed in 0..seeds {
            let degraded = FaultInjector::new(seed).degrade_topology(&topo, kind);
            let context = HardwareContext::new(degraded.clone());
            let spec = spec_for(2000 + seed);
            for (_, options) in [
                ("ic", CompileOptions::ic()),
                ("naive", CompileOptions::naive()),
            ] {
                tally(run(
                    &spec,
                    &degraded,
                    &context,
                    &options.with_fallback(),
                    seed,
                ));
            }
        }
    }

    // Deterministic budget exhaustion: zero budgets always trigger.
    let context = HardwareContext::new(topo.clone());
    for seed in 0..seeds {
        let spec = spec_for(3000 + seed);
        for options in [
            CompileOptions::ic().with_pass_budget(Duration::ZERO),
            CompileOptions::ic().with_swap_budget(0),
        ] {
            tally(run(&spec, &topo, &context, &options.with_fallback(), seed));
            tally(run(&spec, &topo, &context, &options, seed));
        }
    }

    println!(
        "{scenarios} scenarios: {delivered} delivered, {} structured errors, \
         {violations} coupling violations",
        scenarios - delivered
    );
    cli.write_manifest();
    if violations > 0 {
        eprintln!("chaos: {violations} unverified circuits escaped");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
