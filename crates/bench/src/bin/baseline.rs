//! `baseline` — intentionally regenerate the committed CI baselines.
//!
//! Usage:
//!
//! ```text
//! baseline [sim|sim_quick|compile_quality]...   (default: sim_quick compile_quality)
//! ```
//!
//! Each named report is re-run and written into the bench output
//! directory ([`bench::report::out_dir`]: `$BENCH_OUT_DIR`, else
//! `results/` when present). Run from the repo root and commit the
//! rewritten `results/BENCH_*.json` files together with the change that
//! legitimately moved the numbers — that commit is the audit trail the
//! CI `bench-regress` gate diffs against.

use std::process::ExitCode;

fn regenerate(which: &str) -> Result<(), String> {
    let report = match which {
        "sim" => bench::simbench::run(&bench::simbench::FULL),
        "sim_quick" => bench::simbench::run(&bench::simbench::QUICK),
        "compile_quality" => bench::quality::run(),
        other => {
            return Err(format!(
                "unknown baseline '{other}' (expected sim, sim_quick or compile_quality)"
            ))
        }
    };
    let path = report.save().map_err(|e| format!("cannot write: {e}"))?;
    println!("[wrote {}]\n", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut names: Vec<String> = std::env::args().skip(1).collect();
    if names.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: baseline [sim|sim_quick|compile_quality]...\n\
             \n\
             Regenerates the named committed CI baselines (default: sim_quick\n\
             compile_quality) into the bench output directory."
        );
        return ExitCode::SUCCESS;
    }
    if names.iter().any(|a| a.starts_with("--")) {
        eprintln!("usage: baseline [sim|sim_quick|compile_quality]...");
        return ExitCode::from(2);
    }
    if names.is_empty() {
        names = vec!["sim_quick".to_owned(), "compile_quality".to_owned()];
    }
    for name in &names {
        if let Err(e) = regenerate(name) {
            eprintln!("baseline: {e}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
