//! Figure 8: NAIVE vs GreedyV vs QAIM depth / gate-count ratios for
//! 3-regular graphs with problem sizes 12–20, ibmq_20_tokyo target.
//!
//! Usage: `fig08_size_sweep [instances-per-point] [--manifest <path>] [--trace <path>]`
//! (paper: 20 instances/point).

use bench::cli::Cli;
use bench::report::Report;
use bench::stats::{mean, ratio_of_means, row};
use bench::workloads::{instances, Family};
use qcompile::{
    compile_batch, default_workers, BatchJob, Compilation, CompileOptions, InitialMapping,
};
use qhw::{HardwareContext, Topology};

fn main() {
    let cli = Cli::parse("fig08_size_sweep");
    let count = cli.pos_usize(0, 20);
    let topo = Topology::ibmq_20_tokyo();
    let context = HardwareContext::new(topo);
    let workers = default_workers();

    let strategies = [
        ("naive", CompileOptions::naive()),
        (
            "greedyv",
            CompileOptions::new(InitialMapping::GreedyV, Compilation::RandomOrder),
        ),
        (
            "dense",
            CompileOptions::new(InitialMapping::Dense, Compilation::RandomOrder),
        ),
        ("qaim", CompileOptions::qaim_only()),
    ];

    println!("=== Figure 8: problem-size sweep (3-regular, {count} instances/point) ===");
    println!(
        "{:<18} {:>11} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "nodes", "naive depth", "greedy D", "dense D", "qaim D", "greedy G", "dense G", "qaim G"
    );
    let mut report = Report::new("fig08_size_sweep");
    for n in [12usize, 14, 16, 18, 20] {
        let jobs: Vec<BatchJob> = instances(Family::Regular(3), n, count, 8001)
            .into_iter()
            .enumerate()
            .flat_map(|(gi, g)| {
                let spec = bench::compilation_spec(g, true);
                strategies
                    .iter()
                    .map(move |(_, options)| {
                        BatchJob::new(spec.clone(), *options, 8100 + gi as u64)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let compiled = compile_batch(&context, &jobs, workers);

        let mut depths = vec![Vec::new(); strategies.len()];
        let mut gates = vec![Vec::new(); strategies.len()];
        for (ji, result) in compiled.into_iter().enumerate() {
            let c = result.expect("figure workloads compile");
            let si = ji % strategies.len();
            depths[si].push(c.depth() as f64);
            gates[si].push(c.gate_count() as f64);
        }
        for (si, (name, _)) in strategies.iter().enumerate() {
            report.add(format!("n={n}/{name}/depth"), &depths[si]);
            report.add(format!("n={n}/{name}/gates"), &gates[si]);
        }
        println!(
            "{}",
            row(
                &n.to_string(),
                &[
                    mean(&depths[0]),
                    ratio_of_means(&depths[1], &depths[0]),
                    ratio_of_means(&depths[2], &depths[0]),
                    ratio_of_means(&depths[3], &depths[0]),
                    ratio_of_means(&gates[1], &gates[0]),
                    ratio_of_means(&gates[2], &gates[0]),
                    ratio_of_means(&gates[3], &gates[0]),
                ],
            )
        );
    }
    println!("\n(paper: both beat NAIVE most at the smallest sizes — 21.8% depth / 26.8% gates\n for QAIM at n=12 — converging as the device fills up)");
    report.save_and_announce();
    cli.write_manifest();
}
