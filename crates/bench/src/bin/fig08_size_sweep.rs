//! Figure 8: NAIVE vs GreedyV vs QAIM depth / gate-count ratios for
//! 3-regular graphs with problem sizes 12–20, ibmq_20_tokyo target.
//!
//! Usage: `fig08_size_sweep [instances-per-point]` (paper: 20).

use bench::stats::{mean, ratio_of_means, row};
use bench::workloads::{instances, Family};
use qcompile::{compile, CompileOptions, Compilation, InitialMapping};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let count: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let topo = Topology::ibmq_20_tokyo();

    let strategies = [
        ("naive", CompileOptions::naive()),
        (
            "greedyv",
            CompileOptions::new(InitialMapping::GreedyV, Compilation::RandomOrder),
        ),
        (
            "dense",
            CompileOptions::new(InitialMapping::Dense, Compilation::RandomOrder),
        ),
        ("qaim", CompileOptions::qaim_only()),
    ];

    println!("=== Figure 8: problem-size sweep (3-regular, {count} instances/point) ===");
    println!(
        "{:<18} {:>11} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "nodes", "naive depth", "greedy D", "dense D", "qaim D", "greedy G", "dense G", "qaim G"
    );
    for n in [12usize, 14, 16, 18, 20] {
        let graphs = instances(Family::Regular(3), n, count, 8001);
        let mut depths = vec![Vec::new(); strategies.len()];
        let mut gates = vec![Vec::new(); strategies.len()];
        for (gi, g) in graphs.into_iter().enumerate() {
            let spec = bench::compilation_spec(g, true);
            for (si, (_, options)) in strategies.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(8100 + gi as u64);
                let c = compile(&spec, &topo, None, options, &mut rng);
                depths[si].push(c.depth() as f64);
                gates[si].push(c.gate_count() as f64);
            }
        }
        println!(
            "{}",
            row(
                &n.to_string(),
                &[
                    mean(&depths[0]),
                    ratio_of_means(&depths[1], &depths[0]),
                    ratio_of_means(&depths[2], &depths[0]),
                    ratio_of_means(&depths[3], &depths[0]),
                    ratio_of_means(&gates[1], &gates[0]),
                    ratio_of_means(&gates[2], &gates[0]),
                    ratio_of_means(&gates[3], &gates[0]),
                ],
            )
        );
    }
    println!("\n(paper: both beat NAIVE most at the smallest sizes — 21.8% depth / 26.8% gates\n for QAIM at n=12 — converging as the device fills up)");
}
