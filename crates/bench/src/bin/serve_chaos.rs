//! `serve_chaos` — the deterministic service-level chaos campaign
//! behind the serve-chaos CI gate.
//!
//! Runs the six-phase [`bench::servechaos`] campaign (fault storm,
//! queue reap, breaker storm, throttle burst, reload storm, spill
//! crash/recovery) against in-process [`qserve::Service`] instances and
//! asserts the fault-tolerance floors in-binary: structured errors only,
//! quarantine and breaker engagement, ≥ 90% spill recovery, and zero
//! stale-epoch VIC artifacts served after a calibration-changed
//! restart. Every fault is seeded and every expiry runs on the logical
//! clock, so the counter report and the run manifest are byte-stable —
//! the CI gate diffs them against the committed baselines in `results/`.
//!
//! Usage: `serve_chaos [--quick] [--manifest <path>] [--trace <path>]
//! [--journal <path>]`.
//!
//! `--journal <path>` writes the campaign's deterministic ops journal —
//! every breaker trip/probe/close, quarantine verdict, negative-cache
//! strike, calibration reload and spill recovery as one JSON line each,
//! phase-delimited — which the serve-chaos CI job diffs byte-for-byte
//! against the committed baseline.

use bench::cli::Cli;
use bench::report::Report;
use bench::servechaos::{run_chaos_full, ChaosConfig};

/// Minimum accepted fraction of spilled artifacts recovered after the
/// kill-and-restart with a seeded tenth of the files corrupted.
const RECOVERY_FLOOR: f64 = 0.90;

fn main() {
    let cli = Cli::parse_with_options("serve_chaos", &["quick"], &["journal"]);
    let quick = cli.flag("quick");
    let cfg = if quick {
        ChaosConfig::quick()
    } else {
        ChaosConfig::full()
    };

    println!("=== Compile-service chaos campaign ===");
    println!(
        "({} storm requests, panic {:.0}% / stall {:.0}%, {} tenants, {} workers, seed {:#x}, {})",
        cfg.requests,
        cfg.panic_rate * 100.0,
        cfg.stall_rate * 100.0,
        cfg.tenants,
        cfg.workers,
        cfg.seed,
        if quick { "quick" } else { "full" },
    );

    let (out, ops) = run_chaos_full(&cfg);

    println!(
        "\n{:<28} {:>12}",
        "requests (all phases)",
        format!("{}", out.requests)
    );
    println!(
        "{:<28} {:>12}",
        "delivered / failed",
        format!("{} / {}", out.delivered, out.failed)
    );
    println!(
        "{:<28} {:>12}",
        "deadline fail / reaped",
        format!("{} / {}", out.deadline_failures, out.deadline_reaped)
    );
    println!("{:<28} {:>12}", "backoff retries", out.negative_retries);
    println!(
        "{:<28} {:>12}",
        "quarantined / rejects",
        format!("{} / {}", out.quarantined_specs, out.quarantine_rejections)
    );
    println!(
        "{:<28} {:>12}",
        "breaker trips / rejects",
        format!("{} / {}", out.breaker_trips, out.breaker_rejections)
    );
    println!("{:<28} {:>12}", "throttled", out.throttle_rejections);
    println!(
        "{:<28} {:>12}",
        "reload invalidations",
        format!("{} @ {} bumps", out.invalidated, out.epoch_bumps)
    );
    println!(
        "{:<28} {:>12}",
        "spill saved/recovered",
        format!("{} / {}", out.spill_saved, out.spill_recovered)
    );
    println!(
        "{:<28} {:>12}",
        "spill corrupt/stale",
        format!("{} / {}", out.spill_corrupt, out.spill_stale)
    );
    println!(
        "{:<28} {:>11.1}%",
        "spill recovery rate",
        out.recovery_rate * 100.0
    );
    println!(
        "{:<28} {:>12}",
        "recovered-artifact hits", out.recovered_hits
    );
    println!("{:<28} {:>12}", "stale VIC hits", out.stale_vic_hits);
    println!(
        "{:<28} {:>12}",
        "lifecycle records",
        format!("{} ({} terminal)", ops.lifecycle_records, ops.lifecycle_terminals)
    );
    println!(
        "{:<28} {:>12}",
        "journal events",
        ops.journal.lines().count()
    );

    let mut report = Report::new(if quick {
        "serve_chaos_quick"
    } else {
        "serve_chaos"
    });
    report.add("chaos/requests", &[out.requests as f64]);
    report.add("chaos/delivered", &[out.delivered as f64]);
    report.add("chaos/failed", &[out.failed as f64]);
    report.add("chaos/deadline_failures", &[out.deadline_failures as f64]);
    report.add("chaos/deadline_reaped", &[out.deadline_reaped as f64]);
    report.add("chaos/negative_retries", &[out.negative_retries as f64]);
    report.add("chaos/quarantined_specs", &[out.quarantined_specs as f64]);
    report.add(
        "chaos/quarantine_rejections",
        &[out.quarantine_rejections as f64],
    );
    report.add("chaos/breaker_trips", &[out.breaker_trips as f64]);
    report.add("chaos/breaker_rejections", &[out.breaker_rejections as f64]);
    report.add("chaos/throttled", &[out.throttle_rejections as f64]);
    report.add("chaos/invalidated", &[out.invalidated as f64]);
    report.add("chaos/spill_saved", &[out.spill_saved as f64]);
    report.add("chaos/spill_recovered", &[out.spill_recovered as f64]);
    report.add("chaos/spill_corrupt", &[out.spill_corrupt as f64]);
    report.add("chaos/spill_stale", &[out.spill_stale as f64]);
    report.add("chaos/recovered_hits", &[out.recovered_hits as f64]);
    report.add("chaos/stale_vic_hits", &[out.stale_vic_hits as f64]);
    report.add("chaos/recovery_rate_pct", &[out.recovery_rate * 100.0]);
    report.add("chaos/lifecycle_records", &[ops.lifecycle_records as f64]);
    report.add(
        "chaos/lifecycle_terminals",
        &[ops.lifecycle_terminals as f64],
    );
    report.add(
        "chaos/journal_events",
        &[ops.journal.lines().count() as f64],
    );
    report.save_and_announce();

    // The fault-tolerance floors. Each one pins a mechanism end to end;
    // a pass with the mechanism disabled is impossible.
    assert!(out.delivered > 0, "campaign delivered nothing");
    assert!(
        out.deadline_failures > 0,
        "no request observed a deadline error"
    );
    assert!(
        out.deadline_reaped > 0,
        "no queued job was reaped by a deadline sweep"
    );
    assert!(
        out.negative_retries > 0,
        "no negative-cache entry expired into a retry"
    );
    assert!(
        out.quarantined_specs > 0 && out.quarantine_rejections > 0,
        "the fault storm quarantined nothing"
    );
    assert!(
        out.breaker_trips >= 2 && out.breaker_rejections > 0,
        "the breaker never tripped (or never rejected)"
    );
    assert!(
        out.breaker_isolated,
        "an open breaker leaked into another tenant"
    );
    assert!(
        out.throttle_rejections > 0,
        "the token bucket never ran dry"
    );
    assert!(out.invalidated > 0, "reload storms invalidated nothing");
    assert!(
        out.recovery_rate >= RECOVERY_FLOOR,
        "spill recovery {:.3} fell below the {RECOVERY_FLOOR} floor",
        out.recovery_rate
    );
    assert!(
        out.spill_corrupt > 0,
        "corrupted spill files went undetected"
    );
    assert!(
        out.spill_stale > 0,
        "stale VIC spills survived a calibration change"
    );
    assert_eq!(
        out.stale_vic_hits, 0,
        "a stale-epoch VIC artifact was served after restart"
    );

    // Ops-plane floors: the journal must have witnessed every
    // failure-plane mechanism the campaign detonated, and the lifecycle
    // log must conserve requests (one terminal each, nothing dropped).
    for event in [
        "breaker_trip",
        "breaker_probe",
        "breaker_close",
        "quarantine_add",
        "negative_strike",
        "calibration_reload",
        "spill_recovery",
    ] {
        let needle = format!("\"event\":\"{event}\"");
        assert!(
            ops.journal.lines().any(|l| l.contains(&needle)),
            "journal never recorded a {event} event"
        );
    }
    assert_eq!(
        ops.lifecycle_records, out.requests,
        "lifecycle log must hold one record per campaign request"
    );
    assert_eq!(
        ops.lifecycle_terminals, ops.lifecycle_records,
        "every campaign request must reach exactly one terminal stage"
    );
    assert_eq!(ops.lifecycle_dropped, 0, "lifecycle capacity overflowed");

    if let Some(path) = cli.opt("journal") {
        std::fs::write(path, &ops.journal).expect("write journal");
        println!("[wrote journal {path}]");
    }

    cli.write_manifest();
}
