//! Ablation of IC's distance re-sorting: IC forms each layer from the
//! gates *closest under the current mapping* (§IV-C). Disabling the
//! re-sort (random layer formation, still incremental) quantifies how
//! much of IC's win comes from tracking the dynamic mapping versus from
//! mere incremental routing.
//!
//! Usage: `ablation_ic [instances-per-family] [--manifest <path>] [--trace <path>]` (default 20).

use bench::cli::Cli;
use bench::stats::{mean, row};
use bench::workloads::{instances, Family};
use qcompile::ic::compile_incremental_with;
use qcompile::mapping::qaim;
use qhw::Topology;
use qroute::RoutingMetric;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("ablation_ic");
    let count = cli.pos_usize(0, 20);
    let topo = Topology::ibmq_20_tokyo();
    let metric = RoutingMetric::hops(&topo);

    println!(
        "=== IC re-sorting ablation ({} instances/family, {}) ===",
        count,
        topo.name()
    );
    for family in [Family::ErdosRenyi(0.4), Family::Regular(6)] {
        println!("\n-- {family}, 20 nodes --");
        println!(
            "{:<18} {:>10} {:>10} {:>10}",
            "variant", "swaps", "depth", "gates"
        );
        for (name, resort) in [("with re-sort", true), ("no re-sort", false)] {
            let mut swaps = Vec::new();
            let mut depths = Vec::new();
            let mut gates = Vec::new();
            for (gi, g) in instances(family, 20, count, 22_001).into_iter().enumerate() {
                let spec = bench::compilation_spec(g, true);
                let layout = qaim(&spec, &topo);
                let mut rng = StdRng::seed_from_u64(22_100 + gi as u64);
                let r =
                    compile_incremental_with(&spec, &topo, layout, &metric, None, resort, &mut rng);
                let basis = qcircuit::basis::to_basis(&r.circuit, Default::default()).unwrap();
                swaps.push(r.swap_count as f64);
                depths.push(basis.depth() as f64);
                gates.push(basis.gate_count() as f64);
            }
            println!(
                "{}",
                row(name, &[mean(&swaps), mean(&depths), mean(&gates)])
            );
        }
    }
    println!("\n(re-sorting should reduce SWAPs — the §IV-C claim that prioritizing gates\n whose qubits drifted together cuts qubit movement)");
    cli.write_manifest();
}
