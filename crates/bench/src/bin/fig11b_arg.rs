//! Figure 11(b): Approximation Ratio Gap (ARG) of QAIM / IP / IC / VIC
//! circuits "on hardware" — here, the stochastic-Pauli trajectory
//! simulator with the melbourne 2020-04-08 calibration (see DESIGN.md §4
//! for the substitution).
//!
//! Per instance: optimize p=1 parameters (analytic grid + Nelder–Mead),
//! compile with each strategy, sample 40960 shots noiselessly (r0) and
//! under noise (rh), report ARG = 100·(r0−rh)/r0 averaged per strategy.
//!
//! Usage: `fig11b_arg [instances-per-family] [shots] [trajectories]
//! [--manifest <path>] [--trace <path>]` (paper: 20 instances/family,
//! 40960 shots; defaults 5 / 8192 / 64).

use bench::cli::Cli;
use bench::stats::{mean, row};
use bench::workloads::{instances, Family};
use qaoa::{approximation_ratio_from_counts, approximation_ratio_gap, qaoa_circuit, MaxCut};
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::Calibration;
use qsim::{NoiseModel, Sampler, StateVector, TrajectorySimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("fig11b_arg");
    let per_family = cli.pos_usize(0, 5);
    let shots = cli.pos_u64(1, 8192);
    let trajectories = cli.pos_u32(2, 64);
    let (topo, cal) = Calibration::melbourne_2020_04_08();
    let sim = TrajectorySimulator::new(NoiseModel::new(cal.clone()));

    let strategies = [
        ("QAIM", CompileOptions::qaim_only()),
        ("IP", CompileOptions::ip()),
        ("IC", CompileOptions::ic()),
        ("VIC", CompileOptions::vic()),
    ];

    println!(
        "=== Figure 11(b): ARG on {} ({} instances/family, {} shots, {} trajectories) ===",
        topo.name(),
        per_family,
        shots,
        trajectories
    );
    for (title, family) in [
        ("erdos-renyi p=0.5 (12 nodes)", Family::ErdosRenyi(0.5)),
        ("regular k=6 (12 nodes)", Family::Regular(6)),
    ] {
        println!("\n-- {title} --");
        let mut args = vec![Vec::new(); strategies.len()];
        for (gi, g) in instances(family, 12, per_family, 11_201)
            .into_iter()
            .enumerate()
        {
            let problem = MaxCut::new(g);
            let (params, _) = qaoa::optimize::grid_then_nelder_mead(&problem, 1, 24);
            let spec = QaoaSpec::from_maxcut(&problem, &params, true);

            // Ideal approximation ratio r0: sample the logical circuit.
            let ideal_state = StateVector::from_circuit(&qaoa_circuit(&problem, &params, false));
            let mut rng = StdRng::seed_from_u64(40_000 + gi as u64);
            let ideal_counts = Sampler::new(&ideal_state).sample_counts(shots, &mut rng);
            let r0 = approximation_ratio_from_counts(&problem, &ideal_counts);

            for (si, (_, options)) in strategies.iter().enumerate() {
                let mut c_rng = StdRng::seed_from_u64(41_000 + gi as u64);
                let compiled = compile(&spec, &topo, Some(&cal), options, &mut c_rng);
                // "Hardware" run: trajectory-noise sampling of the routed
                // circuit, costs evaluated on logical bits via the final
                // layout.
                let mut h_rng = StdRng::seed_from_u64(42_000 + gi as u64);
                let counts = sim.sample(compiled.physical(), shots, trajectories, &mut h_rng);
                let logical_counts: qsim::Counts = counts
                    .iter()
                    .map(|(&phys_state, &k)| {
                        let mut logical_state = 0usize;
                        for l in 0..problem.num_vars() {
                            let p = compiled.final_layout().phys(l);
                            if phys_state >> p & 1 == 1 {
                                logical_state |= 1 << l;
                            }
                        }
                        (logical_state, k)
                    })
                    .fold(qsim::Counts::new(), |mut acc, (s, k)| {
                        *acc.entry(s).or_insert(0) += k;
                        acc
                    });
                let rh = approximation_ratio_from_counts(&problem, &logical_counts);
                args[si].push(approximation_ratio_gap(r0, rh));
            }
        }
        println!("{:<18} {:>10}", "method", "ARG (%)");
        for (si, (name, _)) in strategies.iter().enumerate() {
            println!("{}", row(name, &[mean(&args[si])]));
        }
    }
    println!("\n(paper: ARG improves QAIM → IP → IC → VIC; IC ≈8.5% below IP, VIC ≈7.4% below IC)");
    cli.write_manifest();
}
