//! Extension experiment: the paper's methodologies on a modern heavy-hex
//! device (max degree 3, much sparser than Tokyo). Sparse connectivity
//! amplifies the value of good initial mapping and incremental
//! compilation — this binary checks the strategy ranking carries over.
//!
//! Usage: `ext_heavy_hex [instances] [--manifest <path>] [--trace <path>]` (default 10).

use bench::cli::Cli;
use bench::stats::{mean, row};
use bench::workloads::{instances, Family};
use qcompile::{compile, CompileOptions};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("ext_heavy_hex");
    let count = cli.pos_usize(0, 10);
    let topo = Topology::heavy_hex(2, 2);
    println!(
        "=== Extension: strategies on {} ({} qubits, {count} 14-node ER(0.3) instances) ===",
        topo.name(),
        topo.num_qubits()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "method", "depth", "gates", "swaps"
    );
    let strategies = [
        ("NAIVE", CompileOptions::naive()),
        ("QAIM", CompileOptions::qaim_only()),
        ("IP", CompileOptions::ip()),
        ("IC", CompileOptions::ic()),
    ];
    for (name, options) in strategies {
        let mut depths = Vec::new();
        let mut gates = Vec::new();
        let mut swaps = Vec::new();
        for (gi, g) in instances(Family::ErdosRenyi(0.3), 14, count, 32_001)
            .into_iter()
            .enumerate()
        {
            let spec = bench::compilation_spec(g, true);
            let mut rng = StdRng::seed_from_u64(32_100 + gi as u64);
            let c = compile(&spec, &topo, None, &options, &mut rng);
            assert!(qroute::satisfies_coupling(c.physical(), &topo));
            depths.push(c.depth() as f64);
            gates.push(c.gate_count() as f64);
            swaps.push(c.swap_count() as f64);
        }
        println!(
            "{}",
            row(name, &[mean(&depths), mean(&gates), mean(&swaps)])
        );
    }
    println!("\n(sparser couplings raise absolute costs; the NAIVE → QAIM → IP → IC ranking\n should persist)");
    cli.write_manifest();
}
