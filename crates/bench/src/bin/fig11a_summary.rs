//! Figure 11(a): the headline summary table — mean depth, gate-count and
//! compilation time of NAIVE, QAIM, IP, IC and VIC, normalized by NAIVE,
//! over a mixed pool of 20-node Erdős–Rényi + regular instances on
//! ibmq_20_tokyo. VIC uses CNOT errors drawn from N(1.0e-2, 0.5e-2) as in
//! §V-F.
//!
//! Usage: `fig11a_summary [instances-per-family] [--manifest <path>] [--trace <path>]`
//! (paper: 600 total = 50 per family across 12 families; default 10 per
//! family = 120 total).

use bench::cli::Cli;
use bench::report::Report;
use bench::stats::{mean, row};
use bench::workloads::{instances, Family, ER_PROBABILITIES, REGULAR_DEGREES};
use qcompile::{compile_batch, default_workers, BatchJob, CompileOptions};
use qhw::{Calibration, HardwareContext, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("fig11a_summary");
    let per_family = cli.pos_usize(0, 10);
    let topo = Topology::ibmq_20_tokyo();
    let mut cal_rng = StdRng::seed_from_u64(1106);
    let cal = Calibration::random_normal(&topo, 1.0e-2, 0.5e-2, &mut cal_rng);
    // One shared context for all 600 (instance, strategy) pairs: distance
    // matrices and profiling are computed twice (hops + weighted), total.
    let context = HardwareContext::with_calibration(topo, cal);
    let workers = default_workers();

    let strategies = [
        ("NAIVE", CompileOptions::naive()),
        ("QAIM", CompileOptions::qaim_only()),
        ("IP", CompileOptions::ip()),
        ("IC", CompileOptions::ic()),
        ("VIC", CompileOptions::vic()),
    ];

    let families: Vec<Family> = ER_PROBABILITIES
        .iter()
        .map(|&p| Family::ErdosRenyi(p))
        .chain(REGULAR_DEGREES.iter().map(|&k| Family::Regular(k)))
        .collect();
    let total = families.len() * per_family;
    println!("=== Figure 11(a): strategy summary over {total} 20-node instances ===");

    let jobs: Vec<BatchJob> = families
        .iter()
        .flat_map(|family| {
            instances(*family, 20, per_family, 11_001)
                .into_iter()
                .enumerate()
                .flat_map(|(gi, g)| {
                    let spec = bench::compilation_spec(g, true);
                    strategies
                        .iter()
                        .map(move |(_, options)| {
                            BatchJob::new(spec.clone(), *options, 11_100 + gi as u64)
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let compiled = compile_batch(&context, &jobs, workers);

    let mut depths = vec![Vec::new(); strategies.len()];
    let mut gates = vec![Vec::new(); strategies.len()];
    let mut times = vec![Vec::new(); strategies.len()];
    for (ji, result) in compiled.into_iter().enumerate() {
        let c = result.expect("figure workloads compile");
        let si = ji % strategies.len();
        depths[si].push(c.depth() as f64);
        gates[si].push(c.gate_count() as f64);
        times[si].push(c.elapsed().as_secs_f64());
    }

    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "method", "depth", "gates", "time"
    );
    let mut report = Report::new("fig11a_summary");
    let base = (mean(&depths[0]), mean(&gates[0]), mean(&times[0]));
    for (si, (name, _)) in strategies.iter().enumerate() {
        report.add(format!("{name}/depth"), &depths[si]);
        report.add(format!("{name}/gates"), &gates[si]);
        report.add(format!("{name}/time_s"), &times[si]);
        println!(
            "{}",
            row(
                name,
                &[
                    mean(&depths[si]) / base.0,
                    mean(&gates[si]) / base.1,
                    mean(&times[si]) / base.2,
                ],
            )
        );
    }
    println!(
        "\n(paper's Figure 11(a): NAIVE 1/1/1, QAIM 0.95/0.94/~1, IP 0.54/0.92/0.55,\n IC 0.47/0.77/0.85, VIC 0.48/0.77/0.86)"
    );
    report.save_and_announce();
    cli.write_manifest();
}
