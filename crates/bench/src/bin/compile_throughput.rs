//! `compile_throughput` — wall-time benchmark for the compile hot path.
//!
//! Two compile-only workloads:
//!
//! 1. **fig09 class**: the Figure 9 problem set (20-node Erdős–Rényi
//!    p=0.1–0.6 and regular k=3–8 instances, ibmq_20_tokyo) under the
//!    QAIM, IP and IC strategies — the workload the compile-engine
//!    speedup is measured on (~4x full-pipeline vs the committed
//!    pre-rewrite baseline; [`SPEEDUP_FLOOR`] gates the engine-level
//!    live-vs-frozen ratio).
//! 2. **heavy-hex 127q class**: a modern sparse device
//!    ([`Topology::heavy_hex`], 129 physical qubits) compiling 40-node
//!    ER(0.1) instances under IC — stresses the router's distance
//!    structures at Eagle-scale qubit counts.
//!
//! Each job is compiled once untimed (warm-up) and then `REPS` times,
//! keeping the minimum — the estimator least disturbed by the machine.
//! The report carries the timing series (gated in CI with a generous
//! tolerance: only catastrophic regressions fail) plus fully
//! deterministic depth/SWAP series that pin compile quality exactly.
//! The engine-speedup series compares the live engine against the
//! frozen pre-optimization reference compiled into `qcompile::reference`
//! and is asserted against [`SPEEDUP_FLOOR`] in-process, so a change
//! that quietly loses the engine win fails this binary everywhere, not
//! just on a calibrated CI runner.
//!
//! Usage: `compile_throughput [instances-per-family] [--manifest <path>]
//! [--trace <path>]` (default 8; CI quick mode passes 2).

use std::time::Instant;

use bench::cli::Cli;
use bench::report::Report;
use bench::stats::median;
use bench::workloads::{instances, Family, ER_PROBABILITIES, REGULAR_DEGREES};
use qcompile::{ic, mapping, reference, try_compile_with_context, CompileOptions, QaoaSpec};
use qhw::{HardwareContext, Topology};
use qroute::RoutingMetric;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Timed repetitions per job (minimum kept).
const REPS: usize = 3;

/// Minimum acceptable median live-vs-frozen IC engine speedup on the
/// fig09 workload. Measured ~2.6x untraced on the reference machine
/// (~2.1x in CI's traced quick mode); the frozen engine shares the
/// metric tables, topology bitsets and LTO the rewrite introduced, so
/// this ratio understates the full-pipeline gain (~4.5x vs
/// `results/BENCH_compile_throughput_baseline.json`). The floor is a
/// tripwire for changes that quietly give the win back, so it sits below
/// the measured values but far above parity.
const SPEEDUP_FLOOR: f64 = 1.5;

/// One timed job: warm-up compile, then `REPS` timed compiles of the
/// identical (spec, options, seed) triple; returns the minimum wall
/// time in microseconds plus the compiled depth/SWAP count.
fn time_compile(
    spec: &QaoaSpec,
    context: &HardwareContext,
    options: &CompileOptions,
    seed: u64,
) -> (f64, f64, f64) {
    let compiled =
        try_compile_with_context(spec, context, options, &mut StdRng::seed_from_u64(seed))
            .expect("throughput workloads compile");
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let c = try_compile_with_context(spec, context, options, &mut StdRng::seed_from_u64(seed))
            .expect("throughput workloads compile");
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
        assert_eq!(c.depth(), compiled.depth(), "compile must be deterministic");
    }
    (best, compiled.depth() as f64, compiled.swap_count() as f64)
}

fn main() {
    let cli = Cli::parse("compile_throughput");
    let count = cli.pos_usize(0, 8);
    let mut report = Report::new("compile_throughput");

    // -- Workload 1: fig09 class on ibmq_20_tokyo ------------------------
    let topo = Topology::ibmq_20_tokyo();
    let context = HardwareContext::new(topo);
    let n = 20;
    let strategies = [
        ("qaim", CompileOptions::qaim_only()),
        ("ip", CompileOptions::ip()),
        ("ic", CompileOptions::ic()),
    ];
    let families: Vec<Family> = ER_PROBABILITIES
        .iter()
        .map(|&p| Family::ErdosRenyi(p))
        .chain(REGULAR_DEGREES.iter().map(|&k| Family::Regular(k)))
        .collect();

    println!(
        "=== Compile throughput: fig09 class (n={n}, ibmq_20_tokyo, {count} instances/family) ==="
    );
    println!(
        "{:<8} {:>14} {:>12} {:>12}",
        "method", "median", "depth", "swaps"
    );
    for (name, options) in &strategies {
        let mut times_us = Vec::new();
        let mut depths = Vec::new();
        let mut swaps = Vec::new();
        for family in &families {
            for (gi, g) in instances(*family, n, count, 9001).into_iter().enumerate() {
                let spec = bench::compilation_spec(g, true);
                let (us, depth, swap) = time_compile(&spec, &context, options, 9200 + gi as u64);
                times_us.push(us);
                depths.push(depth);
                swaps.push(swap);
            }
        }
        println!(
            "{:<8} {:>12.1}µs {:>12.1} {:>12.1}",
            name,
            median(&times_us),
            median(&depths),
            median(&swaps)
        );
        report.add(format!("fig09/{name}/compile_us"), &times_us);
        report.add(format!("fig09/{name}/depth"), &depths);
        report.add(format!("fig09/{name}/swaps"), &swaps);
    }

    // -- Engine speedup: live IC vs frozen reference ---------------------
    // Same fig09 IC workload, measured at the engine level (mapping done
    // once outside the timed region) so the ratio isolates the routing +
    // layer-formation rewrite from QAIM and lowering.
    let topo = Topology::ibmq_20_tokyo();
    let metric = RoutingMetric::hops(&topo);
    let mut speedups = Vec::new();
    for family in &families {
        for (gi, g) in instances(*family, n, count, 9001).into_iter().enumerate() {
            let spec = bench::compilation_spec(g, true);
            let seed = 9200 + gi as u64;
            let layout = mapping::qaim(&spec, &topo);
            let mut live_us = f64::INFINITY;
            let mut frozen_us = f64::INFINITY;
            for _ in 0..REPS {
                let start = Instant::now();
                let a = ic::try_compile_incremental_with(
                    &spec,
                    &topo,
                    layout.clone(),
                    &metric,
                    None,
                    true,
                    &mut StdRng::seed_from_u64(seed),
                )
                .expect("fig09 IC compiles");
                live_us = live_us.min(start.elapsed().as_secs_f64() * 1e6);
                let start = Instant::now();
                let b = reference::try_compile_incremental_with(
                    &spec,
                    &topo,
                    layout.clone(),
                    &metric,
                    None,
                    true,
                    &mut StdRng::seed_from_u64(seed),
                )
                .expect("fig09 IC compiles");
                frozen_us = frozen_us.min(start.elapsed().as_secs_f64() * 1e6);
                assert_eq!(
                    a.circuit.instructions(),
                    b.circuit.instructions(),
                    "live engine must stay byte-identical to the frozen reference"
                );
            }
            speedups.push(frozen_us / live_us);
        }
    }
    let engine_speedup = median(&speedups);
    println!("\nfig09 IC engine speedup vs frozen reference: {engine_speedup:.1}x (floor {SPEEDUP_FLOOR}x)");
    report.add("fig09/ic/engine_speedup", &speedups);
    assert!(
        engine_speedup >= SPEEDUP_FLOOR,
        "engine speedup {engine_speedup:.2}x fell below the {SPEEDUP_FLOOR}x floor"
    );

    // -- Workload 2: heavy-hex 127q-class compile-only -------------------
    let hh = Topology::heavy_hex(6, 7);
    let hh_qubits = hh.num_qubits();
    let hh_context = HardwareContext::new(hh);
    let hh_count = (count / 2).max(2);
    let hh_n = 40;
    println!("\n=== Compile throughput: heavy-hex ({hh_qubits}q, {hh_n}-node ER(0.1), {hh_count} instances, IC) ===");
    let mut times_us = Vec::new();
    let mut depths = Vec::new();
    let mut swaps = Vec::new();
    for (gi, g) in instances(Family::ErdosRenyi(0.1), hh_n, hh_count, 41_001)
        .into_iter()
        .enumerate()
    {
        let spec = bench::compilation_spec(g, true);
        let (us, depth, swap) = time_compile(
            &spec,
            &hh_context,
            &CompileOptions::ic(),
            41_100 + gi as u64,
        );
        times_us.push(us);
        depths.push(depth);
        swaps.push(swap);
    }
    println!(
        "{:<8} {:>12.1}µs {:>12.1} {:>12.1}",
        "ic",
        median(&times_us),
        median(&depths),
        median(&swaps)
    );
    report.add("heavy_hex/ic/compile_us", &times_us);
    report.add("heavy_hex/ic/depth", &depths);
    report.add("heavy_hex/ic/swaps", &swaps);

    report.save_and_announce();
    cli.write_manifest();
}
