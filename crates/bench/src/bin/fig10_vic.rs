//! Figure 10: VIC (+QAIM) vs IC (+QAIM) compiled-circuit success
//! probability on ibmq_16_melbourne with the 2020-04-08 calibration —
//! Erdős–Rényi (p=0.5) and 6-regular graphs, 13–15 nodes.
//!
//! Usage: `fig10_vic [instances-per-bar] [trajectories] [--manifest <path>] [--trace <path>]`
//! (paper: 20 instances/bar).
//!
//! With `trajectories > 0` the table adds *measured* mean fidelities
//! next to the calibration-predicted ESP: each compiled circuit is run
//! through [`TrajectorySimulator::mean_fidelity`] against its noiseless
//! state, using the simulation engine configured by [`SimOptions`]
//! (override the worker count with `SIM_THREADS`). The default of 0
//! trajectories keeps the original ESP-only output and cost.

use bench::cli::Cli;
use bench::stats::mean;
use bench::workloads::{instances, Family};
use qcompile::{compile, CompileOptions};
use qhw::Calibration;
use qsim::{NoiseModel, SimOptions, StateVector, TrajectorySimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse("fig10_vic");
    let count = cli.pos_usize(0, 20);
    let trajectories = cli.pos_u32(1, 0);
    let (topo, cal) = Calibration::melbourne_2020_04_08();
    let options = match std::env::var("SIM_THREADS") {
        Ok(t) => SimOptions::default().with_threads(t.parse().expect("SIM_THREADS: integer")),
        Err(_) => SimOptions::default(),
    };
    let sim = TrajectorySimulator::with_options(NoiseModel::new(cal.clone()), options);

    println!(
        "=== Figure 10: VIC vs IC success probability ({}, {count} instances/bar) ===",
        topo.name()
    );
    for (title, family) in [
        ("erdos-renyi p=0.5", Family::ErdosRenyi(0.5)),
        ("regular k=6", Family::Regular(6)),
    ] {
        println!("\n-- {title} --");
        print!(
            "{:<18} {:>10} {:>10} {:>10}",
            "nodes", "SP(ic)", "SP(vic)", "vic/ic"
        );
        if trajectories > 0 {
            print!("{:>10} {:>10}", "F(ic)", "F(vic)");
        }
        println!();
        for n in [13usize, 14, 15] {
            let graphs = instances(family, n, count, 10_001);
            let mut sp = [Vec::new(), Vec::new()];
            let mut fid = [Vec::new(), Vec::new()];
            for (gi, g) in graphs.into_iter().enumerate() {
                let spec = bench::compilation_spec(g, true);
                for (si, options) in [CompileOptions::ic(), CompileOptions::vic()]
                    .iter()
                    .enumerate()
                {
                    let mut rng = StdRng::seed_from_u64(10_100 + gi as u64);
                    let c = compile(&spec, &topo, Some(&cal), options, &mut rng);
                    sp[si].push(c.success_probability(&cal));
                    if trajectories > 0 {
                        let ideal = StateVector::from_circuit_with(c.physical(), sim.options());
                        fid[si].push(sim.mean_fidelity(
                            c.physical(),
                            &ideal,
                            trajectories,
                            &mut rng,
                        ));
                    }
                }
            }
            let (m_ic, m_vic) = (mean(&sp[0]), mean(&sp[1]));
            print!(
                "{:<18} {:>10.3e} {:>10.3e} {:>10.3}",
                n,
                m_ic,
                m_vic,
                m_vic / m_ic
            );
            if trajectories > 0 {
                print!("{:>10.3e} {:>10.3e}", mean(&fid[0]), mean(&fid[1]));
            }
            println!();
        }
    }
    println!("\n(paper: VIC improves mean success probability by ~80% on ER graphs and ~45%\n on regular graphs, with the gap widening at larger sizes)");
    cli.write_manifest();
}
