//! Figure 10: VIC (+QAIM) vs IC (+QAIM) compiled-circuit success
//! probability on ibmq_16_melbourne with the 2020-04-08 calibration —
//! Erdős–Rényi (p=0.5) and 6-regular graphs, 13–15 nodes.
//!
//! Usage: `fig10_vic [instances-per-bar]` (paper: 20).

use bench::stats::mean;
use bench::workloads::{instances, Family};
use qcompile::{compile, CompileOptions};
use qhw::Calibration;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let (topo, cal) = Calibration::melbourne_2020_04_08();

    println!(
        "=== Figure 10: VIC vs IC success probability ({}, {count} instances/bar) ===",
        topo.name()
    );
    for (title, family) in [
        ("erdos-renyi p=0.5", Family::ErdosRenyi(0.5)),
        ("regular k=6", Family::Regular(6)),
    ] {
        println!("\n-- {title} --");
        println!(
            "{:<18} {:>10} {:>10} {:>10}",
            "nodes", "SP(ic)", "SP(vic)", "vic/ic"
        );
        for n in [13usize, 14, 15] {
            let graphs = instances(family, n, count, 10_001);
            let mut sp = [Vec::new(), Vec::new()];
            for (gi, g) in graphs.into_iter().enumerate() {
                let spec = bench::compilation_spec(g, true);
                for (si, options) in [CompileOptions::ic(), CompileOptions::vic()]
                    .iter()
                    .enumerate()
                {
                    let mut rng = StdRng::seed_from_u64(10_100 + gi as u64);
                    let c = compile(&spec, &topo, Some(&cal), options, &mut rng);
                    sp[si].push(c.success_probability(&cal));
                }
            }
            let (m_ic, m_vic) = (mean(&sp[0]), mean(&sp[1]));
            println!(
                "{:<18} {:>10.3e} {:>10.3e} {:>10.3}",
                n,
                m_ic,
                m_vic,
                m_vic / m_ic
            );
        }
    }
    println!("\n(paper: VIC improves mean success probability by ~80% on ER graphs and ~45%\n on regular graphs, with the gap widening at larger sizes)");
}
