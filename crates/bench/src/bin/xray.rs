//! `xray` — render a telemetry artifact as a text flamegraph, hot-path
//! table and counter report.
//!
//! Usage:
//!
//! ```text
//! xray <artifact.json> [--top 10] [--baseline <artifact.json>] [--tenant <id>]
//! ```
//!
//! The artifact may be a qtrace run manifest (`--manifest` output) or a
//! Chrome Trace Format export (`--trace` output); the kind is sniffed
//! from the top-level keys. With `--baseline`, counters are shown as
//! deltas against the other artifact. With `--tenant`, both artifacts
//! are narrowed to that tenant's `qserve/tenant/<id>/...` series before
//! rendering, so the flamegraph and counter deltas read per-tenant.
//! Exit status: 0 on success, 2 on usage/parse errors.

use std::path::PathBuf;
use std::process::ExitCode;

use bench::xray::{filter_tenant, parse_input, render, XrayInput};

struct Args {
    artifact: PathBuf,
    top: usize,
    baseline: Option<PathBuf>,
    tenant: Option<u32>,
}

fn usage_text() -> String {
    "usage: xray <artifact.json> [--top 10] [--baseline <artifact.json>] \
     [--tenant <id>]\n\
     \n\
     options:\n\
     \x20 --top <n>              how many hot paths to list (default 10)\n\
     \x20 --baseline <artifact>  show counters as deltas against this artifact\n\
     \x20 --tenant <id>          narrow to one tenant's qserve/tenant/<id>/ series\n\
     \x20 -h, --help             print this help and exit"
        .to_owned()
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut top = 10;
    let mut baseline = None;
    let mut tenant = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            "--top" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                top = v;
            }
            "--baseline" => {
                let Some(p) = iter.next() else { usage() };
                baseline = Some(PathBuf::from(p));
            }
            "--tenant" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                tenant = Some(v);
            }
            _ if arg.starts_with("--") => usage(),
            _ => positional.push(PathBuf::from(arg)),
        }
    }
    if positional.len() != 1 || top == 0 {
        usage();
    }
    Args {
        artifact: positional.pop().expect("len checked"),
        top,
        baseline,
        tenant,
    }
}

fn load(path: &PathBuf) -> XrayInput {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xray: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    match parse_input(&text) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("xray: {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut input = load(&args.artifact);
    let mut baseline = args.baseline.as_ref().map(load);
    if let Some(tenant) = args.tenant {
        input = filter_tenant(&input, tenant);
        baseline = baseline.map(|b| filter_tenant(&b, tenant));
    }
    print!("{}", render(&input, args.top, baseline.as_ref()));
    ExitCode::SUCCESS
}
