//! Figure 9: IP (+QAIM) and IC (+QAIM) versus QAIM-only — depth,
//! gate-count and compilation-time ratios on 20-node Erdős–Rényi and
//! regular MaxCut-QAOA instances, ibmq_20_tokyo target.
//!
//! Usage: `fig09_ip_ic [instances-per-bar] [--manifest <path>] [--trace <path>]`
//! (paper: 50 instances/bar).

use bench::cli::Cli;
use bench::report::Report;
use bench::stats::{ratio_of_means, row};
use bench::workloads::{instances, Family, ER_PROBABILITIES, REGULAR_DEGREES};
use qcompile::{compile_batch, default_workers, BatchJob, CompileOptions};
use qhw::{HardwareContext, Topology};

fn main() {
    let cli = Cli::parse("fig09_ip_ic");
    let count = cli.pos_usize(0, 50);
    let topo = Topology::ibmq_20_tokyo();
    let context = HardwareContext::new(topo);
    let workers = default_workers();
    let n = 20;

    let strategies = [
        ("qaim", CompileOptions::qaim_only()),
        ("ip", CompileOptions::ip()),
        ("ic", CompileOptions::ic()),
    ];

    println!("=== Figure 9: IP/IC vs QAIM (n={n}, {count} instances/bar) ===");
    let mut report = Report::new("fig09_ip_ic");
    for (title, families) in [
        (
            "erdos-renyi",
            ER_PROBABILITIES.map(Family::ErdosRenyi).to_vec(),
        ),
        ("regular", REGULAR_DEGREES.map(Family::Regular).to_vec()),
    ] {
        println!("\n-- {title} graphs --");
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "family", "ip/q D", "ic/q D", "ip/q G", "ic/q G", "ip/q T", "ic/q T"
        );
        for family in families {
            let jobs: Vec<BatchJob> = instances(family, n, count, 9001)
                .into_iter()
                .enumerate()
                .flat_map(|(gi, g)| {
                    let spec = bench::compilation_spec(g, true);
                    strategies
                        .iter()
                        .map(move |(_, options)| {
                            BatchJob::new(spec.clone(), *options, 9200 + gi as u64)
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let compiled = compile_batch(&context, &jobs, workers);

            let mut depths = vec![Vec::new(); strategies.len()];
            let mut gates = vec![Vec::new(); strategies.len()];
            let mut times = vec![Vec::new(); strategies.len()];
            for (ji, result) in compiled.into_iter().enumerate() {
                let c = result.expect("figure workloads compile");
                let si = ji % strategies.len();
                depths[si].push(c.depth() as f64);
                gates[si].push(c.gate_count() as f64);
                times[si].push(c.elapsed().as_secs_f64());
            }
            for (si, (name, _)) in strategies.iter().enumerate() {
                report.add(format!("{family}/{name}/depth"), &depths[si]);
                report.add(format!("{family}/{name}/gates"), &gates[si]);
                report.add(format!("{family}/{name}/time_s"), &times[si]);
            }
            println!(
                "{}",
                row(
                    &family.to_string(),
                    &[
                        ratio_of_means(&depths[1], &depths[0]),
                        ratio_of_means(&depths[2], &depths[0]),
                        ratio_of_means(&gates[1], &gates[0]),
                        ratio_of_means(&gates[2], &gates[0]),
                        ratio_of_means(&times[1], &times[0]),
                        ratio_of_means(&times[2], &times[0]),
                    ],
                )
            );
        }
    }
    println!("\n(paper shape: both IP and IC well below 1.0 on depth — strongest on dense graphs;\n IC below IP on gate-count; IP fastest to compile)");
    report.save_and_announce();
    cli.write_manifest();
}
