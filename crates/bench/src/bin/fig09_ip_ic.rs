//! Figure 9: IP (+QAIM) and IC (+QAIM) versus QAIM-only — depth,
//! gate-count and compilation-time ratios on 20-node Erdős–Rényi and
//! regular MaxCut-QAOA instances, ibmq_20_tokyo target.
//!
//! Usage: `fig09_ip_ic [instances-per-bar]` (paper: 50).

use bench::stats::{ratio_of_means, row};
use bench::workloads::{instances, Family, ER_PROBABILITIES, REGULAR_DEGREES};
use qcompile::{compile, CompileOptions};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let count: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let topo = Topology::ibmq_20_tokyo();
    let n = 20;

    let strategies = [
        ("qaim", CompileOptions::qaim_only()),
        ("ip", CompileOptions::ip()),
        ("ic", CompileOptions::ic()),
    ];

    println!("=== Figure 9: IP/IC vs QAIM (n={n}, {count} instances/bar) ===");
    for (title, families) in [
        ("erdos-renyi", ER_PROBABILITIES.map(Family::ErdosRenyi).to_vec()),
        ("regular", REGULAR_DEGREES.map(Family::Regular).to_vec()),
    ] {
        println!("\n-- {title} graphs --");
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "family", "ip/q D", "ic/q D", "ip/q G", "ic/q G", "ip/q T", "ic/q T"
        );
        for family in families {
            let graphs = instances(family, n, count, 9001);
            let mut depths = vec![Vec::new(); 3];
            let mut gates = vec![Vec::new(); 3];
            let mut times = vec![Vec::new(); 3];
            for (gi, g) in graphs.into_iter().enumerate() {
                let spec = bench::compilation_spec(g, true);
                for (si, (_, options)) in strategies.iter().enumerate() {
                    let mut rng = StdRng::seed_from_u64(9200 + gi as u64);
                    let c = compile(&spec, &topo, None, options, &mut rng);
                    depths[si].push(c.depth() as f64);
                    gates[si].push(c.gate_count() as f64);
                    times[si].push(c.elapsed().as_secs_f64());
                }
            }
            println!(
                "{}",
                row(
                    &family.to_string(),
                    &[
                        ratio_of_means(&depths[1], &depths[0]),
                        ratio_of_means(&depths[2], &depths[0]),
                        ratio_of_means(&gates[1], &gates[0]),
                        ratio_of_means(&gates[2], &gates[0]),
                        ratio_of_means(&times[1], &times[0]),
                        ratio_of_means(&times[2], &times[0]),
                    ],
                )
            );
        }
    }
    println!("\n(paper shape: both IP and IC well below 1.0 on depth — strongest on dense graphs;\n IC below IP on gate-count; IP fastest to compile)");
}
