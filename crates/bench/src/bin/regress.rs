//! `regress` — the CI regression gate.
//!
//! Usage:
//!
//! ```text
//! regress <baseline.json> <current.json> [--tolerance 0.15] [--report <path>] [--gate-spans]
//! ```
//!
//! Both arguments may be bench reports (`BENCH_*.json`) or qtrace run
//! manifests; see [`bench::regress`] for the comparison rule. Exit
//! status: 0 when no gating series regressed, 1 on a regression, 2 on
//! usage/parse errors (including two artifacts with no common series —
//! a vacuous gate is treated as broken, not passing).

use std::path::PathBuf;
use std::process::ExitCode;

use bench::regress::{diff, gate_spans, parse_artifact};

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    tolerance: f64,
    report: Option<PathBuf>,
    gate_spans: bool,
}

fn usage_text() -> String {
    "usage: regress <baseline.json> <current.json> [--tolerance 0.15] [--report <path>] [--gate-spans]\n\
     \n\
     options:\n\
     \x20 --tolerance <frac>  relative tolerance before a shift counts (default 0.15)\n\
     \x20 --report <path>     also write the comparison as JSON to <path>\n\
     \x20 --gate-spans        let span wall-time series (mean/p50/p90/p99) fail the gate\n\
     \x20 -h, --help          print this help and exit"
        .to_owned()
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut tolerance = 0.15;
    let mut report = None;
    let mut gate_spans = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            "--tolerance" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                tolerance = v;
            }
            "--report" => {
                let Some(p) = iter.next() else { usage() };
                report = Some(PathBuf::from(p));
            }
            "--gate-spans" => gate_spans = true,
            _ if arg.starts_with("--") => usage(),
            _ => positional.push(PathBuf::from(arg)),
        }
    }
    if positional.len() != 2 || !(0.0..10.0).contains(&tolerance) {
        usage();
    }
    let current = positional.pop().expect("len checked");
    let baseline = positional.pop().expect("len checked");
    Args {
        baseline,
        current,
        tolerance,
        report,
        gate_spans,
    }
}

fn load(path: &PathBuf) -> bench::regress::SeriesSet {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("regress: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    match parse_artifact(&text) {
        Ok(set) => set,
        Err(e) => {
            eprintln!("regress: {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut baseline = load(&args.baseline);
    let mut current = load(&args.current);
    if args.gate_spans {
        gate_spans(&mut baseline);
        gate_spans(&mut current);
    }
    let report = match diff(&baseline, &current, args.tolerance) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("regress: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("regress: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("[wrote {}]", path.display());
    }
    if report.has_regression() {
        println!(
            "RESULT: REGRESSION detected (tolerance {:.0}%)",
            args.tolerance * 100.0
        );
        ExitCode::from(1)
    } else {
        println!("RESULT: ok");
        ExitCode::SUCCESS
    }
}
