//! Figure 12: impact of the layer packing limit on depth, gate-count and
//! compilation time — IC(+QAIM) on a 36-qubit 6×6 grid, 36-node
//! Erdős–Rényi (p=0.5) and 15-regular graphs.
//!
//! Usage: `fig12_packing [instances-per-point]` (paper: 20; default 5).

use bench::stats::{mean, row};
use bench::workloads::{instances, Family};
use qcompile::{compile, CompileOptions};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let count: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let topo = Topology::grid(6, 6);
    let n = 36;

    println!("=== Figure 12: packing-limit sweep (IC+QAIM, {}, {count} instances/point) ===", topo.name());
    for (title, family) in [
        ("erdos-renyi p=0.5", Family::ErdosRenyi(0.5)),
        ("regular k=15", Family::Regular(15)),
    ] {
        println!("\n-- {title} ({n} nodes) --");
        println!(
            "{:<18} {:>10} {:>10} {:>10}",
            "packing limit", "depth", "gates", "time (s)"
        );
        let graphs = instances(family, n, count, 12_001);
        for limit in [1usize, 3, 5, 7, 9, 11, 13, 15, 18] {
            let mut depths = Vec::new();
            let mut gates = Vec::new();
            let mut times = Vec::new();
            for (gi, g) in graphs.iter().enumerate() {
                let spec = bench::compilation_spec(g.clone(), true);
                let mut rng = StdRng::seed_from_u64(12_100 + gi as u64);
                let options = CompileOptions::ic().with_packing_limit(limit);
                let c = compile(&spec, &topo, None, &options, &mut rng);
                depths.push(c.depth() as f64);
                gates.push(c.gate_count() as f64);
                times.push(c.elapsed().as_secs_f64());
            }
            println!(
                "{}",
                row(&limit.to_string(), &[mean(&depths), mean(&gates), mean(&times)])
            );
        }
    }
    println!("\n(paper shape: depth falls with packing limit then degrades past ~11;\n gate count rises with limit; compile time falls monotonically)");
}
