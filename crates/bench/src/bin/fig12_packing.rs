//! Figure 12: impact of the layer packing limit on depth, gate-count and
//! compilation time — IC(+QAIM) on a 36-qubit 6×6 grid, 36-node
//! Erdős–Rényi (p=0.5) and 15-regular graphs.
//!
//! Usage: `fig12_packing [instances-per-point] [--manifest <path>] [--trace <path>]`
//! (paper: 20 instances/point; default 5).

use bench::cli::Cli;
use bench::report::Report;
use bench::stats::{mean, row};
use bench::workloads::{instances, Family};
use qcompile::{compile_batch, default_workers, BatchJob, CompileOptions};
use qhw::{HardwareContext, Topology};

const LIMITS: [usize; 9] = [1, 3, 5, 7, 9, 11, 13, 15, 18];

fn main() {
    let cli = Cli::parse("fig12_packing");
    let count = cli.pos_usize(0, 5);
    let topo = Topology::grid(6, 6);
    let context = HardwareContext::new(topo.clone());
    let workers = default_workers();
    let n = 36;

    println!(
        "=== Figure 12: packing-limit sweep (IC+QAIM, {}, {count} instances/point) ===",
        topo.name()
    );
    let mut report = Report::new("fig12_packing");
    for (title, family) in [
        ("erdos-renyi p=0.5", Family::ErdosRenyi(0.5)),
        ("regular k=15", Family::Regular(15)),
    ] {
        println!("\n-- {title} ({n} nodes) --");
        println!(
            "{:<18} {:>10} {:>10} {:>10}",
            "packing limit", "depth", "gates", "time (s)"
        );
        let specs: Vec<_> = instances(family, n, count, 12_001)
            .into_iter()
            .map(|g| bench::compilation_spec(g, true))
            .collect();
        // The whole sweep is one batch: every (limit, instance) pair keeps
        // the per-instance seed of the old serial loop.
        let jobs: Vec<BatchJob> = LIMITS
            .iter()
            .flat_map(|&limit| {
                specs.iter().enumerate().map(move |(gi, spec)| {
                    BatchJob::new(
                        spec.clone(),
                        CompileOptions::ic().with_packing_limit(limit),
                        12_100 + gi as u64,
                    )
                })
            })
            .collect();
        let compiled = compile_batch(&context, &jobs, workers);

        for (li, &limit) in LIMITS.iter().enumerate() {
            let mut depths = Vec::new();
            let mut gates = Vec::new();
            let mut times = Vec::new();
            for result in &compiled[li * count..(li + 1) * count] {
                let c = result.as_ref().expect("figure workloads compile");
                depths.push(c.depth() as f64);
                gates.push(c.gate_count() as f64);
                times.push(c.elapsed().as_secs_f64());
            }
            report.add(format!("{title}/limit={limit}/depth"), &depths);
            report.add(format!("{title}/limit={limit}/gates"), &gates);
            report.add(format!("{title}/limit={limit}/time_s"), &times);
            println!(
                "{}",
                row(
                    &limit.to_string(),
                    &[mean(&depths), mean(&gates), mean(&times)]
                )
            );
        }
    }
    println!("\n(paper shape: depth falls with packing limit then degrades past ~11;\n gate count rises with limit; compile time falls monotonically)");
    report.save_and_announce();
    cli.write_manifest();
}
