//! Seeded chaos campaign for the `qserve` fault-tolerance plane.
//!
//! Where [`crate::serveload`] proves the happy path (cached serving
//! throughput under a fig09-class request mix), this module detonates
//! the service on purpose and gates what the wreckage looks like. Six
//! phases run against fresh services over one small key universe
//! (6-qubit MaxCut instances on a 2×3 grid, all four paper
//! configurations):
//!
//! 1. **Fault storm** — a seeded [`ServiceFaultPlane`] injects worker
//!    panics and virtual stalls into the compile stream; deadlines ride
//!    on every third request. Panics negative-cache with backoff TTLs,
//!    re-detonate after expiry, and quarantine their spec; stalled
//!    deadline requests observe cooperative cancellation.
//! 2. **Queue reap** — a `workers: 0` service accumulates
//!    deadline-bearing jobs, the logical clock advances past them, and
//!    every waiter gets the structured deadline error; a second batch
//!    drains inline to prove the queue still serves.
//! 3. **Breaker storm** — an always-panic plane trips one tenant's
//!    circuit breaker; its misses fail fast, another tenant stays
//!    admitted, and the post-cooldown probe re-trips.
//! 4. **Throttle burst** — a tiny token bucket rejects a compile burst,
//!    then refills on the logical clock.
//! 5. **Reload storm** — seeded calibration hot-reload points invalidate
//!    VIC entries mid-stream.
//! 6. **Crash and recover** — a spill-backed service is warmed and
//!    dropped, a seeded fraction of its spill files is corrupted
//!    (truncation + bit flips), and restarted services must recover the
//!    rest, re-compile the damage, and drop stale-epoch VIC spills after
//!    a calibration change.
//!
//! Every request is issued through [`Service::call`] (serialized), every
//! expiry runs on the service's logical clock, and every fault comes
//! from a seeded schedule keyed by compile admission ordinal — so the
//! counter side of the campaign, and therefore its normalized run
//! manifest, is byte-identical across machines *and worker counts*.

use std::path::PathBuf;
use std::sync::Arc;

use qaoa::MaxCut;
use qcompile::{CompileOptions, QaoaSpec};
use qhw::fault::{FaultInjector, ServiceFaultPlane, SpillCorruption};
use qhw::{Calibration, Topology};
use qserve::{
    BackoffConfig, BreakerConfig, BucketConfig, CacheKey, JournalEvent, Outcome, Request, Response,
    ServeError, Service, ServiceConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workloads::{instances, Family};

/// One chaos campaign, fully determined by its field values.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Requests in the fault-storm phase.
    pub requests: usize,
    /// Problem instances per family (key universe scale).
    pub instances_per_family: usize,
    /// QAOA levels 1..=max_p per instance.
    pub max_p: usize,
    /// Service worker threads (the queue-reap phase always uses 0).
    pub workers: usize,
    /// Tenant queues (min 2: the breaker phase needs an innocent one).
    pub tenants: usize,
    /// Master seed of the request schedule, fault plane and corruption.
    pub seed: u64,
    /// Fault-plane probability of an injected worker panic per compile.
    pub panic_rate: f64,
    /// Fault-plane probability of a virtual stall per compile.
    pub stall_rate: f64,
    /// Virtual stall length in logical ticks (must exceed
    /// `deadline_ticks` so stalled deadline requests cancel).
    pub stall_ticks: u64,
    /// Relative deadline given to every third fault-storm request.
    pub deadline_ticks: u64,
    /// Explicit clock advance after each fault-storm request (lets
    /// negative-cache TTLs lapse and retries re-detonate).
    pub tick_stride: u64,
    /// Requests in the reload-storm phase.
    pub reload_requests: usize,
    /// Calibration hot-reloads fired at seeded points of that phase.
    pub reload_storms: usize,
}

impl ChaosConfig {
    /// The CI-gated quick configuration (16-key universe).
    pub fn quick() -> ChaosConfig {
        ChaosConfig {
            requests: 240,
            instances_per_family: 1,
            max_p: 2,
            workers: 4,
            tenants: 3,
            seed: 0x5EED_CA05,
            panic_rate: 0.35,
            stall_rate: 0.20,
            stall_ticks: 16,
            deadline_ticks: 8,
            tick_stride: 2,
            reload_requests: 60,
            reload_storms: 5,
        }
    }

    /// The full configuration (32-key universe, 10x the storm length).
    pub fn full() -> ChaosConfig {
        ChaosConfig {
            requests: 2_400,
            instances_per_family: 2,
            reload_requests: 600,
            reload_storms: 12,
            ..ChaosConfig::quick()
        }
    }
}

/// What the campaign observed: response-side tallies (what callers saw)
/// plus the service-side counters of each phase. Deterministic for a
/// fixed [`ChaosConfig`] — the serve-chaos CI gate diffs these at zero
/// tolerance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosOutcome {
    /// Requests issued across all phases.
    pub requests: u64,
    /// Responses carrying an artifact.
    pub delivered: u64,
    /// Responses carrying a structured error (never a panic).
    pub failed: u64,
    /// Responses failing with [`ServeError::DeadlineExceeded`].
    pub deadline_failures: u64,
    /// Responses failing fast with [`ServeError::Quarantined`].
    pub quarantine_rejections: u64,
    /// Responses failing fast with [`ServeError::CircuitOpen`].
    pub breaker_rejections: u64,
    /// Responses failing fast with [`ServeError::Throttled`].
    pub throttle_rejections: u64,
    /// Queued jobs reaped by deadline sweeps before dispatch.
    pub deadline_reaped: u64,
    /// Negative-cache entries that lapsed and re-admitted a retry.
    pub negative_retries: u64,
    /// Specs quarantined by the fault storm.
    pub quarantined_specs: u64,
    /// Circuit-breaker open transitions across all phases.
    pub breaker_trips: u64,
    /// Whether the innocent tenant stayed admitted while the abusive
    /// tenant's breaker was open (per-tenant isolation).
    pub breaker_isolated: bool,
    /// Cache entries dropped by calibration hot-reloads.
    pub invalidated: u64,
    /// Calibration hot-reloads performed.
    pub epoch_bumps: u64,
    /// Artifacts spilled to disk by the warm phase.
    pub spill_saved: u64,
    /// Artifacts recovered from disk by the same-calibration restart.
    pub spill_recovered: u64,
    /// Spill files rejected at recovery (checksum/parse/fingerprint).
    pub spill_corrupt: u64,
    /// Spill files dropped as stale by the changed-calibration restart.
    pub spill_stale: u64,
    /// `spill_recovered / spilled files` of the same-calibration restart.
    pub recovery_rate: f64,
    /// First-pass cache hits served by the recovered service (artifacts
    /// that crossed the crash).
    pub recovered_hits: u64,
    /// VIC keys served as hits by the changed-calibration restart —
    /// stale-epoch artifacts escaping invalidation. Must be zero.
    pub stale_vic_hits: u64,
}

/// The campaign's ops-plane harvest: the concatenated journals of every
/// phase (each prefixed with a `phase` marker event) plus lifecycle
/// conservation tallies. Deterministic for a fixed [`ChaosConfig`] —
/// the serve-chaos CI job diffs the journal bytes against a committed
/// baseline.
#[derive(Debug, Clone, Default)]
pub struct OpsArtifacts {
    /// Concatenated per-phase journals as deterministic JSON lines.
    pub journal: String,
    /// Lifecycle records captured across every phase service.
    pub lifecycle_records: u64,
    /// Lifecycle records that reached exactly one terminal stage.
    pub lifecycle_terminals: u64,
    /// Lifecycle records lost to the capacity bound (must stay 0).
    pub lifecycle_dropped: u64,
}

impl OpsArtifacts {
    /// Drains one phase service's ops plane into the campaign harvest.
    /// Called while the phase service is still alive, after its last
    /// request resolved, so the journal carries every completion-side
    /// event of the phase.
    fn harvest(&mut self, phase: &'static str, service: &Service) {
        let marker = [JournalEvent::new(0, "phase").note(phase)];
        self.journal.push_str(&qserve::render_journal(&marker));
        self.journal
            .push_str(&qserve::render_journal(&service.take_journal()));
        let traces = service.take_lifecycle();
        self.lifecycle_records += traces.len() as u64;
        self.lifecycle_terminals += traces
            .iter()
            .filter(|trace| trace.terminal_count() == 1)
            .count() as u64;
        self.lifecycle_dropped += service.lifecycle_dropped();
    }
}

impl ChaosOutcome {
    /// Folds one response into the campaign tallies (and the
    /// `serve_chaos/*` counter series).
    fn tally(&mut self, response: &Response) {
        let q = qtrace::global();
        self.requests += 1;
        q.add("serve_chaos/requests", 1);
        match &response.result {
            Ok(_) => {
                self.delivered += 1;
                q.add("serve_chaos/delivered", 1);
            }
            Err(error) => {
                self.failed += 1;
                q.add("serve_chaos/failed", 1);
                match error {
                    ServeError::DeadlineExceeded { .. } => self.deadline_failures += 1,
                    ServeError::Quarantined { .. } => self.quarantine_rejections += 1,
                    ServeError::CircuitOpen { .. } => self.breaker_rejections += 1,
                    ServeError::Throttled { .. } => self.throttle_rejections += 1,
                    ServeError::Overloaded { .. } | ServeError::Compile(_) => {}
                }
            }
        }
    }
}

/// The fault plane detonates worker panics by the hundreds; the default
/// panic hook would print (and, under `RUST_BACKTRACE`, symbolize)
/// every one — pure noise and most of the campaign's wall time. This
/// installs a process-wide filter that silences exactly the fault
/// plane's payload and defers every other panic to the previous hook.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected worker panic"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// The campaign's key universe: every (instance, p, configuration)
/// combination over 6-node Erdős–Rényi and 3-regular MaxCut instances.
fn key_universe(cfg: &ChaosConfig) -> Vec<(QaoaSpec, CompileOptions)> {
    let mut keys = Vec::new();
    for family in [Family::ErdosRenyi(0.5), Family::Regular(3)] {
        for graph in instances(family, 6, cfg.instances_per_family, 7907) {
            let problem = MaxCut::without_optimum(graph);
            for p in 1..=cfg.max_p {
                let spec = QaoaSpec::from_maxcut_parametric(&problem, p, true);
                for options in [
                    CompileOptions::qaim_only(),
                    CompileOptions::ip(),
                    CompileOptions::ic(),
                    CompileOptions::vic(),
                ] {
                    keys.push((spec.clone(), options));
                }
            }
        }
    }
    keys
}

/// The base service configuration every phase starts from.
fn base_config(cfg: &ChaosConfig, universe: usize) -> ServiceConfig {
    ServiceConfig {
        workers: cfg.workers,
        cache_capacity: universe + 8,
        queue_capacity: 64,
        tenants: cfg.tenants.max(2),
        ..ServiceConfig::default()
    }
}

/// Whether `options` consume calibration (their cached artifacts carry
/// a calibration epoch and must die on reload/stale recovery).
fn calibration_dependent(spec: &QaoaSpec, options: CompileOptions) -> bool {
    CacheKey::new(spec.clone(), options, 0, 0)
        .calibration_epoch
        .is_some()
}

/// Phase 1: the seeded panic/stall storm with deadlines, backoff
/// retries and quarantine.
fn fault_storm(
    cfg: &ChaosConfig,
    topo: &Topology,
    calibration: &Calibration,
    keys: &[(QaoaSpec, CompileOptions)],
    out: &mut ChaosOutcome,
    ops: &mut OpsArtifacts,
) {
    qtrace::global().add("serve_chaos/phases", 1);
    let plane = ServiceFaultPlane::plan(
        cfg.seed ^ 0xFA01,
        cfg.requests,
        cfg.panic_rate,
        cfg.stall_rate,
        cfg.stall_ticks,
    );
    let service = Service::new(
        topo.clone(),
        Some(calibration.clone()),
        ServiceConfig {
            // Short TTLs so expired negatives re-detonate within the
            // storm and strike counts actually accumulate.
            backoff: BackoffConfig {
                base_ticks: 4,
                max_ticks: 64,
                ..BackoffConfig::default()
            },
            fault_plane: Some(Arc::new(plane)),
            ..base_config(cfg, keys.len())
        },
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for i in 0..cfg.requests {
        let key_idx = rng.gen_range(0..keys.len());
        let (spec, options) = &keys[key_idx];
        let mut request = Request::new(
            rng.gen_range(0..cfg.tenants as u32),
            spec.clone(),
            *options,
            cfg.seed ^ key_idx as u64,
        );
        if i % 3 == 0 {
            request = request.with_deadline(cfg.deadline_ticks);
        }
        out.tally(&service.call(request));
        service.advance(cfg.tick_stride);
    }
    let stats = service.stats();
    out.negative_retries += stats.negative_expired;
    out.deadline_reaped += stats.deadline_reaped;
    out.quarantined_specs += stats.quarantined_specs;
    out.breaker_trips += stats.breaker_trips;
    service.flush_telemetry();
    ops.harvest("fault_storm", &service);
}

/// Phase 2: queued jobs past their deadline are reaped before dispatch
/// (`workers: 0`), then a fresh batch drains inline.
fn queue_reap(
    cfg: &ChaosConfig,
    topo: &Topology,
    calibration: &Calibration,
    keys: &[(QaoaSpec, CompileOptions)],
    out: &mut ChaosOutcome,
    ops: &mut OpsArtifacts,
) {
    qtrace::global().add("serve_chaos/phases", 1);
    let service = Service::new(
        topo.clone(),
        Some(calibration.clone()),
        ServiceConfig {
            workers: 0,
            ..base_config(cfg, keys.len())
        },
    );
    let batch = keys.len().min(6);
    let mut tickets = Vec::with_capacity(batch);
    for (i, (spec, options)) in keys.iter().take(batch).enumerate() {
        let tenant = (i % cfg.tenants) as u32;
        let request = Request::new(tenant, spec.clone(), *options, cfg.seed).with_deadline(2);
        tickets.push(service.submit(request));
    }
    // Nothing dequeues (no workers); the clock leaves every job behind.
    service.advance(cfg.deadline_ticks + 2);
    for ticket in tickets {
        out.tally(&ticket.wait());
    }
    // The reaped keys were forgotten, not negatively cached: the same
    // batch without deadlines drains to delivery.
    let mut tickets = Vec::with_capacity(batch);
    for (i, (spec, options)) in keys.iter().take(batch).enumerate() {
        let tenant = (i % cfg.tenants) as u32;
        tickets.push(service.submit(Request::new(tenant, spec.clone(), *options, cfg.seed)));
    }
    while service.drain_one() {}
    for ticket in tickets {
        out.tally(&ticket.wait());
    }
    out.deadline_reaped += service.stats().deadline_reaped;
    service.flush_telemetry();
    ops.harvest("queue_reap", &service);
}

/// Phase 3: an always-panic plane trips tenant 0's breaker; tenant 1
/// stays admitted; the post-cooldown probe re-trips; a second cooldown
/// later the fault horizon is past, so the next probe compiles clean
/// and re-closes the breaker.
fn breaker_storm(
    cfg: &ChaosConfig,
    topo: &Topology,
    calibration: &Calibration,
    keys: &[(QaoaSpec, CompileOptions)],
    out: &mut ChaosOutcome,
    ops: &mut OpsArtifacts,
) {
    qtrace::global().add("serve_chaos/phases", 1);
    let cooldown = 16;
    // Horizon 6 covers exactly the compiles meant to panic (four trip
    // strikes, the innocent tenant's miss, the first probe); compiles
    // past it succeed, so the recovery probe below re-closes the
    // breaker.
    let plane = ServiceFaultPlane::plan(cfg.seed ^ 0xFA03, 6, 1.0, 0.0, 0);
    let service = Service::new(
        topo.clone(),
        Some(calibration.clone()),
        ServiceConfig {
            // Quarantine off: this phase isolates the breaker.
            quarantine_threshold: 0,
            breaker: BreakerConfig {
                failure_threshold: 4,
                cooldown_ticks: cooldown,
            },
            fault_plane: Some(Arc::new(plane)),
            ..base_config(cfg, keys.len())
        },
    );
    let request = |key_idx: usize, tenant: u32| {
        let (spec, options) = &keys[key_idx % keys.len()];
        Request::new(tenant, spec.clone(), *options, cfg.seed)
    };
    // Four failures trip tenant 0; the next four fail fast.
    for key_idx in 0..8 {
        out.tally(&service.call(request(key_idx, 0)));
    }
    // Tenant 1 is still admitted (its compile fails, but it is *tried*).
    let innocent = service.call(request(8, 1));
    out.breaker_isolated = innocent.outcome == Outcome::Miss;
    out.tally(&innocent);
    // Cooldown over: the half-open probe is admitted, panics, re-trips.
    service.advance(cooldown + 1);
    out.tally(&service.call(request(9, 0)));
    out.tally(&service.call(request(10, 0)));
    // Second cooldown: the fault horizon is behind us, the probe
    // compiles clean and the breaker re-closes; the tenant is served
    // again.
    service.advance(cooldown + 1);
    out.tally(&service.call(request(11, 0)));
    out.tally(&service.call(request(12, 0)));
    out.breaker_trips += service.stats().breaker_trips;
    service.flush_telemetry();
    ops.harvest("breaker_storm", &service);
}

/// Phase 4: a tiny token bucket rejects a compile burst, then refills
/// on the logical clock.
fn throttle_burst(
    cfg: &ChaosConfig,
    topo: &Topology,
    calibration: &Calibration,
    keys: &[(QaoaSpec, CompileOptions)],
    out: &mut ChaosOutcome,
    ops: &mut OpsArtifacts,
) {
    qtrace::global().add("serve_chaos/phases", 1);
    let refill = 64;
    let service = Service::new(
        topo.clone(),
        Some(calibration.clone()),
        ServiceConfig {
            bucket: Some(BucketConfig {
                capacity: 3,
                refill_ticks: refill,
            }),
            ..base_config(cfg, keys.len())
        },
    );
    for (spec, options) in keys.iter().take(8) {
        out.tally(&service.call(Request::new(0, spec.clone(), *options, cfg.seed)));
    }
    // One token back after a refill interval.
    service.advance(refill);
    let (spec, options) = &keys[keys.len().min(9) - 1];
    out.tally(&service.call(Request::new(0, spec.clone(), *options, cfg.seed)));
    service.flush_telemetry();
    ops.harvest("throttle_burst", &service);
}

/// Phase 5: seeded calibration hot-reload points invalidate VIC entries
/// mid-stream.
fn reload_storm(
    cfg: &ChaosConfig,
    topo: &Topology,
    calibrations: &[Calibration],
    keys: &[(QaoaSpec, CompileOptions)],
    out: &mut ChaosOutcome,
    ops: &mut OpsArtifacts,
) {
    qtrace::global().add("serve_chaos/phases", 1);
    let points = ServiceFaultPlane::reload_points(cfg.seed, cfg.reload_requests, cfg.reload_storms);
    let service = Service::new(
        topo.clone(),
        Some(calibrations[0].clone()),
        base_config(cfg, keys.len()),
    );
    for (i, (spec, options)) in keys.iter().enumerate() {
        let tenant = (i % cfg.tenants) as u32;
        out.tally(&service.warm(Request::new(tenant, spec.clone(), *options, cfg.seed)));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE10D);
    let hot = (keys.len() / 5).max(1);
    let mut storms = 0usize;
    for i in 0..cfg.reload_requests {
        if points.binary_search(&i).is_ok() {
            storms += 1;
            let next = calibrations[storms.min(calibrations.len() - 1)].clone();
            service.reload_calibration(Some(next));
        }
        let key_idx = if rng.gen_bool(0.8) {
            rng.gen_range(0..hot)
        } else {
            rng.gen_range(0..keys.len())
        };
        let (spec, options) = &keys[key_idx];
        let tenant = rng.gen_range(0..cfg.tenants as u32);
        out.tally(&service.call(Request::new(tenant, spec.clone(), *options, cfg.seed)));
    }
    let stats = service.stats();
    out.invalidated += stats.invalidated;
    out.epoch_bumps += stats.epoch_bumps;
    service.flush_telemetry();
    ops.harvest("reload_storm", &service);
}

/// Phase 6: warm a spill-backed service, kill it, corrupt a seeded
/// tenth of its spill files, and restart twice — once under the same
/// calibration (recovery floor) and once under a changed one (VIC
/// spills must die as stale).
fn spill_crash_recovery(
    cfg: &ChaosConfig,
    topo: &Topology,
    calibrations: &[Calibration],
    keys: &[(QaoaSpec, CompileOptions)],
    out: &mut ChaosOutcome,
    ops: &mut OpsArtifacts,
) {
    qtrace::global().add("serve_chaos/phases", 1);
    let dir = std::env::temp_dir().join(format!(
        "qserve_chaos_{:08x}_{}",
        cfg.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let spill_config = |calibration: &Calibration| {
        (
            topo.clone(),
            Some(calibration.clone()),
            ServiceConfig {
                spill_dir: Some(dir.clone()),
                ..base_config(cfg, keys.len())
            },
        )
    };

    // Warm and "crash" (drop) the first incarnation.
    {
        let (t, c, config) = spill_config(&calibrations[0]);
        let service = Service::new(t, c, config);
        for (i, (spec, options)) in keys.iter().enumerate() {
            let tenant = (i % cfg.tenants) as u32;
            out.tally(&service.warm(Request::new(tenant, spec.clone(), *options, cfg.seed)));
        }
        out.spill_saved += service.stats().spill_saved;
        service.flush_telemetry();
        ops.harvest("spill_warm", &service);
    }

    // Torn writes and bit rot on a seeded tenth of the spilled files.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("spill dir exists after warm")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "qart"))
        .collect();
    files.sort();
    let spilled = files.len();
    let corrupt_n = (spilled / 10).max(1);
    let mut injector = FaultInjector::new(cfg.seed);
    for (i, path) in files.iter().take(corrupt_n).enumerate() {
        let kind = if i % 2 == 0 {
            SpillCorruption::Truncate
        } else {
            SpillCorruption::BitFlip
        };
        injector
            .corrupt_spill_file(path, kind)
            .expect("corrupting a spill file");
    }

    // Same-calibration restart: everything verifiable comes back.
    {
        let (t, c, config) = spill_config(&calibrations[0]);
        let service = Service::new(t, c, config);
        let stats = service.stats();
        out.spill_recovered += stats.spill_recovered;
        out.spill_corrupt += stats.spill_corrupt;
        out.recovery_rate = stats.spill_recovered as f64 / spilled.max(1) as f64;
        for (i, (spec, options)) in keys.iter().enumerate() {
            let tenant = (i % cfg.tenants) as u32;
            let response = service.call(Request::new(tenant, spec.clone(), *options, cfg.seed));
            if response.outcome == Outcome::Hit {
                out.recovered_hits += 1;
            }
            out.tally(&response);
        }
        service.flush_telemetry();
        ops.harvest("spill_recover", &service);
    }

    // Changed-calibration restart: VIC spills are stale and must be
    // dropped; serving one as a hit would be a stale-epoch escape.
    {
        let (t, c, config) = spill_config(&calibrations[1]);
        let service = Service::new(t, c, config);
        out.spill_stale += service.stats().spill_stale;
        for (i, (spec, options)) in keys.iter().enumerate() {
            let tenant = (i % cfg.tenants) as u32;
            let response = service.call(Request::new(tenant, spec.clone(), *options, cfg.seed));
            if calibration_dependent(spec, *options) && response.outcome == Outcome::Hit {
                out.stale_vic_hits += 1;
            }
            out.tally(&response);
        }
        service.flush_telemetry();
        ops.harvest("spill_stale", &service);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs the full six-phase campaign. Deterministic for a fixed `cfg`:
/// two runs (any worker count ≥ 1) produce equal [`ChaosOutcome`]s and
/// byte-identical normalized run manifests.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    run_chaos_full(cfg).0
}

/// [`run_chaos`] plus the ops-plane harvest: the per-phase journals
/// (byte-identical across runs and worker counts) and the lifecycle
/// conservation tallies.
pub fn run_chaos_full(cfg: &ChaosConfig) -> (ChaosOutcome, OpsArtifacts) {
    silence_injected_panics();
    let topo = Topology::grid(2, 3);
    let mut cal_rng = StdRng::seed_from_u64(cfg.seed ^ 0xCA11_FA17);
    let mut calibrations = vec![Calibration::random_normal(&topo, 2e-2, 8e-3, &mut cal_rng)];
    for _ in 0..cfg.reload_storms.max(1) {
        let next = calibrations
            .last()
            .expect("seeded above")
            .drifted(0.3, &mut cal_rng);
        calibrations.push(next);
    }
    let keys = key_universe(cfg);
    let mut out = ChaosOutcome::default();
    let mut ops = OpsArtifacts::default();
    fault_storm(cfg, &topo, &calibrations[0], &keys, &mut out, &mut ops);
    queue_reap(cfg, &topo, &calibrations[0], &keys, &mut out, &mut ops);
    breaker_storm(cfg, &topo, &calibrations[0], &keys, &mut out, &mut ops);
    throttle_burst(cfg, &topo, &calibrations[0], &keys, &mut out, &mut ops);
    reload_storm(cfg, &topo, &calibrations, &keys, &mut out, &mut ops);
    spill_crash_recovery(cfg, &topo, &calibrations, &keys, &mut out, &mut ops);
    (out, ops)
}
