//! Small statistics helpers for the experiment binaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation; 0.0 for fewer than two points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Ratio of means `mean(num) / mean(den)` — the "ratio of the mean depth
/// and gate-counts" the paper plots in Figures 7–9.
///
/// # Panics
///
/// Panics if the denominator mean is zero.
pub fn ratio_of_means(num: &[f64], den: &[f64]) -> f64 {
    let d = mean(den);
    assert!(d != 0.0, "denominator mean is zero");
    mean(num) / d
}

/// Median; 0.0 for an empty slice. Even-length slices average the two
/// middle elements.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// A seeded percentile-bootstrap 95% confidence interval for the mean:
/// `resamples` resampled means, interval between the 2.5th and 97.5th
/// percentiles. Deterministic for a given `(xs, resamples, seed)`.
///
/// Degenerate inputs collapse to a zero-width interval: `(0, 0)` for an
/// empty slice, `(x, x)` for a single sample.
pub fn bootstrap_ci95(xs: &[f64], resamples: usize, seed: u64) -> (f64, f64) {
    match xs {
        [] => return (0.0, 0.0),
        [x] => return (*x, *x),
        _ => {}
    }
    assert!(resamples >= 2, "need at least two resamples");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let total: f64 = (0..xs.len()).map(|_| xs[rng.gen_range(0..xs.len())]).sum();
            total / xs.len() as f64
        })
        .collect();
    means.sort_by(f64::total_cmp);
    let lo = means[(resamples as f64 * 0.025) as usize];
    let hi = means[((resamples as f64 * 0.975) as usize).min(resamples - 1)];
    (lo, hi)
}

/// The distribution summary the figure binaries emit as JSON: sample
/// count, mean, median and a 95% bootstrap CI for the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Lower end of the 95% bootstrap CI for the mean.
    pub ci_lo: f64,
    /// Upper end of the 95% bootstrap CI for the mean.
    pub ci_hi: f64,
}

/// Summarizes `xs` with a 1000-resample bootstrap seeded by `seed`.
pub fn summarize(xs: &[f64], seed: u64) -> Summary {
    let (ci_lo, ci_hi) = bootstrap_ci95(xs, 1000, seed);
    Summary {
        n: xs.len(),
        mean: mean(xs),
        median: median(xs),
        ci_lo,
        ci_hi,
    }
}

/// Renders one aligned table row: a label plus fixed-width numeric cells.
pub fn row(label: &str, cells: &[f64]) -> String {
    let mut out = format!("{label:<18}");
    for c in cells {
        out.push_str(&format!(" {c:>9.3}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ratios() {
        assert!((ratio_of_means(&[1.0, 3.0], &[4.0, 4.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = ratio_of_means(&[1.0], &[0.0]);
    }

    #[test]
    fn median_handles_parity_and_edges() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn bootstrap_ci_is_deterministic_and_brackets_the_mean() {
        let xs: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let a = bootstrap_ci95(&xs, 1000, 42);
        let b = bootstrap_ci95(&xs, 1000, 42);
        assert_eq!(a, b, "same seed, same interval");
        let (lo, hi) = a;
        let m = mean(&xs);
        assert!(lo <= m && m <= hi, "CI [{lo}, {hi}] must bracket {m}");
        assert!(hi - lo < 2.0 * std_dev(&xs), "CI should be tighter than ±σ");
        assert_eq!(bootstrap_ci95(&[], 100, 1), (0.0, 0.0));
        assert_eq!(bootstrap_ci95(&[3.5], 100, 1), (3.5, 3.5));
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = summarize(&xs, 7);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert!(s.ci_lo <= s.mean && s.mean <= s.ci_hi);
    }

    #[test]
    fn row_formats() {
        let r = row("qaim", &[0.5, 1.0]);
        assert!(r.starts_with("qaim"));
        assert!(r.contains("0.500"));
        assert!(r.contains("1.000"));
    }
}
