//! Small statistics helpers for the experiment binaries.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation; 0.0 for fewer than two points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Ratio of means `mean(num) / mean(den)` — the "ratio of the mean depth
/// and gate-counts" the paper plots in Figures 7–9.
///
/// # Panics
///
/// Panics if the denominator mean is zero.
pub fn ratio_of_means(num: &[f64], den: &[f64]) -> f64 {
    let d = mean(den);
    assert!(d != 0.0, "denominator mean is zero");
    mean(num) / d
}

/// Renders one aligned table row: a label plus fixed-width numeric cells.
pub fn row(label: &str, cells: &[f64]) -> String {
    let mut out = format!("{label:<18}");
    for c in cells {
        out.push_str(&format!(" {c:>9.3}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ratios() {
        assert!((ratio_of_means(&[1.0, 3.0], &[4.0, 4.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = ratio_of_means(&[1.0], &[0.0]);
    }

    #[test]
    fn row_formats() {
        let r = row("qaim", &[0.5, 1.0]);
        assert!(r.starts_with("qaim"));
        assert!(r.contains("0.500"));
        assert!(r.contains("1.000"));
    }
}
