//! A deterministic compile-quality report for the CI regression gate.
//!
//! Timing benches flap on shared CI runners; compilation *quality* does
//! not. For a fixed workload, topology and seed, the compiler is fully
//! deterministic, so the depth / gate-count / SWAP-count medians below
//! are exact and their bootstrap CIs degenerate — any shift beyond the
//! `regress` tolerance is a real behavior change, not noise. This is the
//! stable half of the CI gate (`results/BENCH_compile_quality.json`);
//! the quick throughput bench is the timing half.
//!
//! The workload is intentionally small (seconds of wall clock): a few
//! Erdős–Rényi and regular instances on ibmq_20_tokyo compiled with each
//! of the paper's strategies.

use crate::report::Report;
use crate::workloads::{instances, Family};
use qcompile::{compile_batch, default_workers, BatchJob, CompileOptions};
use qhw::{Calibration, HardwareContext, Topology};

/// Instances per (family, strategy) cell. Small by design; the medians
/// are deterministic regardless.
const COUNT: usize = 4;
/// Graph size: the paper's 20-node regime on the 20-qubit tokyo target.
const NODES: usize = 20;

/// Compiles the fixed workload and returns the `compile_quality` report:
/// one `{family}/{strategy}/{depth,gates,swaps}` series per cell.
pub fn run() -> Report {
    let topo = Topology::ibmq_20_tokyo();
    // Uniform calibration: the noise-aware strategies (IC/VIC) need one,
    // and a constant profile keeps the report machine-independent.
    let cal = Calibration::uniform(&topo, 0.02, 0.002, 0.02);
    let context = HardwareContext::with_calibration(topo, cal);
    let workers = default_workers();
    let strategies = [
        ("naive", CompileOptions::naive()),
        ("qaim", CompileOptions::qaim_only()),
        ("ic", CompileOptions::ic()),
        ("vic", CompileOptions::vic()),
    ];
    let families = [Family::ErdosRenyi(0.3), Family::Regular(4)];

    let mut report = Report::new("compile_quality");
    println!("=== compile_quality (n={NODES}, {COUNT} instances/cell) ===");
    println!(
        "{:<24} {:>8} {:>8} {:>8}",
        "family/strategy", "depth", "gates", "swaps"
    );
    for family in families {
        let jobs: Vec<BatchJob> = instances(family, NODES, COUNT, 7001)
            .into_iter()
            .enumerate()
            .flat_map(|(gi, g)| {
                let spec = crate::compilation_spec(g, true);
                strategies
                    .iter()
                    .map(move |(_, options)| {
                        BatchJob::new(spec.clone(), *options, 9000 + gi as u64)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let compiled = compile_batch(&context, &jobs, workers);

        let mut cells = vec![(Vec::new(), Vec::new(), Vec::new()); strategies.len()];
        for (ji, result) in compiled.into_iter().enumerate() {
            let c = result.expect("quality workloads compile");
            let cell = &mut cells[ji % strategies.len()];
            cell.0.push(c.depth() as f64);
            cell.1.push(c.gate_count() as f64);
            cell.2.push(c.swap_count() as f64);
        }
        for (si, (name, _)) in strategies.iter().enumerate() {
            let (depths, gates, swaps) = &cells[si];
            println!(
                "{:<24} {:>8.1} {:>8.1} {:>8.1}",
                format!("{family}/{name}"),
                crate::stats::mean(depths),
                crate::stats::mean(gates),
                crate::stats::mean(swaps),
            );
            report.add(format!("{family}/{name}/depth"), depths);
            report.add(format!("{family}/{name}/gates"), gates);
            report.add(format!("{family}/{name}/swaps"), swaps);
        }
    }
    report
}
