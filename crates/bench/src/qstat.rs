//! Per-tenant operations dashboard for the `qserve` serving layer.
//!
//! Backs the `qstat` binary. Reads a qtrace run manifest carrying the
//! `qserve/` series family that [`qserve::Service::flush_telemetry`]
//! emits — per-tenant counters, error-code breakdowns, latency spans,
//! the hit-ratio and failure-plane gauges, and per-spec request counts —
//! plus, optionally, the deterministic ops journal, and renders a text
//! dashboard: one block per tenant (traffic, terminal breakdown, error
//! codes, tail latencies, breaker/bucket state), the top-N hot specs,
//! and journal event tallies. `--tenant` narrows everything to one
//! tenant, including the journal tallies (only events tagged with that
//! tenant count).

use std::collections::BTreeMap;

use qtrace::json::Json;
use qtrace::Manifest;

/// Per-tenant counters in the order `flush_metrics` defines them;
/// everything after `misses` is a terminal lifecycle stage.
const COUNTER_ORDER: [&str; 12] = [
    "requests",
    "hits",
    "misses",
    "completed",
    "failed",
    "cancelled",
    "reaped",
    "shed",
    "rejected",
    "quarantined",
    "breaker_open",
    "throttled",
];

/// Tail quantiles of one per-tenant span series.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tail {
    /// Completed occurrences.
    pub count: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
}

/// Everything the dashboard shows for one tenant.
#[derive(Debug, Clone, Default)]
pub struct TenantStat {
    /// Lifecycle counters keyed by short name (see [`COUNTER_ORDER`]).
    pub counters: BTreeMap<String, u64>,
    /// Failures keyed by stable [`qserve::ServeError::code`] string.
    pub errors: BTreeMap<String, u64>,
    /// `hits * 1000 / requests`, absent when the tenant saw no traffic.
    pub hit_permille: Option<u64>,
    /// Breaker state gauge: 0 closed, 1 half-open, 2 open. Absent means
    /// closed (the zero gauge is skipped at emission).
    pub breaker_state: Option<u64>,
    /// Token-bucket level at the final flush.
    pub bucket_level: Option<u64>,
    /// Wall-time tails keyed by series (`e2e`, `queue_wait`, `compile`).
    pub tails: BTreeMap<String, Tail>,
}

impl TenantStat {
    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.errors.is_empty()
            && self.breaker_state.is_none()
            && self.bucket_level.is_none()
            && self.tails.is_empty()
    }
}

/// The manifest's `qserve/` series family, regrouped for rendering.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    /// Run name stamped in the manifest.
    pub name: String,
    /// Per-tenant view, keyed by tenant id.
    pub tenants: BTreeMap<u32, TenantStat>,
    /// Per-spec request counts (`fingerprint hex` → requests), sorted
    /// descending by count then ascending by fingerprint.
    pub specs: Vec<(String, u64)>,
    /// Requests that missed the capped spec registry.
    pub spec_overflow: u64,
    /// Lifecycle records lost to the capacity bound.
    pub lifecycle_dropped: u64,
    /// Quarantined specs at the final flush.
    pub quarantine_entries: u64,
}

impl Dashboard {
    /// True when the manifest carried no `qserve/` ops series at all.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty() && self.specs.is_empty()
    }
}

/// Regroups a run manifest's `qserve/` series into the dashboard view.
/// Series outside the family are ignored, so any `--manifest` artifact
/// is accepted.
pub fn dashboard(manifest: &Manifest) -> Dashboard {
    let mut dash = Dashboard {
        name: manifest.name.clone(),
        ..Dashboard::default()
    };
    for (name, value) in &manifest.counters {
        if let Some(rest) = name.strip_prefix("qserve/tenant/") {
            let Some((tenant, tail)) = split_tenant(rest) else {
                continue;
            };
            let stat = dash.tenants.entry(tenant).or_default();
            if let Some(code) = tail.strip_prefix("error/") {
                stat.errors.insert(code.to_owned(), *value);
            } else if COUNTER_ORDER.contains(&tail) {
                stat.counters.insert(tail.to_owned(), *value);
            }
        } else if let Some(rest) = name.strip_prefix("qserve/spec/") {
            if let Some(fp) = rest.strip_suffix("/requests") {
                dash.specs.push((fp.to_owned(), *value));
            } else if rest == "overflow" {
                dash.spec_overflow = *value;
            }
        }
    }
    for (name, value) in &manifest.gauges {
        if let Some(rest) = name.strip_prefix("qserve/tenant/") {
            let Some((tenant, tail)) = split_tenant(rest) else {
                continue;
            };
            let stat = dash.tenants.entry(tenant).or_default();
            match tail {
                "hit_permille" => stat.hit_permille = Some(*value),
                "breaker_state" => stat.breaker_state = Some(*value),
                "bucket_level" => stat.bucket_level = Some(*value),
                _ => {}
            }
        } else if name == "qserve/ops/lifecycle_dropped" {
            dash.lifecycle_dropped = *value;
        } else if name == "qserve/quarantine/entries" {
            dash.quarantine_entries = *value;
        }
    }
    for (name, stat) in &manifest.spans {
        let Some(rest) = name.strip_prefix("qserve/tenant/") else {
            continue;
        };
        let Some((tenant, tail)) = split_tenant(rest) else {
            continue;
        };
        if matches!(tail, "e2e" | "queue_wait" | "compile") {
            dash.tenants.entry(tenant).or_default().tails.insert(
                tail.to_owned(),
                Tail {
                    count: stat.count,
                    p50_ns: stat.p50_ns,
                    p90_ns: stat.p90_ns,
                    p99_ns: stat.p99_ns,
                },
            );
        }
    }
    dash.specs
        .sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    dash
}

fn split_tenant(rest: &str) -> Option<(u32, &str)> {
    let (tenant, tail) = rest.split_once('/')?;
    Some((tenant.parse().ok()?, tail))
}

/// Tallies journal events by code. With a `tenant` filter only events
/// tagged with that tenant count (untagged events — phase markers,
/// calibration reloads — are campaign-wide, not the tenant's).
pub fn journal_tallies(
    journal: &str,
    tenant: Option<u32>,
) -> Result<BTreeMap<String, u64>, String> {
    let mut tallies = BTreeMap::new();
    for (idx, line) in journal.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json =
            Json::parse(line).map_err(|e| format!("journal line {}: {e}", idx + 1))?;
        let event = json
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("journal line {}: no \"event\" field", idx + 1))?;
        if let Some(want) = tenant {
            let tagged = json.get("tenant").and_then(Json::as_u64);
            if tagged != Some(u64::from(want)) {
                continue;
            }
        }
        *tallies.entry(event.to_owned()).or_insert(0) += 1;
    }
    Ok(tallies)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn breaker_label(code: u64) -> &'static str {
    match code {
        0 => "closed",
        1 => "half-open",
        _ => "open",
    }
}

fn render_tenant(out: &mut String, id: u32, stat: &TenantStat) {
    out.push_str(&format!("tenant {id}\n"));
    let requests = stat.counter("requests");
    let ratio = stat
        .hit_permille
        .map(|pm| format!("{:.1}%", pm as f64 / 10.0))
        .unwrap_or_else(|| "-".to_owned());
    out.push_str(&format!(
        "  {:<14} {:<10} hits {:<8} misses {:<8} hit ratio {}\n",
        "requests", requests, stat.counter("hits"), stat.counter("misses"), ratio,
    ));
    let terminals: Vec<String> = COUNTER_ORDER[3..]
        .iter()
        .filter_map(|name| {
            let n = stat.counter(name);
            (n > 0).then(|| format!("{name} {n}"))
        })
        .collect();
    out.push_str(&format!(
        "  {:<14} {}\n",
        "terminals",
        if terminals.is_empty() {
            "(none)".to_owned()
        } else {
            terminals.join("  ")
        },
    ));
    if !stat.errors.is_empty() {
        let errors: Vec<String> = stat
            .errors
            .iter()
            .map(|(code, n)| format!("{code} {n}"))
            .collect();
        out.push_str(&format!("  {:<14} {}\n", "errors", errors.join("  ")));
    }
    for series in ["e2e", "queue_wait", "compile"] {
        if let Some(tail) = stat.tails.get(series) {
            out.push_str(&format!(
                "  {:<14} p50 {:<10} p90 {:<10} p99 {:<10} (n={})\n",
                series,
                fmt_ns(tail.p50_ns),
                fmt_ns(tail.p90_ns),
                fmt_ns(tail.p99_ns),
                tail.count,
            ));
        }
    }
    if stat.breaker_state.is_some() || stat.bucket_level.is_some() {
        let breaker = breaker_label(stat.breaker_state.unwrap_or(0));
        let bucket = stat
            .bucket_level
            .map(|l| format!("   bucket level {l}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "  {:<14} breaker {breaker}{bucket}\n",
            "failure plane",
        ));
    }
}

/// Renders the dashboard: per-tenant blocks, hot specs, journal
/// tallies. `tenant` narrows to one tenant block (an unknown id renders
/// an explicit "no series" line rather than erroring — the manifest may
/// legitimately have skipped an idle tenant). `top` caps the hot-spec
/// table.
pub fn render(
    dash: &Dashboard,
    journal: Option<&BTreeMap<String, u64>>,
    tenant: Option<u32>,
    top: usize,
) -> String {
    let mut out = format!("qstat: {}\n", dash.name);
    if dash.is_empty() {
        out.push_str("\n(no qserve/ ops series in manifest)\n");
        return out;
    }

    match tenant {
        Some(id) => {
            out.push('\n');
            match dash.tenants.get(&id).filter(|s| !s.is_empty()) {
                Some(stat) => render_tenant(&mut out, id, stat),
                None => out.push_str(&format!("tenant {id}\n  (no series recorded)\n")),
            }
        }
        None => {
            for (id, stat) in &dash.tenants {
                if stat.is_empty() {
                    continue;
                }
                out.push('\n');
                render_tenant(&mut out, *id, stat);
            }
        }
    }

    if tenant.is_none() {
        out.push_str(&format!(
            "\nhot specs (top {} of {} by requests)\n",
            top.min(dash.specs.len()),
            dash.specs.len(),
        ));
        if dash.specs.is_empty() {
            out.push_str("  (none recorded)\n");
        }
        for (fp, count) in dash.specs.iter().take(top) {
            out.push_str(&format!("  {fp:<18} {count:>10}\n"));
        }
        if dash.spec_overflow > 0 {
            out.push_str(&format!(
                "  ({} requests beyond the spec-registry cap)\n",
                dash.spec_overflow,
            ));
        }
    }

    if dash.quarantine_entries > 0 || dash.lifecycle_dropped > 0 {
        out.push('\n');
        if dash.quarantine_entries > 0 {
            out.push_str(&format!(
                "quarantine: {} spec(s) held at last flush\n",
                dash.quarantine_entries,
            ));
        }
        if dash.lifecycle_dropped > 0 {
            out.push_str(&format!(
                "WARNING: {} lifecycle record(s) dropped (capacity bound hit)\n",
                dash.lifecycle_dropped,
            ));
        }
    }

    if let Some(tallies) = journal {
        let total: u64 = tallies.values().sum();
        out.push_str(&format!(
            "\njournal ({total} event{}{})\n",
            if total == 1 { "" } else { "s" },
            tenant
                .map(|id| format!(", tenant {id} only"))
                .unwrap_or_default(),
        ));
        if tallies.is_empty() {
            out.push_str("  (no events)\n");
        }
        for (event, count) in tallies {
            out.push_str(&format!("  {event:<22} {count:>8}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_manifest() -> Manifest {
        let rec = qtrace::Recorder::new();
        rec.enable();
        rec.add("qserve/tenant/0/requests", 100);
        rec.add("qserve/tenant/0/hits", 90);
        rec.add("qserve/tenant/0/misses", 10);
        rec.add("qserve/tenant/0/completed", 97);
        rec.add("qserve/tenant/0/shed", 2);
        rec.add("qserve/tenant/0/throttled", 1);
        rec.add("qserve/tenant/0/error/throttled", 1);
        rec.add("qserve/tenant/2/requests", 5);
        rec.add("qserve/tenant/2/completed", 5);
        rec.gauge_max("qserve/tenant/0/hit_permille", 900);
        rec.gauge_max("qserve/tenant/0/breaker_state", 2);
        rec.gauge_max("qserve/tenant/0/bucket_level", 7);
        rec.add("qserve/spec/00000000000000aa/requests", 60);
        rec.add("qserve/spec/00000000000000bb/requests", 40);
        rec.add("qserve/spec/overflow", 3);
        rec.record_span("qserve/tenant/0/e2e", Duration::from_micros(12));
        rec.record_span("qserve/tenant/0/e2e", Duration::from_micros(40));
        // Non-family series must be ignored, not crash the regrouping.
        rec.add("qcompile/swaps", 9);
        rec.take_manifest("sample")
    }

    #[test]
    fn dashboard_regroups_the_qserve_family() {
        let dash = dashboard(&sample_manifest());
        assert_eq!(dash.tenants.len(), 2);
        let t0 = &dash.tenants[&0];
        assert_eq!(t0.counter("requests"), 100);
        assert_eq!(t0.errors["throttled"], 1);
        assert_eq!(t0.hit_permille, Some(900));
        assert_eq!(t0.breaker_state, Some(2));
        assert_eq!(t0.bucket_level, Some(7));
        assert_eq!(t0.tails["e2e"].count, 2);
        assert_eq!(dash.specs[0], ("00000000000000aa".to_owned(), 60));
        assert_eq!(dash.spec_overflow, 3);
    }

    #[test]
    fn render_shows_every_tenant_block_and_hot_specs() {
        let dash = dashboard(&sample_manifest());
        let text = render(&dash, None, None, 8);
        assert!(text.contains("qstat: sample"));
        assert!(text.contains("tenant 0"));
        assert!(text.contains("tenant 2"));
        assert!(text.contains("hit ratio 90.0%"));
        assert!(text.contains("completed 97  shed 2  throttled 1"));
        assert!(text.contains("breaker open"));
        assert!(text.contains("00000000000000aa"));
        assert!(text.contains("beyond the spec-registry cap"));
    }

    #[test]
    fn tenant_filter_narrows_the_view() {
        let dash = dashboard(&sample_manifest());
        let text = render(&dash, None, Some(2), 8);
        assert!(text.contains("tenant 2"));
        assert!(!text.contains("tenant 0"), "{text}");
        assert!(!text.contains("hot specs"), "spec table is campaign-wide");
        let missing = render(&dash, None, Some(7), 8);
        assert!(missing.contains("no series recorded"));
    }

    #[test]
    fn journal_tallies_count_and_filter_by_tenant() {
        let journal = "\
{\"tick\":0,\"event\":\"phase\",\"note\":\"storm\"}\n\
{\"tick\":3,\"event\":\"breaker_trip\",\"tenant\":1}\n\
{\"tick\":4,\"event\":\"breaker_trip\",\"tenant\":2}\n\
{\"tick\":9,\"event\":\"breaker_close\",\"tenant\":1}\n";
        let all = journal_tallies(journal, None).unwrap();
        assert_eq!(all["breaker_trip"], 2);
        assert_eq!(all["phase"], 1);
        let one = journal_tallies(journal, Some(1)).unwrap();
        assert_eq!(one["breaker_trip"], 1);
        assert_eq!(one["breaker_close"], 1);
        assert!(!one.contains_key("phase"), "untagged events filtered out");
        assert!(journal_tallies("not json\n", None).is_err());
    }

    #[test]
    fn empty_manifest_renders_an_explicit_notice() {
        let dash = dashboard(&Manifest::empty("bare"));
        assert!(dash.is_empty());
        let text = render(&dash, None, None, 8);
        assert!(text.contains("no qserve/ ops series"));
    }
}
