//! Regression comparison between two bench artifacts.
//!
//! Both artifact kinds the harness produces are accepted, sniffed by
//! their top-level keys:
//!
//! * **bench reports** (`BENCH_<figure>.json`, a `"metrics"` array) —
//!   every series gates, compared by median with its 95% bootstrap CI;
//! * **qtrace run manifests** (a `"qtrace_version"` field) — counters,
//!   gauges and histogram means gate with degenerate CIs (they are
//!   deterministic for a fixed workload and thread configuration), while
//!   span wall times — mean and the p50/p90/p99 tail quantiles — are
//!   reported but do not gate by default (CI runner timing noise would
//!   make them flap). [`gate_spans`] opts them in for runners with
//!   controlled timing (the `regress` binary exposes it as
//!   `--gate-spans`).
//!
//! The verdict rule is deliberately conservative: a series is
//! **Regressed** only when the current median exceeds the baseline median
//! by more than the tolerance *and* the confidence intervals do not
//! overlap (`cur.ci_lo > base.ci_hi`). **Improved** is the mirror image;
//! everything else is **Flat**. Comparing two files with no common series
//! is an error, not a pass — a silently vacuous gate is worse than none —
//! with one carve-out: when every unmatched series is an *addition* on
//! the current side (new instrumentation the committed baseline
//! predates), the additions are reported as warnings instead of failing
//! the gate, so the PR that introduces a counter family can land before
//! its baseline is regenerated.

use std::collections::BTreeMap;
use std::fmt;

use qtrace::json::Json;

/// One comparable series extracted from an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Label, unique within the artifact (`counter/...`, `span/...`, or
    /// a bench-report metric label).
    pub label: String,
    /// Central estimate (bench-report median, or the exact value of a
    /// deterministic counter/gauge).
    pub median: f64,
    /// Lower 95% CI bound (equals `median` for deterministic series).
    pub ci_lo: f64,
    /// Upper 95% CI bound (equals `median` for deterministic series).
    pub ci_hi: f64,
    /// Whether a regression in this series fails the gate.
    pub gating: bool,
}

/// A parsed artifact: its name plus all extracted series, keyed by label.
#[derive(Debug, Clone)]
pub struct SeriesSet {
    /// The report figure or manifest name.
    pub name: String,
    /// Series by label.
    pub series: BTreeMap<String, Series>,
}

/// Per-series comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Current median is beyond tolerance above baseline, CIs disjoint.
    Regressed,
    /// Current median is beyond tolerance below baseline, CIs disjoint.
    Improved,
    /// Neither direction is significant.
    Flat,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::Flat => "flat",
        })
    }
}

/// One row of a [`DiffReport`].
#[derive(Debug, Clone)]
pub struct Row {
    /// The shared series label.
    pub label: String,
    /// Baseline central estimate.
    pub base_median: f64,
    /// Current central estimate.
    pub cur_median: f64,
    /// `cur_median / base_median` (`NaN` when the baseline is zero and
    /// the current value is too, `inf` when only the baseline is zero).
    pub ratio: f64,
    /// Whether this row can fail the gate.
    pub gating: bool,
    /// Comparison outcome.
    pub verdict: Verdict,
}

/// The full comparison of two artifacts.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Name of the baseline artifact.
    pub baseline: String,
    /// Name of the current artifact.
    pub current: String,
    /// Relative tolerance used (e.g. `0.15`).
    pub tolerance: f64,
    /// Per-series rows, sorted by label.
    pub rows: Vec<Row>,
    /// Labels present in only one artifact (reported, never gating).
    pub unmatched: Vec<String>,
}

impl DiffReport {
    /// Whether any gating series regressed.
    pub fn has_regression(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.gating && r.verdict == Verdict::Regressed)
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "regress: {} (baseline) vs {} (current), tolerance {:.0}%\n",
            self.baseline,
            self.current,
            self.tolerance * 100.0
        );
        out.push_str(&format!(
            "{:<44} {:>14} {:>14} {:>8}  {}\n",
            "series", "baseline", "current", "ratio", "verdict"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<44} {:>14.4} {:>14.4} {:>8.3}  {}{}\n",
                r.label,
                r.base_median,
                r.cur_median,
                r.ratio,
                r.verdict,
                if r.gating { "" } else { " (non-gating)" },
            ));
        }
        for label in &self.unmatched {
            out.push_str(&format!("{label:<44} (present in only one artifact)\n"));
        }
        out
    }

    /// Machine-readable JSON, canonical ordering (rows sorted by label).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"baseline\": \"{}\",\n",
            crate::report::escape(&self.baseline)
        ));
        out.push_str(&format!(
            "  \"current\": \"{}\",\n",
            crate::report::escape(&self.current)
        ));
        out.push_str(&format!("  \"tolerance\": {},\n", self.tolerance));
        out.push_str(&format!(
            "  \"has_regression\": {},\n",
            self.has_regression()
        ));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"baseline\": {}, \"current\": {}, \"ratio\": {}, \"gating\": {}, \"verdict\": \"{}\"}}{}\n",
                crate::report::escape(&r.label),
                finite(r.base_median),
                finite(r.cur_median),
                finite(r.ratio),
                r.gating,
                r.verdict,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"unmatched\": [");
        for (i, label) in self.unmatched.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", crate::report::escape(label)));
        }
        out.push_str("]\n}\n");
        out
    }
}

fn finite(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Parses one artifact (bench report or qtrace manifest) into series.
pub fn parse_artifact(text: &str) -> Result<SeriesSet, String> {
    let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if json.get("qtrace_version").is_some() {
        let manifest =
            qtrace::Manifest::from_json(text).map_err(|e| format!("bad manifest: {e}"))?;
        Ok(manifest_series(&manifest))
    } else if json.get("metrics").is_some() {
        parse_report(&json)
    } else {
        Err("unrecognized artifact: expected a BENCH_*.json report \
             (\"metrics\") or a qtrace manifest (\"qtrace_version\")"
            .to_owned())
    }
}

fn parse_report(json: &Json) -> Result<SeriesSet, String> {
    let name = json
        .get("figure")
        .and_then(Json::as_str)
        .ok_or("report is missing \"figure\"")?
        .to_owned();
    let metrics = json
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or("report \"metrics\" is not an array")?;
    let mut series = BTreeMap::new();
    for m in metrics {
        let label = m
            .get("label")
            .and_then(Json::as_str)
            .ok_or("metric is missing \"label\"")?
            .to_owned();
        let median = m
            .get("median")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("metric '{label}' is missing \"median\""))?;
        let ci = m
            .get("ci95")
            .and_then(Json::as_arr)
            .filter(|a| a.len() == 2)
            .ok_or_else(|| format!("metric '{label}' is missing \"ci95\""))?;
        let (ci_lo, ci_hi) = match (ci[0].as_f64(), ci[1].as_f64()) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => return Err(format!("metric '{label}' has a non-numeric CI")),
        };
        series.insert(
            label.clone(),
            Series {
                label,
                median,
                ci_lo,
                ci_hi,
                gating: true,
            },
        );
    }
    Ok(SeriesSet { name, series })
}

/// Flattens a manifest into series: counters, gauges, histogram
/// count/mean and span counts gate; span wall times do not.
pub fn manifest_series(manifest: &qtrace::Manifest) -> SeriesSet {
    let mut series = BTreeMap::new();
    let mut put = |label: String, value: f64, gating: bool| {
        series.insert(
            label.clone(),
            Series {
                label,
                median: value,
                ci_lo: value,
                ci_hi: value,
                gating,
            },
        );
    };
    for (name, value) in &manifest.counters {
        put(format!("counter/{name}"), *value as f64, true);
    }
    for (name, max) in &manifest.gauges {
        put(format!("gauge/{name}"), *max as f64, true);
    }
    for (name, hist) in &manifest.histograms {
        put(format!("hist/{name}/count"), hist.count() as f64, true);
        // `_ns`-suffixed histograms hold wall time: their sample count
        // is deterministic (and gates), their mean is machine speed
        // (and must not) — mirroring `Manifest::normalized`, which
        // zeroes their contents but keeps the count.
        put(format!("hist/{name}/mean"), hist.mean(), !name.ends_with("_ns"));
    }
    for (path, stat) in &manifest.spans {
        put(format!("span/{path}/count"), stat.count as f64, true);
        put(format!("span/{path}/mean_ns"), stat.mean_ns(), false);
        put(format!("span/{path}/p50_ns"), stat.p50_ns as f64, false);
        put(format!("span/{path}/p90_ns"), stat.p90_ns as f64, false);
        put(format!("span/{path}/p99_ns"), stat.p99_ns as f64, false);
    }
    SeriesSet {
        name: manifest.name.clone(),
        series,
    }
}

/// Opts span wall-time series (`span/…/mean_ns`, `span/…/p50_ns` and
/// friends) into gating. Off by default because span times are wall
/// clock and flap on shared CI runners; turn this on when the runner's
/// timing is controlled enough that tail-latency regressions should
/// fail the gate.
///
/// Per-tenant ops-plane spans (`span/qserve/tenant/…`) stay non-gating
/// even here: each tenant sees only a sliver of the campaign's traffic,
/// so their quantiles are small-sample scheduler noise — a tenant
/// queue-wait p90 over ~30 microsecond-scale waits swings 5× run to
/// run on an idle machine. Their counts still gate (deterministic),
/// and the campaign-wide spans cover the actual tail-latency tripwire;
/// `qstat` is the venue for per-tenant tails.
pub fn gate_spans(set: &mut SeriesSet) {
    for series in set.series.values_mut() {
        if series.label.starts_with("span/")
            && series.label.ends_with("_ns")
            && !series.label.starts_with("span/qserve/tenant/")
        {
            series.gating = true;
        }
    }
}

/// Compares `current` against `baseline`: see the module docs for the
/// verdict rule. Errors when the two artifacts share no series, unless
/// every unmatched label is an addition on the current side (a baseline
/// that merely *predates* new series must not fail the gate).
pub fn diff(
    baseline: &SeriesSet,
    current: &SeriesSet,
    tolerance: f64,
) -> Result<DiffReport, String> {
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for (label, base) in &baseline.series {
        let Some(cur) = current.series.get(label) else {
            unmatched.push(format!("{label} (baseline only)"));
            continue;
        };
        let verdict = classify(base, cur, tolerance);
        let ratio = if base.median != 0.0 {
            cur.median / base.median
        } else if cur.median == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
        rows.push(Row {
            label: label.clone(),
            base_median: base.median,
            cur_median: cur.median,
            ratio,
            gating: base.gating && cur.gating,
            verdict,
        });
    }
    for label in current.series.keys() {
        if !baseline.series.contains_key(label) {
            unmatched.push(format!("{label} (current only)"));
        }
    }
    // An empty intersection is an error only when the *baseline* has
    // series the current run dropped (or both sides are empty): that is
    // a vacuous gate. When every unmatched label is a current-only
    // addition — instrumentation gained a counter family the committed
    // baseline predates — gating on nothing real would block exactly
    // the PR that adds telemetry, so report the additions as warnings
    // instead.
    if rows.is_empty() {
        let only_additions =
            !unmatched.is_empty() && unmatched.iter().all(|l| l.ends_with("(current only)"));
        if !only_additions {
            return Err(format!(
                "no common series between '{}' and '{}' — nothing to gate on",
                baseline.name, current.name
            ));
        }
    }
    Ok(DiffReport {
        baseline: baseline.name.clone(),
        current: current.name.clone(),
        tolerance,
        rows,
        unmatched,
    })
}

/// Regressed iff the median moved beyond tolerance AND the CIs are
/// disjoint in the same direction; Improved is the mirror image.
fn classify(base: &Series, cur: &Series, tolerance: f64) -> Verdict {
    let worse = cur.median > base.median * (1.0 + tolerance) && cur.ci_lo > base.ci_hi;
    let better = cur.median < base.median * (1.0 - tolerance) && cur.ci_hi < base.ci_lo;
    if worse {
        Verdict::Regressed
    } else if better {
        Verdict::Improved
    } else {
        Verdict::Flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;

    fn report_set(figure: &str, series: &[(&str, &[f64])]) -> SeriesSet {
        let mut r = Report::new(figure);
        for (label, samples) in series {
            r.add(*label, samples);
        }
        parse_artifact(&r.to_json()).unwrap()
    }

    #[test]
    fn identical_inputs_are_flat() {
        let base = report_set("fig", &[("a/ms", &[10.0, 11.0, 9.0]), ("b/ms", &[5.0])]);
        let cur = report_set("fig", &[("a/ms", &[10.0, 11.0, 9.0]), ("b/ms", &[5.0])]);
        let d = diff(&base, &cur, 0.15).unwrap();
        assert!(!d.has_regression());
        assert!(d.rows.iter().all(|r| r.verdict == Verdict::Flat));
    }

    #[test]
    fn injected_2x_slowdown_regresses() {
        let base = report_set("fig", &[("a/ms", &[10.0, 10.0, 10.0, 10.0])]);
        let cur = report_set("fig", &[("a/ms", &[20.0, 20.0, 20.0, 20.0])]);
        let d = diff(&base, &cur, 0.15).unwrap();
        assert!(d.has_regression());
        assert_eq!(d.rows[0].verdict, Verdict::Regressed);
        assert!((d.rows[0].ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let base = report_set("fig", &[("a/ms", &[20.0, 20.0, 20.0])]);
        let cur = report_set("fig", &[("a/ms", &[10.0, 10.0, 10.0])]);
        let d = diff(&base, &cur, 0.15).unwrap();
        assert!(!d.has_regression());
        assert_eq!(d.rows[0].verdict, Verdict::Improved);
    }

    #[test]
    fn overlapping_cis_stay_flat_despite_median_shift() {
        // Noisy samples whose CIs overlap: a 20% median shift alone must
        // not trip the gate.
        let base = report_set("fig", &[("a/ms", &[8.0, 10.0, 12.0, 30.0])]);
        let cur = report_set("fig", &[("a/ms", &[10.0, 12.0, 14.0, 30.0])]);
        let d = diff(&base, &cur, 0.15).unwrap();
        assert_eq!(d.rows[0].verdict, Verdict::Flat, "{}", d.render());
    }

    #[test]
    fn disjoint_series_error() {
        let base = report_set("fig", &[("a/ms", &[1.0])]);
        let cur = report_set("fig", &[("b/ms", &[1.0])]);
        assert!(diff(&base, &cur, 0.15).is_err());
    }

    #[test]
    fn added_series_alone_do_not_error() {
        // A baseline that predates newly-added counter families: the
        // current side is a strict superset growth with no overlap at
        // all (e.g. an old empty-manifest baseline). Warn, don't fail.
        let base = report_set("fig", &[]);
        let cur = report_set("fig", &[("new/a", &[1.0]), ("new/b", &[2.0])]);
        let d = diff(&base, &cur, 0.15).unwrap();
        assert!(!d.has_regression());
        assert!(d.rows.is_empty());
        assert_eq!(d.unmatched.len(), 2);
        assert!(d.unmatched.iter().all(|l| l.ends_with("(current only)")));

        // Both sides empty is still a vacuous gate: error.
        let empty = report_set("fig", &[]);
        assert!(diff(&empty, &report_set("fig", &[]), 0.15).is_err());
        // Dropping every baseline series is too: error.
        let dropped = report_set("fig", &[("old/a", &[1.0])]);
        assert!(diff(&dropped, &report_set("fig", &[]), 0.15).is_err());
    }

    #[test]
    fn unmatched_series_reported_but_not_gating() {
        let base = report_set("fig", &[("a/ms", &[1.0]), ("old/ms", &[1.0])]);
        let cur = report_set("fig", &[("a/ms", &[1.0]), ("new/ms", &[9.0])]);
        let d = diff(&base, &cur, 0.15).unwrap();
        assert!(!d.has_regression());
        assert_eq!(d.unmatched.len(), 2);
    }

    #[test]
    fn manifests_gate_on_counters_not_span_times() {
        let rec = qtrace::Recorder::new();
        rec.enable();
        rec.add("swaps", 10);
        rec.record_span("compile", std::time::Duration::from_micros(50));
        let base = parse_artifact(&rec.take_manifest("run").to_json()).unwrap();

        let rec = qtrace::Recorder::new();
        rec.enable();
        rec.add("swaps", 10);
        // 100x slower span: reported, but must not gate.
        rec.record_span("compile", std::time::Duration::from_millis(5));
        let cur = parse_artifact(&rec.take_manifest("run").to_json()).unwrap();

        let d = diff(&base, &cur, 0.15).unwrap();
        assert!(!d.has_regression(), "{}", d.render());
        let span_row = d
            .rows
            .iter()
            .find(|r| r.label == "span/compile/mean_ns")
            .unwrap();
        assert!(!span_row.gating);
        assert_eq!(span_row.verdict, Verdict::Regressed);

        // A counter jump, by contrast, does gate.
        let rec = qtrace::Recorder::new();
        rec.enable();
        rec.add("swaps", 25);
        rec.record_span("compile", std::time::Duration::from_micros(50));
        let bad = parse_artifact(&rec.take_manifest("run").to_json()).unwrap();
        let d = diff(&base, &bad, 0.15).unwrap();
        assert!(d.has_regression(), "{}", d.render());
    }

    #[test]
    fn wall_time_histogram_means_do_not_gate_but_counts_do() {
        let run = |tick_ns: u64| {
            let rec = qtrace::Recorder::new();
            rec.enable();
            rec.observe("qserve/tenant/0/e2e_ticks", 4);
            rec.observe("qserve/tenant/0/e2e_ns", tick_ns);
            rec.observe("qserve/tenant/0/e2e_ns", tick_ns);
            parse_artifact(&rec.take_manifest("run").to_json()).unwrap()
        };
        let base = run(1_000);
        // 100x slower wall time in the `_ns` histogram: reported, never
        // gated — only its sample count is deterministic.
        let d = diff(&base, &run(100_000), 0.15).unwrap();
        assert!(!d.has_regression(), "{}", d.render());
        let mean = d
            .rows
            .iter()
            .find(|r| r.label == "hist/qserve/tenant/0/e2e_ns/mean")
            .unwrap();
        assert!(!mean.gating);
        assert_eq!(mean.verdict, Verdict::Regressed);
        // The tick histogram (logical clock) still gates its mean.
        let ticks = d
            .rows
            .iter()
            .find(|r| r.label == "hist/qserve/tenant/0/e2e_ticks/mean")
            .unwrap();
        assert!(ticks.gating);

        // An extra sample is a count regression and fails the gate.
        let rec = qtrace::Recorder::new();
        rec.enable();
        rec.observe("qserve/tenant/0/e2e_ticks", 4);
        rec.observe_many("qserve/tenant/0/e2e_ns", &[1_000, 1_000, 1_000]);
        let extra = parse_artifact(&rec.take_manifest("run").to_json()).unwrap();
        let d = diff(&base, &extra, 0.15).unwrap();
        assert!(d.has_regression(), "{}", d.render());
    }

    #[test]
    fn quantiles_are_reported_and_gate_only_on_request() {
        let slow_tail = |tail_us: u64| {
            let rec = qtrace::Recorder::new();
            rec.enable();
            for _ in 0..95 {
                rec.record_span("route", std::time::Duration::from_micros(10));
            }
            // Five-sample tail so the nearest-rank p99 (99th of 100)
            // lands inside it.
            for _ in 0..5 {
                rec.record_span("route", std::time::Duration::from_micros(tail_us));
            }
            parse_artifact(&rec.take_manifest("run").to_json()).unwrap()
        };
        let base = slow_tail(12);
        let cur = slow_tail(5000);

        // Default: the p99 blow-up shows up as a row but does not gate.
        let d = diff(&base, &cur, 0.15).unwrap();
        assert!(!d.has_regression(), "{}", d.render());
        let p99 = d.rows.iter().find(|r| r.label == "span/route/p99_ns");
        let p99 = p99.expect("p99 series present");
        assert!(!p99.gating);
        assert_eq!(p99.verdict, Verdict::Regressed);

        // Opted in, the same comparison fails the gate.
        let mut base = base;
        let mut cur = cur;
        gate_spans(&mut base);
        gate_spans(&mut cur);
        let d = diff(&base, &cur, 0.15).unwrap();
        assert!(d.has_regression(), "{}", d.render());
        // The count series was already gating and must stay so.
        assert!(d
            .rows
            .iter()
            .any(|r| r.label == "span/route/count" && r.gating));
    }

    #[test]
    fn per_tenant_ops_spans_never_gate_even_with_gate_spans() {
        let tenant_tail = |tail_us: u64| {
            let rec = qtrace::Recorder::new();
            rec.enable();
            for _ in 0..29 {
                rec.record_span(
                    "qserve/tenant/1/queue_wait",
                    std::time::Duration::from_micros(10),
                );
            }
            rec.record_span(
                "qserve/tenant/1/queue_wait",
                std::time::Duration::from_micros(tail_us),
            );
            parse_artifact(&rec.take_manifest("run").to_json()).unwrap()
        };
        let mut base = tenant_tail(80);
        let mut cur = tenant_tail(5_000);
        gate_spans(&mut base);
        gate_spans(&mut cur);
        let d = diff(&base, &cur, 0.15).unwrap();
        // The small-sample tenant tail blow-up is reported but must not
        // fail the gate; its deterministic count still does.
        assert!(!d.has_regression(), "{}", d.render());
        let count = d
            .rows
            .iter()
            .find(|r| r.label == "span/qserve/tenant/1/queue_wait/count")
            .expect("count row present");
        assert!(count.gating);
    }

    #[test]
    fn render_and_json_mention_every_row() {
        let base = report_set("fig", &[("a/ms", &[10.0]), ("b/ms", &[3.0])]);
        let cur = report_set("fig", &[("a/ms", &[30.0]), ("b/ms", &[3.0])]);
        let d = diff(&base, &cur, 0.15).unwrap();
        let table = d.render();
        assert!(table.contains("a/ms") && table.contains("REGRESSED"));
        let json = d.to_json();
        assert!(json.contains("\"has_regression\": true"));
        assert!(json.contains("\"verdict\": \"REGRESSED\""));
    }
}
