//! Substrate micro-benchmarks: the backend router, the statevector
//! simulator and the trajectory-noise sampler. These bound the cost of
//! every experiment binary and catch performance regressions in the
//! layers beneath the headline results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaoa::{qaoa_circuit, MaxCut, QaoaParams};
use qhw::{Calibration, Topology};
use qroute::{route, Layout, RoutingMetric};
use qsim::{NoiseModel, Sampler, StateVector, TrajectorySimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_router(c: &mut Criterion) {
    let topo = Topology::ibmq_20_tokyo();
    let metric = RoutingMetric::hops(&topo);
    let mut rng = StdRng::seed_from_u64(1);
    let g = qgraph::generators::connected_erdos_renyi(20, 0.4, 10_000, &mut rng).unwrap();
    let problem = MaxCut::without_optimum(g);
    let circuit = {
        let problem = &problem;
        let mut c = qcircuit::Circuit::new(20);
        for q in 0..20 {
            c.h(q);
        }
        for e in problem.graph().edges() {
            c.rzz(0.5, e.a(), e.b());
        }
        c
    };
    c.bench_function("route_20q_er04_tokyo", |b| {
        b.iter(|| route(&circuit, &topo, Layout::trivial(20, 20), &metric))
    });
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_qaoa");
    for n in [10usize, 14, 18] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = qgraph::generators::connected_random_regular(n, 3, 10_000, &mut rng).unwrap();
        let problem = MaxCut::without_optimum(g);
        let circuit = qaoa_circuit(&problem, &QaoaParams::p1(0.5, 0.3), false);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| StateVector::from_circuit(circuit))
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = qgraph::generators::connected_erdos_renyi(12, 0.5, 10_000, &mut rng).unwrap();
    let problem = MaxCut::without_optimum(g);
    let circuit = qaoa_circuit(&problem, &QaoaParams::p1(0.5, 0.3), true);
    let state = StateVector::from_circuit(&circuit);
    c.bench_function("sample_40960_shots_12q", |b| {
        let sampler = Sampler::new(&state);
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| sampler.sample_counts(40_960, &mut rng))
    });

    let (_, cal) = Calibration::melbourne_2020_04_08();
    let topo = Topology::ibmq_16_melbourne();
    let metric = RoutingMetric::hops(&topo);
    let routed = route(
        &circuit,
        &topo,
        Layout::trivial(12, topo.num_qubits()),
        &metric,
    );
    let sim = TrajectorySimulator::new(NoiseModel::new(cal));
    c.bench_function("trajectory_sample_1024_shots_32_traj", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| sim.sample(&routed.circuit, 1024, 32, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_router, bench_statevector, bench_sampling
}
criterion_main!(benches);
