//! Figure 12(c): compilation time against the layer packing limit
//! (IC+QAIM, 36-node instances on the 6×6 grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaoa::{MaxCut, QaoaParams};
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_packing_limits(c: &mut Criterion) {
    let topo = Topology::grid(6, 6);
    let mut g_rng = StdRng::seed_from_u64(12);
    let g = qgraph::generators::connected_erdos_renyi(36, 0.5, 10_000, &mut g_rng).unwrap();
    let spec = QaoaSpec::from_maxcut(
        &MaxCut::without_optimum(g),
        &QaoaParams::p1(0.9, 0.35),
        true,
    );

    let mut group = c.benchmark_group("fig12c_packing_limit");
    for limit in [1usize, 3, 5, 7, 9, 11, 13, 15, 18] {
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            let options = CompileOptions::ic().with_packing_limit(limit);
            let mut rng = StdRng::seed_from_u64(17);
            b.iter(|| compile(&spec, &topo, None, &options, &mut rng));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_packing_limits
}
criterion_main!(benches);
