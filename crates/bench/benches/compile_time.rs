//! Compilation-time benchmarks for the five strategies (the timing
//! columns of Figure 9(c)/(f) and Figure 11(a)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaoa::{MaxCut, QaoaParams};
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::{Calibration, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec_for(n: usize, p_edge: f64, seed: u64) -> QaoaSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = qgraph::generators::connected_erdos_renyi(n, p_edge, 10_000, &mut rng).unwrap();
    QaoaSpec::from_maxcut(
        &MaxCut::without_optimum(g),
        &QaoaParams::p1(0.9, 0.35),
        true,
    )
}

fn bench_strategies(c: &mut Criterion) {
    let topo = Topology::ibmq_20_tokyo();
    let mut cal_rng = StdRng::seed_from_u64(1);
    let cal = Calibration::random_normal(&topo, 1e-2, 5e-3, &mut cal_rng);
    let spec = spec_for(20, 0.4, 42);

    let mut group = c.benchmark_group("fig11a_compile_time");
    for (name, options) in [
        ("naive", CompileOptions::naive()),
        ("qaim", CompileOptions::qaim_only()),
        ("ip", CompileOptions::ip()),
        ("ic", CompileOptions::ic()),
        ("vic", CompileOptions::vic()),
    ] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| compile(&spec, &topo, Some(&cal), &options, &mut rng));
        });
    }
    group.finish();
}

fn bench_problem_sizes(c: &mut Criterion) {
    // Figure 8's size axis, timed: compilation scales smoothly with
    // problem size (the scalability claim of §I).
    let topo = Topology::grid(6, 6);
    let mut group = c.benchmark_group("size_scaling_ic");
    for n in [12usize, 20, 28, 36] {
        let spec = spec_for(n, 0.4, 100 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| compile(spec, &topo, None, &CompileOptions::ic(), &mut rng));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_strategies, bench_problem_sizes
}
criterion_main!(benches);
