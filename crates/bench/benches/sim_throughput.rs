//! Thin harness over [`bench::simbench`]: full mode emits
//! `BENCH_sim.json` (labels matching the committed
//! `results/BENCH_sim_baseline.json`); `SIM_BENCH_QUICK=1` or argv
//! `quick`/`--quick` selects the CI smoke configuration, which writes
//! `BENCH_sim_quick.json` for the `regress` gate.
//!
//! `cargo bench -p bench --bench sim_throughput [-- quick]`

use bench::simbench;

fn main() {
    let quick = std::env::var_os("SIM_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "quick" || a == "--quick");
    let cfg = if quick {
        &simbench::QUICK
    } else {
        &simbench::FULL
    };
    let report = simbench::run(cfg);
    report.save_and_announce();
}
