//! End-to-end check of the `--trace` path: a quick `fig09_ip_ic` run
//! must produce a Chrome Trace Format file that parses with the crate's
//! own JSON parser, and `xray` must render a flamegraph from both the
//! trace and the manifest.

use std::path::PathBuf;
use std::process::Command;

use qtrace::json::Json;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("qaoa_trace_e2e_{}_{name}", std::process::id()));
    p
}

#[test]
fn fig09_trace_round_trips_and_xray_renders_it() {
    let trace_path = tmp("trace.json");
    let manifest_path = tmp("manifest.json");

    // One instance per bar keeps this a seconds-scale compile-only run.
    let out = Command::new(env!("CARGO_BIN_EXE_fig09_ip_ic"))
        .arg("1")
        .arg("--trace")
        .arg(&trace_path)
        .arg("--manifest")
        .arg(&manifest_path)
        .output()
        .expect("spawn fig09_ip_ic");
    assert!(
        out.status.success(),
        "fig09_ip_ic failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace is valid JSON for our own zero-dep parser and carries a
    // non-trivial event timeline.
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
    let trace = Json::parse(&trace_text).expect("trace parses");
    assert_eq!(
        trace.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(events.len() > 1, "expected events beyond metadata");
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("B")),
        "expected at least one span begin"
    );

    // The manifest written alongside is version 2 and references spans.
    let manifest_text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let manifest = qtrace::Manifest::from_json(&manifest_text).expect("manifest parses");
    assert!(!manifest.spans.is_empty());

    // xray renders both artifact kinds.
    for artifact in [&trace_path, &manifest_path] {
        let out = Command::new(env!("CARGO_BIN_EXE_xray"))
            .arg(artifact)
            .output()
            .expect("spawn xray");
        assert!(
            out.status.success(),
            "xray {} failed:\n{}",
            artifact.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("flamegraph"), "{stdout}");
        assert!(stdout.contains("hot paths"), "{stdout}");
    }

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&manifest_path);
}
