//! The committed ops-plane baselines must render a non-empty `qstat`
//! dashboard — the acceptance contract for the serving layer's
//! observability: a fresh checkout can inspect the serving picture
//! (per-tenant traffic, terminals, tail latencies, hot specs, journal
//! tallies) without running a campaign first. If a baseline
//! regeneration drops the `qserve/` series family or the journal, this
//! fails before the CI gates ever diff anything.

use std::path::PathBuf;

use bench::qstat::{dashboard, journal_tallies, render};

fn results(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name)
}

fn read(name: &str) -> String {
    let path = results(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed baseline {} unreadable: {e}", path.display()))
}

#[test]
fn committed_serve_load_baselines_render_a_per_tenant_dashboard() {
    let manifest = qtrace::Manifest::from_json(&read("serve_load.manifest.json"))
        .expect("committed manifest parses");
    let dash = dashboard(&manifest);
    assert!(
        !dash.is_empty(),
        "committed serve_load manifest carries no qserve/ ops series"
    );
    assert!(
        dash.tenants.len() >= 2,
        "quick campaign spreads traffic over multiple tenants"
    );
    assert!(!dash.specs.is_empty(), "hot-spec table must be populated");

    let tallies = journal_tallies(&read("serve_load.journal.jsonl"), None)
        .expect("committed journal parses");
    assert!(
        tallies.contains_key("calibration_reload"),
        "journal must carry the mid-run reload: {tallies:?}"
    );

    let text = render(&dash, Some(&tallies), None, 8);
    assert!(text.contains("tenant 0"), "{text}");
    assert!(text.contains("hit ratio"), "{text}");
    assert!(text.contains("hot specs"), "{text}");
    assert!(text.contains("calibration_reload"), "{text}");
}

#[test]
fn committed_serve_chaos_journal_tallies_every_failure_mechanism() {
    let tallies = journal_tallies(&read("serve_chaos.journal.jsonl"), None)
        .expect("committed chaos journal parses");
    for event in [
        "breaker_trip",
        "breaker_probe",
        "breaker_close",
        "quarantine_add",
        "negative_strike",
        "calibration_reload",
        "spill_recovery",
    ] {
        assert!(
            tallies.contains_key(event),
            "chaos journal baseline lost its {event} events: {tallies:?}"
        );
    }
}
