//! Worker-count invariance of the serve_chaos campaign.
//!
//! The fault-tolerant serving layer keeps the PR-8 determinism contract
//! under failure: deadlines, backoff TTLs, quarantine strikes, breaker
//! transitions and bucket refills all run on the logical clock, and the
//! fault plane keys on the compile admission ordinal — never on thread
//! timing. This test pins that end to end: the same seeded chaos
//! campaign run with 1, 2 and 8 service workers must produce equal
//! [`ChaosOutcome`]s, byte-identical normalized run manifests
//! (including every `qserve/*` failure counter and the ops plane's
//! per-tenant metric series), and a byte-identical phase-delimited ops
//! journal — the journal is tick-stamped at occurrence under the
//! submit lock, so worker scheduling must not leak into it.
//!
//! One `#[test]` only: the global `qtrace` recorder is process-wide
//! state, and a second concurrent test would interleave its telemetry.

use bench::servechaos::{run_chaos_full, ChaosConfig, ChaosOutcome};

fn campaign(workers: usize) -> (String, ChaosOutcome, String) {
    qtrace::enable();
    let (outcome, ops) = run_chaos_full(&ChaosConfig {
        requests: 120,
        reload_requests: 40,
        reload_storms: 4,
        workers,
        ..ChaosConfig::quick()
    });
    qtrace::disable();
    let manifest = qtrace::take("serve_chaos_determinism").normalized();
    (manifest.to_json(), outcome, ops.journal)
}

/// The normalized manifest (counters, gauges, span counts), the ops
/// journal and the full campaign outcome are invariant across service
/// worker counts.
#[test]
fn chaos_manifest_is_invariant_across_worker_counts() {
    let (base_json, base_out, base_journal) = campaign(1);
    // The baseline run must have exercised every mechanism — an
    // invariance proof over a campaign that detonated nothing would be
    // vacuous.
    assert!(base_out.delivered > 0 && base_out.failed > 0);
    assert!(base_out.deadline_failures > 0);
    assert!(base_out.quarantine_rejections > 0);
    assert!(base_out.breaker_rejections > 0);
    assert!(base_out.throttle_rejections > 0);
    assert!(base_out.negative_retries > 0);
    assert!(base_out.spill_recovered > 0 && base_out.spill_corrupt > 0);
    assert_eq!(base_out.stale_vic_hits, 0);
    assert!(
        base_journal.lines().any(|l| l.contains("\"event\":\"quarantine_add\"")),
        "journal missed the fault storm"
    );
    for workers in [2usize, 8] {
        let (json, out, journal) = campaign(workers);
        assert_eq!(out, base_out, "outcome diverged at workers={workers}");
        assert_eq!(json, base_json, "manifest diverged at workers={workers}");
        assert_eq!(journal, base_journal, "journal diverged at workers={workers}");
    }
}
