//! Ops-plane overhead guard: capturing the request lifecycle log and
//! the ops journal must cost less than 5% extra wall time on the
//! serve_load quick campaign versus the same campaign with capture off.
//!
//! The ops plane was built to be always-on in production serving, so
//! its budget is tighter than the compiler tracing guard's: lifecycle
//! capture is a couple of Vec pushes under locks the admission path
//! already holds, and the journal only writes on failure-plane events.
//! The campaign here is dominated by cached hits — the worst case for
//! relative overhead, since each request does almost no other work.
//!
//! Ignored by default because it is a timing assertion; CI runs it
//! explicitly (`cargo test --release -p bench --test ops_overhead -- --ignored`)
//! on a quiet runner. Off/on rounds are interleaved so clock and
//! thermal drift hit both configurations equally, the min-of-N
//! estimator keeps the least-disturbed run, and a bounded retry absorbs
//! one-off scheduler noise; a real overhead regression fails every
//! attempt.

use bench::serveload::{run_load, LoadConfig};

const ROUNDS: usize = 5;
const ATTEMPTS: usize = 3;
const BUDGET: f64 = 1.05;

fn campaign(ops_capture: bool) -> LoadConfig {
    LoadConfig {
        ops_capture,
        ..LoadConfig::quick()
    }
}

/// One paired measurement: alternate capture-off/capture-on rounds and
/// keep the minimum measured-phase wall time for each configuration.
/// `run_load` drains the service's ops plane internally, so rings never
/// accumulate across rounds.
fn measure_ratio() -> (f64, f64, u64) {
    let mut off = f64::MAX;
    let mut on = f64::MAX;
    let mut captured = 0;
    for _ in 0..ROUNDS {
        off = off.min(run_load(&campaign(false)).wall_s);
        let outcome = run_load(&campaign(true));
        on = on.min(outcome.wall_s);
        captured = outcome.lifecycle_records;
    }
    (off, on, captured)
}

#[test]
#[ignore = "timing assertion; run explicitly on a quiet machine/CI step"]
fn lifecycle_capture_costs_less_than_five_percent() {
    // Warm-up: fault in lazy state (distance matrices, allocator pools).
    let _ = run_load(&campaign(true));

    let mut best_ratio = f64::MAX;
    let mut captured = 0;
    for attempt in 0..ATTEMPTS {
        let (off, on, records) = measure_ratio();
        captured = records;
        let ratio = on / off;
        best_ratio = best_ratio.min(ratio);
        eprintln!(
            "attempt {}: off={off:.4}s on={on:.4}s overhead={:+.2}%",
            attempt + 1,
            (ratio - 1.0) * 100.0
        );
        if best_ratio < BUDGET {
            break;
        }
    }

    assert!(
        captured > 0,
        "capture-on rounds must actually have recorded lifecycles"
    );
    assert!(
        best_ratio < BUDGET,
        "ops-plane capture overhead {:.2}% exceeds the 5% budget in all \
         {ATTEMPTS} attempts",
        (best_ratio - 1.0) * 100.0
    );
}
