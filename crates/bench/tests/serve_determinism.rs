//! Worker-count invariance of the serve_load campaign.
//!
//! The `qserve` determinism contract says every admission decision —
//! hit/miss classification, LRU recency, evictions, sheds, the
//! admission-sequence fingerprint — is made at `submit()` time in
//! arrival order, so worker threads only affect *when* artifacts become
//! ready, never *what* the counters say. This test pins that contract
//! end to end: the same seeded load campaign run with 1, 2, and 8
//! service workers must produce byte-identical normalized run
//! manifests (every `qserve/*` counter, the ops plane's per-tenant
//! metric series, and the sequence fingerprint gauge), a byte-identical
//! ops journal, and a byte-identical rendered lifecycle log — the
//! ops-plane artifacts are admission-ordered and tick-stamped, so the
//! worker count must not leak into them either.
//!
//! One `#[test]` only: the global `qtrace` recorder is process-wide
//! state, and a second concurrent test would interleave its telemetry.

use bench::serveload::{run_load, LoadConfig};
use proptest::prelude::*;

struct Campaign {
    manifest_json: String,
    sequence_fp: u64,
    hits: u64,
    journal: String,
    lifecycle: String,
}

fn campaign(seed: u64, workers: usize) -> Campaign {
    qtrace::enable();
    let outcome = run_load(&LoadConfig {
        requests: 300,
        instances_per_family: 1,
        max_p: 1,
        workers,
        tenants: 3,
        cache_slack: 2,
        seed,
        reload_at: Some(150),
        warm: true,
        ops_capture: true,
    });
    qtrace::disable();
    let manifest = qtrace::take("serve_determinism").normalized();
    Campaign {
        manifest_json: manifest.to_json(),
        sequence_fp: outcome.stats.sequence_fp,
        hits: outcome.stats.hits,
        journal: outcome.journal,
        lifecycle: outcome.lifecycle,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The normalized manifest (counters, gauges, span counts, ops
    /// metric series), the rendered ops journal, the rendered lifecycle
    /// log and the admission-sequence fingerprint are all invariant
    /// across service worker counts for any campaign seed.
    #[test]
    fn manifest_is_invariant_across_worker_counts(seed in 0u64..1_000_000) {
        let base = campaign(seed, 1);
        prop_assert_ne!(base.sequence_fp, 0);
        prop_assert!(base.hits > 0);
        prop_assert!(!base.journal.is_empty(), "ops journal captured nothing");
        prop_assert!(!base.lifecycle.is_empty(), "lifecycle captured nothing");
        for workers in [2usize, 8] {
            let cur = campaign(seed, workers);
            prop_assert_eq!(
                &cur.manifest_json, &base.manifest_json,
                "workers={} manifest diverged", workers
            );
            prop_assert_eq!(
                &cur.journal, &base.journal,
                "workers={} journal diverged", workers
            );
            prop_assert_eq!(
                &cur.lifecycle, &base.lifecycle,
                "workers={} lifecycle diverged", workers
            );
            prop_assert_eq!(cur.sequence_fp, base.sequence_fp);
        }
    }
}
