//! Worker-count invariance of the serve_load campaign.
//!
//! The `qserve` determinism contract says every admission decision —
//! hit/miss classification, LRU recency, evictions, sheds, the
//! admission-sequence fingerprint — is made at `submit()` time in
//! arrival order, so worker threads only affect *when* artifacts become
//! ready, never *what* the counters say. This test pins that contract
//! end to end: the same seeded load campaign run with 1, 2, and 8
//! service workers must produce byte-identical normalized run
//! manifests, including every `qserve/*` counter and the sequence
//! fingerprint gauge.
//!
//! One `#[test]` only: the global `qtrace` recorder is process-wide
//! state, and a second concurrent test would interleave its telemetry.

use bench::serveload::{run_load, LoadConfig};
use proptest::prelude::*;

fn campaign(seed: u64, workers: usize) -> (String, u64, u64) {
    qtrace::enable();
    let outcome = run_load(&LoadConfig {
        requests: 300,
        instances_per_family: 1,
        max_p: 1,
        workers,
        tenants: 3,
        cache_slack: 2,
        seed,
        reload_at: Some(150),
        warm: true,
    });
    qtrace::disable();
    let manifest = qtrace::take("serve_determinism").normalized();
    (
        manifest.to_json(),
        outcome.stats.sequence_fp,
        outcome.stats.hits,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The normalized manifest (counters, gauges, span counts) and the
    /// admission-sequence fingerprint are invariant across service
    /// worker counts for any campaign seed.
    #[test]
    fn manifest_is_invariant_across_worker_counts(seed in 0u64..1_000_000) {
        let (base_json, base_fp, base_hits) = campaign(seed, 1);
        prop_assert_ne!(base_fp, 0);
        prop_assert!(base_hits > 0);
        for workers in [2usize, 8] {
            let (json, fp, _) = campaign(seed, workers);
            prop_assert_eq!(&json, &base_json, "workers={} diverged", workers);
            prop_assert_eq!(fp, base_fp);
        }
    }
}
