//! Every bench binary must answer `--help` by printing a usage string to
//! stdout and exiting 0 — the contract the CI and README lean on.

use std::process::Command;

/// `(name, CARGO_BIN_EXE path)` for every binary in this crate. The
/// paths are baked in at compile time, so adding a binary without
/// registering it here is a compile error in this list — update it.
const BINARIES: &[(&str, &str)] = &[
    ("ablation_ic", env!("CARGO_BIN_EXE_ablation_ic")),
    ("ablation_qaim", env!("CARGO_BIN_EXE_ablation_qaim")),
    ("ablation_reverse", env!("CARGO_BIN_EXE_ablation_reverse")),
    ("ablation_routers", env!("CARGO_BIN_EXE_ablation_routers")),
    ("baseline", env!("CARGO_BIN_EXE_baseline")),
    ("chaos", env!("CARGO_BIN_EXE_chaos")),
    ("disc_ring8", env!("CARGO_BIN_EXE_disc_ring8")),
    ("ext_heavy_hex", env!("CARGO_BIN_EXE_ext_heavy_hex")),
    ("ext_p_sweep", env!("CARGO_BIN_EXE_ext_p_sweep")),
    (
        "ext_stale_calibration",
        env!("CARGO_BIN_EXE_ext_stale_calibration"),
    ),
    ("fig07_qaim", env!("CARGO_BIN_EXE_fig07_qaim")),
    ("fig08_size_sweep", env!("CARGO_BIN_EXE_fig08_size_sweep")),
    ("fig09_ip_ic", env!("CARGO_BIN_EXE_fig09_ip_ic")),
    ("fig10_vic", env!("CARGO_BIN_EXE_fig10_vic")),
    ("fig11a_summary", env!("CARGO_BIN_EXE_fig11a_summary")),
    ("fig11b_arg", env!("CARGO_BIN_EXE_fig11b_arg")),
    ("fig12_packing", env!("CARGO_BIN_EXE_fig12_packing")),
    ("qstat", env!("CARGO_BIN_EXE_qstat")),
    ("regress", env!("CARGO_BIN_EXE_regress")),
    ("xray", env!("CARGO_BIN_EXE_xray")),
];

#[test]
fn every_binary_answers_help_with_exit_zero() {
    for (name, exe) in BINARIES {
        let out = Command::new(exe)
            .arg("--help")
            .output()
            .unwrap_or_else(|e| panic!("{name}: failed to spawn: {e}"));
        assert!(
            out.status.success(),
            "{name} --help exited {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("usage:"),
            "{name} --help printed no usage string:\n{stdout}"
        );
        assert!(
            stdout.contains(name),
            "{name} --help does not name the binary:\n{stdout}"
        );
    }
}

#[test]
fn short_help_flag_works_too() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig09_ip_ic"))
        .arg("-h")
        .output()
        .expect("spawn fig09_ip_ic");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}
