//! End-to-end manifest determinism: two identical instrumented runs must
//! produce byte-identical manifests after [`qtrace::Manifest::normalized`]
//! strips the wall-time fields. This is the property the CI bench-regress
//! gate stands on — counters, gauges and histograms gate precisely
//! because they are exact for a fixed workload and thread configuration.
//!
//! One `#[test]` only: the workload records through the process-global
//! recorder, so a second concurrent test in this binary would interleave
//! events.

use qcompile::{compile, CompileOptions};
use qhw::{HardwareContext, Topology};
use qsim::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Compiles and simulates a small fixed instance, draining the global
/// recorder into a manifest.
fn instrumented_run() -> qtrace::Manifest {
    qtrace::enable();
    let topo = Topology::ibmq_20_tokyo();
    let context = HardwareContext::new(topo);
    let g = bench::workloads::instances(bench::workloads::Family::Regular(3), 12, 1, 501).remove(0);
    let spec = bench::compilation_spec(g, false);
    let mut rng = StdRng::seed_from_u64(42);
    let compiled = compile(
        &spec,
        context.topology(),
        None,
        &CompileOptions::ic(),
        &mut rng,
    );
    let state = StateVector::from_circuit(compiled.physical());
    assert!(state.norm_sqr() > 0.99, "simulation sanity check");
    qtrace::take("determinism_test")
}

#[test]
fn identical_runs_yield_byte_identical_normalized_manifests() {
    let first = instrumented_run();
    let second = instrumented_run();

    // The run did record something in every section the pipeline feeds.
    assert!(
        first
            .spans
            .keys()
            .any(|k| k.starts_with("qcompile/compile")),
        "compile spans present: {:?}",
        first.spans.keys().collect::<Vec<_>>()
    );
    assert!(first.counters.contains_key("qroute/swaps"));
    assert!(first
        .counters
        .keys()
        .any(|k| k.starts_with("qsim/dispatch/")));
    assert!(first.gauges.contains_key("qsim/peak_live_amplitudes"));

    // Raw manifests differ (wall times), normalized ones are identical.
    let a = first.normalized().to_json();
    let b = second.normalized().to_json();
    assert_eq!(a, b, "normalized manifests must be byte-identical");

    // And normalization round-trips through the parser.
    let reparsed = qtrace::Manifest::from_json(&a).unwrap();
    assert_eq!(reparsed.normalized().to_json(), a);
}
