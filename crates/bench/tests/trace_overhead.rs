//! Tracing overhead guard: with the recorder enabled *and* the event
//! timeline captured, the fig09 quick workload must cost less than 10%
//! extra wall time over a run with telemetry fully disabled.
//!
//! The budget was 5% before the compile-engine rewrite cut untraced
//! compile time ~3-4x; the recorder's absolute per-span cost did not
//! grow, but the same nanoseconds now read ~3x larger as a percentage
//! of a much shorter run. 10% of the rewritten compile is still less
//! absolute overhead than 5% of the old one.
//!
//! Ignored by default because it is a timing assertion; CI runs it
//! explicitly (`cargo test --release -p bench --test trace_overhead -- --ignored`)
//! on a quiet runner. Off/on rounds are interleaved so slow clock or
//! thermal drift hits both configurations equally, and the min-of-N
//! estimator keeps the run least disturbed by the machine. A bounded
//! retry absorbs one-off scheduler noise; a real overhead regression
//! fails every attempt.

use std::time::{Duration, Instant};

use qcompile::{compile_batch, BatchJob, CompileOptions};
use qhw::{HardwareContext, Topology};

const ROUNDS: usize = 7;
const ATTEMPTS: usize = 3;
const BUDGET: f64 = 1.10;

fn quick_workload() -> Vec<BatchJob> {
    let graphs = bench::workloads::instances(bench::workloads::Family::ErdosRenyi(0.4), 20, 8, 77);
    graphs
        .into_iter()
        .enumerate()
        .flat_map(|(gi, g)| {
            let spec = bench::compilation_spec(g, true);
            [
                CompileOptions::qaim_only(),
                CompileOptions::ip(),
                CompileOptions::ic(),
            ]
            .into_iter()
            .map(move |options| BatchJob::new(spec.clone(), options, 500 + gi as u64))
            .collect::<Vec<_>>()
        })
        .collect()
}

fn run_once(context: &HardwareContext, jobs: &[BatchJob]) -> Duration {
    let start = Instant::now();
    let results = compile_batch(context, jobs, 2);
    assert!(results.iter().all(Result::is_ok));
    start.elapsed()
}

/// One paired measurement: alternate disabled/enabled rounds and keep
/// the minimum wall time seen for each configuration. Each enabled
/// round drains afterwards (outside the timed region), matching real
/// `--trace` usage where one run is drained into one manifest — without
/// the drain, rings accumulate events across rounds and the growing
/// heap footprint taxes the later rounds unrealistically.
fn measure_ratio(
    context: &HardwareContext,
    jobs: &[BatchJob],
) -> (Duration, Duration, qtrace::Manifest) {
    let q = qtrace::global();
    let mut off = Duration::MAX;
    let mut on = Duration::MAX;
    let mut manifest = qtrace::Manifest::empty("trace_overhead");
    for _ in 0..ROUNDS {
        q.disable();
        off = off.min(run_once(context, jobs));
        q.enable();
        q.capture_events(true);
        on = on.min(run_once(context, jobs));
        manifest = qtrace::take("trace_overhead");
    }
    q.disable();
    (off, on, manifest)
}

#[test]
#[ignore = "timing assertion; run explicitly on a quiet machine/CI step"]
fn enabled_tracing_costs_less_than_ten_percent() {
    let context = HardwareContext::new(Topology::ibmq_20_tokyo());
    let jobs = quick_workload();

    // Warm-up: fault in lazy state (distance matrices, allocator pools).
    let _ = run_once(&context, &jobs);
    let _ = run_once(&context, &jobs);

    let mut best_ratio = f64::MAX;
    let mut manifest = qtrace::Manifest::empty("warmup");
    for attempt in 0..ATTEMPTS {
        let (off, on, m) = measure_ratio(&context, &jobs);
        manifest = m;
        let ratio = on.as_secs_f64() / off.as_secs_f64();
        best_ratio = best_ratio.min(ratio);
        eprintln!(
            "attempt {}: off={off:?} on={on:?} overhead={:+.2}%",
            attempt + 1,
            (ratio - 1.0) * 100.0
        );
        if best_ratio < BUDGET {
            break;
        }
    }

    assert!(
        !manifest.spans.is_empty() && !manifest.events.is_empty(),
        "instrumentation must actually have recorded something"
    );

    assert!(
        best_ratio < BUDGET,
        "tracing overhead {:.2}% exceeds the 10% budget in all {ATTEMPTS} attempts",
        (best_ratio - 1.0) * 100.0
    );
}
