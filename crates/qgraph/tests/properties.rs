//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use qgraph::shortest_path::{
    bfs_distances, floyd_warshall, floyd_warshall_weighted, shortest_path,
};
use qgraph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing a random simple graph as (node count, edge list).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let all_edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        proptest::sample::subsequence(all_edges.clone(), 0..=all_edges.len())
            .prop_map(move |edges| Graph::from_edges(n, edges).expect("valid edges"))
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph(12)) {
        let degree_total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_total, 2 * g.edge_count());
    }

    #[test]
    fn distance_matrix_is_metric(g in arb_graph(10)) {
        let d = floyd_warshall(&g);
        let n = g.node_count();
        for u in 0..n {
            prop_assert_eq!(d.get(u, u), Some(0));
            for v in 0..n {
                // symmetry
                prop_assert_eq!(d.get(u, v), d.get(v, u));
                // triangle inequality over finite entries
                if let Some(duv) = d.get(u, v) {
                    for w in 0..n {
                        if let (Some(duw), Some(dwv)) = (d.get(u, w), d.get(w, v)) {
                            prop_assert!(duv <= duw + dwv);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn adjacent_nodes_have_distance_one(g in arb_graph(10)) {
        let d = floyd_warshall(&g);
        for e in g.edges() {
            prop_assert_eq!(d.get(e.a(), e.b()), Some(1));
        }
    }

    #[test]
    fn bfs_agrees_with_floyd_warshall(g in arb_graph(10)) {
        let d = floyd_warshall(&g);
        for s in g.nodes() {
            let bfs = bfs_distances(&g, s);
            for t in g.nodes() {
                prop_assert_eq!(bfs[t], d.get(s, t));
            }
        }
    }

    #[test]
    fn shortest_path_is_valid_and_tight(g in arb_graph(10)) {
        let d = floyd_warshall(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                match shortest_path(&g, s, t) {
                    Some(p) => {
                        prop_assert_eq!(p.first(), Some(&s));
                        prop_assert_eq!(p.last(), Some(&t));
                        prop_assert_eq!(Some(p.len() - 1), d.get(s, t));
                        for pair in p.windows(2) {
                            prop_assert!(g.has_edge(pair[0], pair[1]));
                        }
                    }
                    None => prop_assert_eq!(d.get(s, t), None),
                }
            }
        }
    }

    #[test]
    fn weighted_unit_weights_match_unit_distances(g in arb_graph(10)) {
        let d = floyd_warshall(&g);
        let w = floyd_warshall_weighted(&g, |_, _| 1.0);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(d.get(u, v).map(|x| x as f64), w.get(u, v));
            }
        }
    }

    #[test]
    fn weighted_distances_bounded_by_unit_times_max_weight(g in arb_graph(9)) {
        // With weights in [1, 2], weighted distance is within [d, 2d].
        let d = floyd_warshall(&g);
        let w = floyd_warshall_weighted(&g, |u, v| 1.0 + ((u + v) % 2) as f64);
        for u in g.nodes() {
            for v in g.nodes() {
                if let (Some(hops), Some(wd)) = (d.get(u, v), w.get(u, v)) {
                    prop_assert!(wd >= hops as f64 - 1e-12);
                    prop_assert!(wd <= 2.0 * hops as f64 + 1e-12);
                }
            }
        }
    }

    #[test]
    fn er_respects_node_count(n in 2usize..20, p in 0.0f64..1.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.edge_count() <= n * (n - 1) / 2);
    }

    #[test]
    fn regular_generator_degrees(seed in 0u64..200, k in 2usize..6) {
        let n = 12;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_regular(n, k, &mut rng).unwrap();
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), k);
        }
    }

    #[test]
    fn components_partition_nodes(g in arb_graph(12)) {
        let comps = g.connected_components();
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, g.nodes().collect::<Vec<_>>());
        prop_assert_eq!(comps.len() == 1, g.is_connected() || g.node_count() == 0);
    }

    #[test]
    fn ring_zero_is_self_and_rings_disjoint(g in arb_graph(10)) {
        for n in g.nodes() {
            let r0 = g.ring(n, 0);
            prop_assert_eq!(r0.len(), 1);
            prop_assert!(r0.contains(&n));
            let r1 = g.ring(n, 1);
            let r2 = g.ring(n, 2);
            prop_assert!(r1.is_disjoint(&r2));
            prop_assert_eq!(&r1, &g.first_neighbors(n));
        }
    }
}
