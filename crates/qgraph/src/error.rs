use std::error::Error;
use std::fmt;

/// Error type returned by graph construction and generation routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge referenced a node index `>= node_count`.
    NodeOutOfBounds {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop `(u, u)` was supplied; simple graphs do not allow them.
    SelfLoop(usize),
    /// The requested random graph parameters are unsatisfiable,
    /// e.g. a `k`-regular graph with `n * k` odd or `k >= n`.
    InvalidParameters(String),
    /// A randomized generator exhausted its retry budget without producing
    /// a valid (e.g. simple and connected) graph.
    GenerationFailed(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node index {node} out of bounds for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            GraphError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            GraphError::GenerationFailed(msg) => write!(f, "graph generation failed: {msg}"),
        }
    }
}

impl Error for GraphError {}
