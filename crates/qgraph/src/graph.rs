use std::collections::{BTreeSet, VecDeque};

use crate::GraphError;

/// An undirected edge between two node indices, stored with `a < b`.
///
/// `Edge` is a canonicalized pair: constructing `Edge::new(3, 1)` and
/// `Edge::new(1, 3)` yields the same value, so edges can be compared and
/// hashed without worrying about endpoint order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    a: usize,
    b: usize,
}

impl Edge {
    /// Creates a canonicalized edge between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops are not representable).
    pub fn new(u: usize, v: usize) -> Self {
        assert_ne!(u, v, "self-loop edge ({u}, {v})");
        Edge {
            a: u.min(v),
            b: u.max(v),
        }
    }

    /// The smaller endpoint.
    pub fn a(&self) -> usize {
        self.a
    }

    /// The larger endpoint.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Returns the endpoint of the edge that is not `n`.
    ///
    /// Returns `None` if `n` is not an endpoint of this edge.
    pub fn other(&self, n: usize) -> Option<usize> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Whether `n` is one of the two endpoints.
    pub fn contains(&self, n: usize) -> bool {
        n == self.a || n == self.b
    }
}

impl From<(usize, usize)> for Edge {
    fn from((u, v): (usize, usize)) -> Self {
        Edge::new(u, v)
    }
}

/// A simple undirected graph over nodes `0..node_count`.
///
/// Nodes are dense `usize` indices; edges are stored both in an adjacency
/// list (sorted, for deterministic iteration) and a set (for O(log E)
/// membership checks). The structure is used both for MaxCut problem graphs
/// and for hardware coupling graphs.
///
/// # Examples
///
/// ```
/// use qgraph::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1)?;
/// g.add_edge(1, 2)?;
/// assert_eq!(g.degree(1), 2);
/// assert!(!g.has_edge(0, 2));
/// # Ok::<(), qgraph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Graph {
    adjacency: Vec<BTreeSet<usize>>,
    edges: BTreeSet<Edge>,
}

impl Graph {
    /// Creates a graph with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        Graph {
            adjacency: vec![BTreeSet::new(); node_count],
            edges: BTreeSet::new(),
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges are silently collapsed (the graph is simple).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is `>=
    /// node_count` and [`GraphError::SelfLoop`] on `(u, u)` pairs.
    pub fn from_edges<I>(node_count: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = Graph::new(node_count);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Returns `true` if the edge was newly inserted and `false` if it was
    /// already present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::SelfLoop`]
    /// for invalid endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<bool, GraphError> {
        let n = self.node_count();
        if u >= n {
            return Err(GraphError::NodeOutOfBounds {
                node: u,
                node_count: n,
            });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfBounds {
                node: v,
                node_count: n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let inserted = self.edges.insert(Edge::new(u, v));
        if inserted {
            self.adjacency[u].insert(v);
            self.adjacency[v].insert(u);
        }
        Ok(inserted)
    }

    /// Removes the undirected edge `(u, v)`, returning whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u == v || u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        let removed = self.edges.remove(&Edge::new(u, v));
        if removed {
            self.adjacency[u].remove(&v);
            self.adjacency[v].remove(&u);
        }
        removed
    }

    /// Whether the edge `(u, v)` exists. Out-of-range nodes yield `false`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v
            && u < self.node_count()
            && v < self.node_count()
            && self.edges.contains(&Edge::new(u, v))
    }

    /// The degree of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= node_count`.
    pub fn degree(&self, n: usize) -> usize {
        self.adjacency[n].len()
    }

    /// Iterates over the neighbors of `n` in increasing index order.
    ///
    /// # Panics
    ///
    /// Panics if `n >= node_count`.
    pub fn neighbors(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency[n].iter().copied()
    }

    /// Iterates over all edges in canonical (sorted) order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Iterates over all node indices.
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        0..self.node_count()
    }

    /// The set of nodes at hop-distance exactly 1 from `n` (first
    /// neighbors) — same as [`Graph::neighbors`] but collected.
    pub fn first_neighbors(&self, n: usize) -> BTreeSet<usize> {
        self.adjacency[n].clone()
    }

    /// The set of nodes at hop-distance exactly `k` from `n`.
    ///
    /// Used for the *connectivity strength* metric of QAIM: the strength of
    /// a physical qubit is `|ring(1)| + |ring(2)|` (optionally higher rings
    /// for larger architectures).
    ///
    /// # Panics
    ///
    /// Panics if `n >= node_count`.
    pub fn ring(&self, n: usize, k: usize) -> BTreeSet<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[n] = 0;
        let mut queue = VecDeque::from([n]);
        let mut out = BTreeSet::new();
        while let Some(u) = queue.pop_front() {
            if dist[u] == k {
                out.insert(u);
                continue; // no need to expand beyond the target ring
            }
            for v in self.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        out
    }

    /// Whether the graph is connected (the empty graph and single-node graph
    /// count as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut queue = VecDeque::from([0usize]);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == n
    }

    /// The connected components, each a sorted list of nodes; components are
    /// ordered by their smallest node.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        comp.push(v);
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// The number of common neighbors of `u` and `v` (triangle count through
    /// the edge `(u, v)` when the edge exists). Used by the analytic p=1
    /// QAOA MaxCut expectation.
    pub fn common_neighbors(&self, u: usize, v: usize) -> usize {
        self.adjacency[u].intersection(&self.adjacency[v]).count()
    }

    /// The induced subgraph on `nodes`, together with the mapping from new
    /// indices to the original node indices.
    ///
    /// The i-th entry of the returned vector is the original index of new
    /// node `i`.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let index_of = |orig: usize| nodes.iter().position(|&n| n == orig);
        let mut sub = Graph::new(nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            for v in self.neighbors(u) {
                if let Some(j) = index_of(v) {
                    if i < j {
                        sub.add_edge(i, j)
                            .expect("indices in range by construction");
                    }
                }
            }
        }
        (sub, nodes.to_vec())
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|n| self.degree(n))
            .max()
            .unwrap_or(0)
    }

    /// Sum of degrees of all nodes, i.e. `2 * edge_count`.
    pub fn degree_sum(&self) -> usize {
        2 * self.edge_count()
    }
}

impl Extend<(usize, usize)> for Graph {
    /// Extends the graph with edges, panicking on invalid endpoints.
    fn extend<T: IntoIterator<Item = (usize, usize)>>(&mut self, iter: T) {
        for (u, v) in iter {
            self.add_edge(u, v).expect("invalid edge in Extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn edge_canonicalizes_order() {
        assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
        assert_eq!(Edge::new(1, 3).a(), 1);
        assert_eq!(Edge::new(1, 3).b(), 3);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(2, 5);
        assert_eq!(e.other(2), Some(5));
        assert_eq!(e.other(5), Some(2));
        assert_eq!(e.other(3), None);
        assert!(e.contains(2) && e.contains(5) && !e.contains(0));
    }

    #[test]
    #[should_panic]
    fn edge_self_loop_panics() {
        let _ = Edge::new(2, 2);
    }

    #[test]
    fn add_edge_rejects_out_of_bounds() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(0, 2),
            Err(GraphError::NodeOutOfBounds {
                node: 2,
                node_count: 2
            })
        );
        assert_eq!(
            g.add_edge(5, 0),
            Err(GraphError::NodeOutOfBounds {
                node: 5,
                node_count: 2
            })
        );
    }

    #[test]
    fn add_edge_rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1).unwrap());
        assert!(!g.add_edge(1, 0).unwrap());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut g = k4();
        assert!(g.remove_edge(0, 3));
        assert!(!g.has_edge(0, 3));
        assert!(!g.remove_edge(0, 3));
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(0), 2);
        // invalid removals are no-ops
        assert!(!g.remove_edge(1, 1));
        assert!(!g.remove_edge(0, 99));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = k4();
        for n in g.nodes() {
            assert_eq!(g.degree(n), 3);
        }
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn rings_of_path_graph() {
        // 0 - 1 - 2 - 3 - 4
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.ring(0, 1), BTreeSet::from([1]));
        assert_eq!(g.ring(0, 2), BTreeSet::from([2]));
        assert_eq!(g.ring(2, 1), BTreeSet::from([1, 3]));
        assert_eq!(g.ring(2, 2), BTreeSet::from([0, 4]));
        assert_eq!(g.ring(0, 5), BTreeSet::new());
        assert_eq!(g.ring(0, 0), BTreeSet::from([0]));
    }

    #[test]
    fn connectivity() {
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(!Graph::new(2).is_connected());
        assert!(k4().is_connected());
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.connected_components(), vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn common_neighbors_counts_triangles() {
        let g = k4();
        assert_eq!(g.common_neighbors(0, 1), 2); // nodes 2 and 3
        let path = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(path.common_neighbors(0, 2), 1);
        assert_eq!(path.common_neighbors(0, 1), 0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = k4();
        let (sub, map) = g.induced_subgraph(&[1, 3]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(0, 1));
        assert_eq!(map, vec![1, 3]);
    }

    #[test]
    fn extend_adds_edges() {
        let mut g = Graph::new(4);
        g.extend([(0, 1), (2, 3)]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn max_degree_and_degree_sum() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.degree_sum(), 6);
        assert_eq!(Graph::new(0).max_degree(), 0);
    }
}
