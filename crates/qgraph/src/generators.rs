//! Random and deterministic graph generators.
//!
//! The paper's evaluation workloads are Erdős–Rényi `G(n, p)` graphs with
//! edge probabilities 0.1–0.6 and random `k`-regular graphs with 3–8 (up to
//! 15) edges per node. The generators here are seeded so every experiment
//! in the harness is reproducible.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, GraphError};

/// Samples an Erdős–Rényi `G(n, p)` random graph.
///
/// Each of the `n * (n - 1) / 2` possible edges is included independently
/// with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `p` is not in `[0, 1]` or is
/// not finite.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = qgraph::generators::erdos_renyi(20, 0.5, &mut rng)?;
/// assert_eq!(g.node_count(), 20);
/// # Ok::<(), qgraph::GraphError>(())
/// ```
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters(format!(
            "edge probability must be in [0, 1], got {p}"
        )));
    }
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v).expect("endpoints in range");
            }
        }
    }
    Ok(g)
}

/// Samples a connected Erdős–Rényi graph by rejection, retrying up to
/// `max_attempts` times.
///
/// QAOA-MaxCut instances on disconnected graphs decompose trivially, so the
/// evaluation only uses connected samples.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] for an invalid `p` and
/// [`GraphError::GenerationFailed`] if no connected sample is found within
/// the attempt budget.
pub fn connected_erdos_renyi<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    max_attempts: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    for _ in 0..max_attempts {
        let g = erdos_renyi(n, p, rng)?;
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed(format!(
        "no connected G({n}, {p}) sample in {max_attempts} attempts"
    )))
}

/// Samples a uniform random simple `k`-regular graph on `n` nodes using the
/// configuration (pairing) model with restarts.
///
/// Every node has exactly `k` neighbors. Internally each node contributes
/// `k` half-edges (stubs); the stubs are shuffled and paired, and the sample
/// is rejected and retried when the pairing produces a self-loop or parallel
/// edge.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] when `n * k` is odd or
/// `k >= n`, and [`GraphError::GenerationFailed`] if no simple pairing is
/// found within an internal retry budget (vanishingly unlikely for the
/// `k <= 15`, `n <= 36` parameter ranges the paper uses).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let g = qgraph::generators::random_regular(20, 3, &mut rng)?;
/// assert!(g.nodes().all(|v| g.degree(v) == 3));
/// # Ok::<(), qgraph::GraphError>(())
/// ```
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if k >= n {
        return Err(GraphError::InvalidParameters(format!(
            "regular degree k={k} must be < n={n}"
        )));
    }
    if !(n * k).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters(format!(
            "n*k must be even, got n={n}, k={k}"
        )));
    }
    if k == 0 {
        return Ok(Graph::new(n));
    }
    const MAX_RESTARTS: usize = 10_000;
    'restart: for _ in 0..MAX_RESTARTS {
        // Suitable-pairing variant of the configuration model (as used by
        // NetworkX): shuffle the stub multiset, then repeatedly take the
        // first remaining stub and pair it with the first remaining stub
        // that does not create a self-loop or parallel edge. Restart the
        // whole attempt when no suitable partner exists. This succeeds with
        // high probability even for dense degrees (k up to ~n/2), unlike a
        // reject-whole-pairing scheme whose success rate decays like
        // exp(-k^2/4).
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, k)).collect();
        stubs.shuffle(rng);
        let mut g = Graph::new(n);
        while !stubs.is_empty() {
            let u = stubs[0];
            let Some(pos) = stubs
                .iter()
                .skip(1)
                .position(|&v| v != u && !g.has_edge(u, v))
            else {
                continue 'restart;
            };
            let v = stubs.remove(pos + 1);
            stubs.remove(0);
            g.add_edge(u, v).expect("endpoints in range");
        }
        return Ok(g);
    }
    Err(GraphError::GenerationFailed(format!(
        "no simple {k}-regular pairing on {n} nodes in {MAX_RESTARTS} restarts"
    )))
}

/// Samples a *connected* random `k`-regular graph by rejection.
///
/// # Errors
///
/// Same as [`random_regular`], plus [`GraphError::GenerationFailed`] when no
/// connected sample appears within `max_attempts`.
pub fn connected_random_regular<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    for _ in 0..max_attempts {
        let g = random_regular(n, k, rng)?;
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed(format!(
        "no connected {k}-regular sample on {n} nodes in {max_attempts} attempts"
    )))
}

/// Samples a connected Erdős–Rényi graph conditioned on an exact edge count.
///
/// Used for the §VI comparison against the temporal-planner baseline, which
/// evaluates "8-node erdos-renyi random graphs with exactly 8 edges".
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `edges` exceeds `n(n-1)/2`
/// or is below `n - 1` (a connected graph needs at least a spanning tree),
/// and [`GraphError::GenerationFailed`] on retry exhaustion.
pub fn connected_gnm<R: Rng + ?Sized>(
    n: usize,
    edges: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let max_edges = n * n.saturating_sub(1) / 2;
    if edges > max_edges {
        return Err(GraphError::InvalidParameters(format!(
            "{edges} edges requested but K_{n} has only {max_edges}"
        )));
    }
    if n > 0 && edges < n - 1 {
        return Err(GraphError::InvalidParameters(format!(
            "{edges} edges cannot connect {n} nodes"
        )));
    }
    let mut all: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    for _ in 0..max_attempts {
        all.shuffle(rng);
        let g = Graph::from_edges(n, all.iter().take(edges).copied())?;
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed(format!(
        "no connected G({n}, m={edges}) sample in {max_attempts} attempts"
    )))
}

/// The path graph `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|v| (v - 1, v))).expect("valid path edges")
}

/// The cycle graph on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3` (a simple cycle needs at least 3 nodes).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires at least 3 nodes, got {n}");
    let mut g = path(n);
    g.add_edge(n - 1, 0).expect("valid closing edge");
    g
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    Graph::from_edges(n, (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))))
        .expect("valid complete-graph edges")
}

/// The `rows x cols` 2-D grid (mesh) graph with nodes in row-major order.
///
/// Node `(r, c)` has index `r * cols + c`. The paper's hypothetical 36-qubit
/// device is `grid(6, 6)`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                g.add_edge(i, i + 1).expect("valid grid edge");
            }
            if r + 1 < rows {
                g.add_edge(i, i + cols).expect("valid grid edge");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let mut r = rng(1);
        let empty = erdos_renyi(10, 0.0, &mut r).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, &mut r).unwrap();
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_rejects_bad_probability() {
        let mut r = rng(1);
        assert!(erdos_renyi(5, -0.1, &mut r).is_err());
        assert!(erdos_renyi(5, 1.5, &mut r).is_err());
        assert!(erdos_renyi(5, f64::NAN, &mut r).is_err());
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let mut r = rng(42);
        let trials = 50;
        let (n, p) = (20usize, 0.5);
        let total: usize = (0..trials)
            .map(|_| erdos_renyi(n, p, &mut r).unwrap().edge_count())
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        assert!(
            (mean - expected).abs() < 10.0,
            "mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn erdos_renyi_is_seed_deterministic() {
        let g1 = erdos_renyi(15, 0.3, &mut rng(9)).unwrap();
        let g2 = erdos_renyi(15, 0.3, &mut rng(9)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn connected_er_is_connected() {
        let mut r = rng(3);
        let g = connected_erdos_renyi(12, 0.5, 1000, &mut r).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn regular_graphs_have_exact_degree() {
        let mut r = rng(5);
        for k in [3, 4, 5, 6, 7, 8] {
            let g = random_regular(20, k, &mut r).unwrap();
            assert!(g.nodes().all(|v| g.degree(v) == k), "k={k}");
            assert_eq!(g.edge_count(), 20 * k / 2);
        }
    }

    #[test]
    fn regular_rejects_invalid_parameters() {
        let mut r = rng(5);
        assert!(matches!(
            random_regular(5, 3, &mut r),
            Err(GraphError::InvalidParameters(_))
        ));
        assert!(matches!(
            random_regular(4, 4, &mut r),
            Err(GraphError::InvalidParameters(_))
        ));
    }

    #[test]
    fn regular_zero_degree_is_empty() {
        let g = random_regular(6, 0, &mut rng(2)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn connected_regular_is_connected() {
        let g = connected_random_regular(14, 3, 1000, &mut rng(8)).unwrap();
        assert!(g.is_connected());
        assert!(g.nodes().all(|v| g.degree(v) == 3));
    }

    #[test]
    fn gnm_has_exact_edges_and_connectivity() {
        let g = connected_gnm(8, 8, 1000, &mut rng(13)).unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 8);
        assert!(g.is_connected());
    }

    #[test]
    fn gnm_rejects_unsatisfiable_counts() {
        assert!(connected_gnm(8, 100, 10, &mut rng(1)).is_err());
        assert!(connected_gnm(8, 3, 10, &mut rng(1)).is_err());
    }

    #[test]
    fn deterministic_families() {
        let p = path(4);
        assert_eq!(p.edge_count(), 3);
        let c = cycle(5);
        assert_eq!(c.edge_count(), 5);
        assert!(c.nodes().all(|v| c.degree(v) == 2));
        let k = complete(6);
        assert_eq!(k.edge_count(), 15);
        let g = grid(6, 6);
        assert_eq!(g.node_count(), 36);
        assert_eq!(g.edge_count(), 2 * 6 * 5);
        // corner, edge, interior degrees
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(7), 4);
    }

    #[test]
    #[should_panic]
    fn cycle_too_small_panics() {
        let _ = cycle(2);
    }
}
