//! Graphviz DOT export for debugging and documentation.

use std::fmt::Write as _;

use crate::Graph;

/// Renders the graph in Graphviz DOT syntax.
///
/// Node labels are the node indices. The output is deterministic (edges in
/// canonical order), so it is safe to use in golden tests.
///
/// # Examples
///
/// ```
/// let g = qgraph::generators::path(3);
/// let dot = qgraph::dot::to_dot(&g, "path3");
/// assert!(dot.contains("0 -- 1;"));
/// ```
pub fn to_dot(g: &Graph, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "graph {name} {{").expect("writing to String cannot fail");
    for n in g.nodes() {
        writeln!(out, "    {n};").expect("writing to String cannot fail");
    }
    for e in g.edges() {
        writeln!(out, "    {} -- {};", e.a(), e.b()).expect("writing to String cannot fail");
    }
    out.push_str("}\n");
    out
}

/// Renders the graph in DOT syntax with a per-edge label, e.g. gate error
/// rates on a coupling graph.
pub fn to_dot_labeled<F>(g: &Graph, name: &str, mut label: F) -> String
where
    F: FnMut(usize, usize) -> String,
{
    let mut out = String::new();
    writeln!(out, "graph {name} {{").expect("writing to String cannot fail");
    for n in g.nodes() {
        writeln!(out, "    {n};").expect("writing to String cannot fail");
    }
    for e in g.edges() {
        writeln!(
            out,
            "    {} -- {} [label=\"{}\"];",
            e.a(),
            e.b(),
            label(e.a(), e.b())
        )
        .expect("writing to String cannot fail");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_is_deterministic_and_complete() {
        let g = generators::cycle(3);
        let dot = to_dot(&g, "c3");
        assert_eq!(
            dot,
            "graph c3 {\n    0;\n    1;\n    2;\n    0 -- 1;\n    0 -- 2;\n    1 -- 2;\n}\n"
        );
    }

    #[test]
    fn labeled_dot_includes_labels() {
        let g = generators::path(3);
        let dot = to_dot_labeled(&g, "p", |u, v| format!("{u}.{v}"));
        assert!(dot.contains("0 -- 1 [label=\"0.1\"];"));
        assert!(dot.contains("1 -- 2 [label=\"1.2\"];"));
    }
}
