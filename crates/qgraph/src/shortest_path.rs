//! All-pairs shortest-path computation and distance matrices.
//!
//! Both the IC and VIC methodologies of the paper rely on qubit-to-qubit
//! distances in the hardware coupling graph (Figure 6(c)/(d)):
//!
//! * **Unit distances** (IC): each coupling edge has weight 1, so the
//!   distance is the hop count — computed by [`floyd_warshall`].
//! * **Reliability-weighted distances** (VIC): each edge is weighted by the
//!   inverse of its two-qubit gate success rate, so unreliable links look
//!   "longer" — computed by [`floyd_warshall_weighted`].
//!
//! Distances are computed once per hardware target (the paper notes the
//! Floyd–Warshall matrix is "measured once ... and accessed from memory
//! during QAIM") and reused by every compilation pass.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::Graph;

/// Process-wide count of all-pairs shortest-path computations (both
/// [`floyd_warshall`] and [`floyd_warshall_weighted`]).
///
/// The APSP matrices are `O(n^3)` to build and are meant to be computed
/// once per hardware target and shared (e.g. via `qhw::HardwareContext`).
/// This counter is the observability hook that lets tests *prove* the
/// caching discipline holds: snapshot [`apsp_invocations`] around a batch
/// of compilations and assert the delta.
static APSP_INVOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// The number of Floyd–Warshall runs (unit or weighted) since process
/// start. Monotonically increasing; compare two snapshots to count the
/// runs a region of code triggered.
pub fn apsp_invocations() -> usize {
    APSP_INVOCATIONS.load(Ordering::Relaxed)
}

/// Dense all-pairs hop-distance matrix produced by [`floyd_warshall`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    /// `usize::MAX` encodes "unreachable".
    dist: Vec<usize>,
}

impl DistanceMatrix {
    /// The hop distance from `u` to `v`, or `None` when unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn get(&self, u: usize, v: usize) -> Option<usize> {
        let d = self.dist[u * self.n + v];
        (d != usize::MAX).then_some(d)
    }

    /// Number of nodes the matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The raw row-major distance table (`usize::MAX` = unreachable).
    ///
    /// Routing hot loops index this directly — one slice read per lookup
    /// instead of the `Option` round-trip of [`DistanceMatrix::get`].
    pub fn flat(&self) -> &[usize] {
        &self.dist
    }

    /// The table as dense `f64` distances (`f64::INFINITY` = unreachable,
    /// finite hops converted exactly) — built once so per-lookup
    /// integer→float conversion stays out of routing hot loops.
    pub fn to_f64_flat(&self) -> Vec<f64> {
        self.dist
            .iter()
            .map(|&d| {
                if d == usize::MAX {
                    f64::INFINITY
                } else {
                    d as f64
                }
            })
            .collect()
    }

    /// The largest finite pairwise distance (graph diameter), or `None` for
    /// graphs with fewer than two mutually reachable nodes.
    pub fn diameter(&self) -> Option<usize> {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != usize::MAX && d > 0)
            .max()
    }
}

/// Dense all-pairs weighted-distance matrix produced by
/// [`floyd_warshall_weighted`].
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedDistanceMatrix {
    n: usize,
    /// `f64::INFINITY` encodes "unreachable".
    dist: Vec<f64>,
}

impl WeightedDistanceMatrix {
    /// The weighted distance from `u` to `v`, or `None` when unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn get(&self, u: usize, v: usize) -> Option<f64> {
        let d = self.dist[u * self.n + v];
        d.is_finite().then_some(d)
    }

    /// The raw row-major distance table (`f64::INFINITY` = unreachable).
    pub fn flat(&self) -> &[f64] {
        &self.dist
    }

    /// Number of nodes the matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// Computes all-pairs hop distances with the Floyd–Warshall algorithm.
///
/// `O(n^3)` time, `O(n^2)` memory — run once per hardware graph and cached.
///
/// # Examples
///
/// ```
/// let g = qgraph::generators::path(4);
/// let d = qgraph::shortest_path::floyd_warshall(&g);
/// assert_eq!(d.get(0, 3), Some(3));
/// assert_eq!(d.get(2, 2), Some(0));
/// ```
pub fn floyd_warshall(g: &Graph) -> DistanceMatrix {
    APSP_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    let n = g.node_count();
    let mut dist = vec![usize::MAX; n * n];
    for u in 0..n {
        dist[u * n + u] = 0;
        for v in g.neighbors(u) {
            dist[u * n + v] = 1;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i * n + k];
            if dik == usize::MAX {
                continue;
            }
            for j in 0..n {
                let dkj = dist[k * n + j];
                if dkj == usize::MAX {
                    continue;
                }
                let through = dik + dkj;
                if through < dist[i * n + j] {
                    dist[i * n + j] = through;
                }
            }
        }
    }
    DistanceMatrix { n, dist }
}

/// Computes all-pairs shortest distances with per-edge weights supplied by
/// `weight(u, v)`.
///
/// The VIC methodology passes `weight = 1 / success_rate(u, v)` so that the
/// resulting distances encode operation reliability (Figure 6(d)).
///
/// # Panics
///
/// Panics if `weight` returns a negative or non-finite value for an existing
/// edge (Floyd–Warshall requires non-negative weights, and reliability
/// weights are always >= 1).
pub fn floyd_warshall_weighted<F>(g: &Graph, mut weight: F) -> WeightedDistanceMatrix
where
    F: FnMut(usize, usize) -> f64,
{
    APSP_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n * n];
    for u in 0..n {
        dist[u * n + u] = 0.0;
        for v in g.neighbors(u) {
            let w = weight(u, v);
            assert!(
                w.is_finite() && w >= 0.0,
                "edge weight for ({u}, {v}) must be finite and non-negative, got {w}"
            );
            dist[u * n + v] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i * n + k];
            if !dik.is_finite() {
                continue;
            }
            for j in 0..n {
                let through = dik + dist[k * n + j];
                if through < dist[i * n + j] {
                    dist[i * n + j] = through;
                }
            }
        }
    }
    WeightedDistanceMatrix { n, dist }
}

/// Single-source hop distances by breadth-first search.
///
/// Entries are `None` for unreachable nodes. Cheaper than Floyd–Warshall
/// when only one source is needed.
///
/// # Panics
///
/// Panics if `source >= g.node_count()`.
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<Option<usize>> {
    assert!(source < g.node_count(), "source {source} out of range");
    let mut dist = vec![None; g.node_count()];
    dist[source] = Some(0);
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Reconstructs one shortest path (as a node sequence, inclusive of both
/// endpoints) between `u` and `v` using hop distances.
///
/// Returns `None` when `v` is unreachable from `u`. When several shortest
/// paths exist the lexicographically-first one (by neighbor index) is
/// returned, which keeps routing deterministic.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range.
pub fn shortest_path(g: &Graph, u: usize, v: usize) -> Option<Vec<usize>> {
    let dist_from_v = bfs_distances(g, v);
    dist_from_v[u]?;
    let mut path = vec![u];
    let mut current = u;
    while current != v {
        let d = dist_from_v[current].expect("on-path nodes are reachable");
        let next = g
            .neighbors(current)
            .find(|&w| dist_from_v[w] == Some(d - 1))
            .expect("some neighbor is closer to the target");
        path.push(next);
        current = next;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn unit_distances_on_path() {
        let g = generators::path(5);
        let d = floyd_warshall(&g);
        assert_eq!(d.get(0, 4), Some(4));
        assert_eq!(d.get(1, 3), Some(2));
        assert_eq!(d.get(2, 2), Some(0));
        assert_eq!(d.diameter(), Some(4));
    }

    #[test]
    fn unreachable_is_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let d = floyd_warshall(&g);
        assert_eq!(d.get(0, 2), None);
        assert_eq!(d.get(0, 1), Some(1));
    }

    #[test]
    fn weighted_distances_match_fig6() {
        // Hypothetical 6-qubit ring of Figure 6(a) with the success rates of
        // Figure 6(b): edges (0,1)=0.90 (0,5)=0.82 (1,2)=0.85 (1,4)=0.81
        // (2,3)=0.89 (3,4)=0.88 (4,5)=0.84.
        let g =
            Graph::from_edges(6, [(0, 1), (0, 5), (1, 2), (1, 4), (2, 3), (3, 4), (4, 5)]).unwrap();
        let rate = |u: usize, v: usize| -> f64 {
            match (u.min(v), u.max(v)) {
                (0, 1) => 0.90,
                (0, 5) => 0.82,
                (1, 2) => 0.85,
                (1, 4) => 0.81,
                (2, 3) => 0.89,
                (3, 4) => 0.88,
                (4, 5) => 0.84,
                _ => unreachable!(),
            }
        };
        let w = floyd_warshall_weighted(&g, |u, v| 1.0 / rate(u, v));
        // Figure 6(d) reports (0,1)=1.11, (0,2)=2.29, (0,3)=3.41, (0,4)=2.34,
        // (0,5)=1.22 (values rounded to 2 decimals in the paper).
        let expect = [(1, 1.11), (2, 2.29), (3, 3.41), (4, 2.34), (5, 1.22)];
        for (v, want) in expect {
            let got = w.get(0, v).unwrap();
            assert!((got - want).abs() < 0.01, "d(0,{v}) = {got}, want {want}");
        }
        // And the unit-distance matrix should match Figure 6(c) row 0.
        let d = floyd_warshall(&g);
        for (v, want) in [(1, 1), (2, 2), (3, 3), (4, 2), (5, 1)] {
            assert_eq!(d.get(0, v), Some(want));
        }
    }

    #[test]
    fn weighted_reduces_to_unit_with_weight_one() {
        let g = generators::cycle(7);
        let d = floyd_warshall(&g);
        let w = floyd_warshall_weighted(&g, |_, _| 1.0);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(d.get(u, v).map(|x| x as f64), w.get(u, v));
            }
        }
    }

    #[test]
    #[should_panic]
    fn weighted_rejects_negative_weight() {
        let g = generators::path(3);
        let _ = floyd_warshall_weighted(&g, |_, _| -1.0);
    }

    #[test]
    fn bfs_matches_floyd_warshall() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let g = generators::erdos_renyi(15, 0.3, &mut rng).unwrap();
        let d = floyd_warshall(&g);
        for s in 0..15 {
            let bfs = bfs_distances(&g, s);
            for (t, &bt) in bfs.iter().enumerate() {
                assert_eq!(bt, d.get(s, t), "s={s}, t={t}");
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = generators::grid(3, 3);
        let p = shortest_path(&g, 0, 8).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&8));
        assert_eq!(p.len(), 5); // 4 hops
        for pair in p.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
        // trivial path
        assert_eq!(shortest_path(&g, 4, 4), Some(vec![4]));
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(shortest_path(&g, 0, 3), None);
    }
}
