//! Offline-compatible subset of the `criterion` 0.5 API.
//!
//! The container this repository builds in has no network access to
//! crates.io, so the real criterion crate cannot be fetched. This shim
//! implements exactly the surface the `bench` crate's benchmarks use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a simple warmup + timed-samples harness that reports mean and
//! best-sample wall-clock per iteration to stdout.
//!
//! It is a measurement harness, not a statistics engine: no outlier
//! rejection, no HTML reports, no regression baselines. For the paper's
//! headline numbers the `bench` binaries (fig07..fig12) are authoritative;
//! these benches exist to catch gross performance regressions.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque value barrier, re-exported from [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies a benchmark within a group, e.g. a parameter sweep point.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled only by a parameter value (`group/<param>`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// An id with both a function name and a parameter (`group/<name>/<param>`).
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs closures repeatedly and accumulates timing samples.
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, warmup: Duration) -> Self {
        Self {
            sample_size,
            warmup,
            samples: Vec::new(),
        }
    }

    /// Times `routine` over warmup plus `sample_size` measured samples.
    ///
    /// Each sample runs enough iterations to fill roughly one millisecond so
    /// that sub-microsecond routines still get stable timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup, and calibrate iterations-per-sample while at it.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000)
                as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let best = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<48} mean {:>12} best {:>12} ({} samples)",
            format_duration(mean),
            format_duration(best),
            self.samples.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warmup: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warmup duration preceding measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.warmup);
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named collection of benchmarks sharing the group's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.sample_size, self.criterion.warmup);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size, self.criterion.warmup);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group. (The real criterion finalises reports here; the shim
    /// reports eagerly, so this is a no-op kept for API compatibility.)
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group: either the struct form
/// `criterion_group! { name = n; config = expr; targets = a, b }` or the
/// positional form `criterion_group!(n, a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| ran = ran.wrapping_add(1));
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| {
            b.iter(|| seen = x);
        });
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(12).id, "12");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
