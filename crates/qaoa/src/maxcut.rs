use qgraph::Graph;
use qsim::Counts;

/// A MaxCut problem instance over a problem graph.
///
/// MaxCut is the paper's benchmark problem: every edge of the problem
/// graph becomes one commuting "CPHASE" (ZZ) gate in the QAOA cost layer.
/// The cost of a bit assignment is the number of edges whose endpoints get
/// different bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxCut {
    graph: Graph,
    max_value: u64,
}

impl MaxCut {
    /// Wraps a problem graph, precomputing the optimal cut by exhaustive
    /// search (`O(2^{n-1} · E)` — instant for the paper's n ≤ 36 *compiled*
    /// sizes only when simulated sizes stay ≤ ~24, which they do).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 30 nodes (exhaustive search would
    /// be unreasonable); compilation-only workflows can use
    /// [`MaxCut::without_optimum`].
    pub fn new(graph: Graph) -> Self {
        assert!(
            graph.node_count() <= 30,
            "exhaustive MaxCut on {} nodes is infeasible; use without_optimum",
            graph.node_count()
        );
        let max_value = brute_force_max(&graph);
        MaxCut { graph, max_value }
    }

    /// Wraps a problem graph without computing the optimum (methods that
    /// need it will panic). For compilation-only experiments on large
    /// graphs.
    pub fn without_optimum(graph: Graph) -> Self {
        MaxCut {
            graph,
            max_value: u64::MAX,
        }
    }

    /// The problem graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of binary variables (graph nodes / logical qubits).
    pub fn num_vars(&self) -> usize {
        self.graph.node_count()
    }

    /// The cut value of assignment `bits` (bit `i` of the integer is the
    /// side of node `i`).
    pub fn cut_value(&self, bits: usize) -> u64 {
        self.graph
            .edges()
            .filter(|e| ((bits >> e.a()) ^ (bits >> e.b())) & 1 == 1)
            .count() as u64
    }

    /// The optimal (maximum) cut value.
    ///
    /// # Panics
    ///
    /// Panics if constructed with [`MaxCut::without_optimum`].
    pub fn max_value(&self) -> f64 {
        assert_ne!(self.max_value, u64::MAX, "optimum was not computed");
        self.max_value as f64
    }

    /// Mean cut value over measurement counts — the numerator of the
    /// approximation ratio (§II "QAOA Optimization Flow").
    ///
    /// Returns 0.0 for empty counts.
    pub fn mean_cut(&self, counts: &Counts) -> f64 {
        let total: u64 = counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = counts
            .iter()
            .map(|(&state, &n)| self.cut_value(state) as f64 * n as f64)
            .sum();
        weighted / total as f64
    }
}

fn brute_force_max(graph: &Graph) -> u64 {
    let n = graph.node_count();
    if n == 0 {
        return 0;
    }
    let edges: Vec<(usize, usize)> = graph.edges().map(|e| (e.a(), e.b())).collect();
    // Fix node 0's side: halves the search space by cut symmetry.
    let mut best = 0u64;
    for bits in 0..(1usize << (n - 1)) {
        let assignment = bits << 1;
        let cut = edges
            .iter()
            .filter(|&&(u, v)| ((assignment >> u) ^ (assignment >> v)) & 1 == 1)
            .count() as u64;
        best = best.max(cut);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::generators;

    #[test]
    fn k4_maxcut_is_four() {
        let problem = MaxCut::new(generators::complete(4));
        assert_eq!(problem.max_value(), 4.0);
        // The balanced assignment 0b0011 cuts 4 of the 6 edges.
        assert_eq!(problem.cut_value(0b0011), 4);
        assert_eq!(problem.cut_value(0b0000), 0);
        assert_eq!(problem.cut_value(0b1111), 0);
    }

    #[test]
    fn bipartite_graph_cuts_every_edge() {
        // Path graphs are bipartite: optimum = edge count.
        for n in [2, 5, 9] {
            let problem = MaxCut::new(generators::path(n));
            assert_eq!(problem.max_value(), (n - 1) as f64);
        }
        // Even cycles too; odd cycles lose one edge.
        assert_eq!(MaxCut::new(generators::cycle(6)).max_value(), 6.0);
        assert_eq!(MaxCut::new(generators::cycle(5)).max_value(), 4.0);
    }

    #[test]
    fn complete_graph_optimum_formula() {
        // MaxCut(K_n) = floor(n^2 / 4).
        for n in [3, 4, 5, 6, 7] {
            let problem = MaxCut::new(generators::complete(n));
            assert_eq!(problem.max_value(), ((n * n) / 4) as f64, "K_{n}");
        }
    }

    #[test]
    fn cut_symmetry() {
        let problem = MaxCut::new(generators::cycle(5));
        let full_mask = 0b11111;
        for bits in 0..32usize {
            assert_eq!(problem.cut_value(bits), problem.cut_value(bits ^ full_mask));
        }
    }

    #[test]
    fn mean_cut_over_counts() {
        let problem = MaxCut::new(generators::path(3)); // edges (0,1),(1,2)
        let counts = Counts::from([(0b010, 3), (0b000, 1)]); // cuts 2 and 0
        assert!((problem.mean_cut(&counts) - 1.5).abs() < 1e-12);
        assert_eq!(problem.mean_cut(&Counts::new()), 0.0);
    }

    #[test]
    #[should_panic]
    fn without_optimum_panics_on_max_value() {
        let problem = MaxCut::without_optimum(generators::path(3));
        let _ = problem.max_value();
    }

    #[test]
    #[should_panic]
    fn oversized_graph_panics() {
        let _ = MaxCut::new(qgraph::Graph::new(31));
    }
}
