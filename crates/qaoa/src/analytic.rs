//! Closed-form p=1 QAOA-MaxCut expectation.
//!
//! The paper proposes finding optimal circuit parameters "analytically
//! \[45\] (or, for small problem size, running the algorithm in simulation)"
//! (§V-A). For p=1 MaxCut the expectation has the closed form of Wang et
//! al., *Quantum approximate optimization algorithm for MaxCut: a
//! fermionic view*, PRA 97, 022304 (2018), Eq. (14):
//!
//! ```text
//! ⟨C_uv⟩ = 1/2 + (1/4) sin(4β) sin(γ) (cos^{d_u} γ + cos^{d_v} γ)
//!          − (1/4) sin²(2β) cos^{d_u + d_v − 2λ} γ · (1 − cos^λ 2γ)
//! ```
//!
//! where `d_u = deg(u) − 1`, `d_v = deg(v) − 1` and `λ` is the number of
//! triangles containing the edge `(u, v)`. Evaluating the formula is
//! `O(E)` — no simulation — so parameter setting scales to the paper's
//! 36-node instances and beyond.

use crate::MaxCut;

/// The exact p=1 expectation of one edge's cut indicator.
pub fn edge_expectation_p1(problem: &MaxCut, u: usize, v: usize, gamma: f64, beta: f64) -> f64 {
    let g = problem.graph();
    debug_assert!(g.has_edge(u, v), "({u}, {v}) is not a problem edge");
    let du = (g.degree(u) - 1) as i32;
    let dv = (g.degree(v) - 1) as i32;
    let lambda = g.common_neighbors(u, v) as i32;
    let cg = gamma.cos();
    let term1 = 0.25 * (4.0 * beta).sin() * gamma.sin() * (cg.powi(du) + cg.powi(dv));
    let term2 = 0.25
        * (2.0 * beta).sin().powi(2)
        * cg.powi(du + dv - 2 * lambda)
        * (1.0 - (2.0 * gamma).cos().powi(lambda));
    0.5 + term1 - term2
}

/// The exact p=1 expectation of the total cut value: the sum of
/// [`edge_expectation_p1`] over all edges.
///
/// # Examples
///
/// ```
/// use qaoa::{analytic, MaxCut};
///
/// let problem = MaxCut::new(qgraph::generators::path(2));
/// // Single edge: optimum 1.0 at γ = π/2, β = π/8.
/// let e = analytic::expectation_p1(&problem,
///     std::f64::consts::FRAC_PI_2, std::f64::consts::PI / 8.0);
/// assert!((e - 1.0).abs() < 1e-12);
/// ```
pub fn expectation_p1(problem: &MaxCut, gamma: f64, beta: f64) -> f64 {
    problem
        .graph()
        .edges()
        .map(|e| edge_expectation_p1(problem, e.a(), e.b(), gamma, beta))
        .sum()
}

/// Grid-searches the analytic p=1 landscape over
/// `γ ∈ (0, π), β ∈ (0, π/2)` with `resolution` points per axis, returning
/// `((γ*, β*), expectation)`.
///
/// # Panics
///
/// Panics if `resolution < 2`.
pub fn grid_search_p1(problem: &MaxCut, resolution: usize) -> ((f64, f64), f64) {
    assert!(resolution >= 2, "grid needs at least 2 points per axis");
    let mut best = ((0.0, 0.0), f64::NEG_INFINITY);
    for i in 0..resolution {
        // open grid: avoid the degenerate γ=0 / β=0 corners
        let gamma = std::f64::consts::PI * (i as f64 + 0.5) / resolution as f64;
        for j in 0..resolution {
            let beta = std::f64::consts::FRAC_PI_2 * (j as f64 + 0.5) / resolution as f64;
            let e = expectation_p1(problem, gamma, beta);
            if e > best.1 {
                best = ((gamma, beta), e);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{expectation, QaoaParams};
    use qgraph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The analytic formula must match full statevector simulation on a
    /// battery of graphs and random angles. This simultaneously validates
    /// the formula implementation and the ansatz sign conventions.
    #[test]
    fn analytic_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(123);
        let graphs = vec![
            generators::path(2),
            generators::path(5),
            generators::cycle(5),
            generators::cycle(6),
            generators::complete(4),
            generators::complete(5),
            generators::connected_erdos_renyi(7, 0.5, 100, &mut rng).unwrap(),
            generators::connected_random_regular(8, 3, 100, &mut rng).unwrap(),
        ];
        for g in graphs {
            let problem = MaxCut::new(g);
            for _ in 0..5 {
                let gamma: f64 = rng.gen_range(-3.0..3.0);
                let beta: f64 = rng.gen_range(-1.5..1.5);
                let analytic = expectation_p1(&problem, gamma, beta);
                let simulated = expectation(&problem, &QaoaParams::p1(gamma, beta));
                assert!(
                    (analytic - simulated).abs() < 1e-9,
                    "n={}, E={}: analytic {analytic} vs simulated {simulated} at ({gamma}, {beta})",
                    problem.num_vars(),
                    problem.graph().edge_count()
                );
            }
        }
    }

    #[test]
    fn zero_angles_give_half_edges() {
        let problem = MaxCut::new(generators::complete(4));
        assert!((expectation_p1(&problem, 0.0, 0.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn grid_search_beats_random_guessing() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::connected_random_regular(10, 3, 100, &mut rng).unwrap();
        let problem = MaxCut::new(g);
        let ((gamma, beta), e) = grid_search_p1(&problem, 32);
        assert!(e > problem.graph().edge_count() as f64 / 2.0);
        assert!(gamma > 0.0 && beta > 0.0);
        // Known p=1 bound for 3-regular graphs: ratio >= 0.6924.
        assert!(
            e / problem.max_value() > 0.65,
            "ratio {}",
            e / problem.max_value()
        );
    }

    #[test]
    fn triangle_free_graph_has_no_lambda_term() {
        // On bipartite graphs λ=0 so the second term vanishes.
        let problem = MaxCut::new(generators::cycle(6));
        let (gamma, beta) = (0.8, 0.4);
        let per_edge = edge_expectation_p1(&problem, 0, 1, gamma, beta);
        let d = 1; // every node has degree 2 -> d = 1
        let want = 0.5 + 0.25 * (4.0 * beta).sin() * gamma.sin() * 2.0 * gamma.cos().powi(d);
        assert!((per_edge - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn tiny_grid_panics() {
        let problem = MaxCut::new(generators::path(2));
        let _ = grid_search_p1(&problem, 1);
    }
}
