//! General Ising cost Hamiltonians — the paper's §VI "Applicability
//! beyond QAOA-MaxCut".
//!
//! "The cost Hamiltonian of any arbitrary NP-hard problem can be
//! formulated in the Ising format consisting of ZZ-interactions \[24\].
//! Each of these ZZ-interactions can be implemented with a CPHASE gate
//! similar to the QAOA-MaxCut problem." This module implements that
//! generalization: a Hamiltonian
//!
//! ```text
//! H(s) = Σ_{(u,v)} J_uv s_u s_v + Σ_u h_u s_u ,   s ∈ {−1, +1}^n
//! ```
//!
//! with quadratic couplings `J` (compiled to the commuting ZZ "CPHASE"
//! gates — now with per-gate angles `2γJ_uv`) and optional longitudinal
//! fields `h` (compiled to single-qubit `Rz` gates, which are diagonal
//! and commute with the whole cost layer, adding nothing to the routing
//! problem).

use qcircuit::{Angle, Circuit, ParamId, ParamValues};
use qsim::StateVector;

use crate::ansatz::qaoa_param_table;
use crate::QaoaParams;

/// A general Ising problem instance.
///
/// QAOA *minimizes* `H`; [`IsingProblem::from_maxcut`] shows the standard
/// encoding where the MaxCut objective becomes `-H` up to a constant.
#[derive(Debug, Clone, PartialEq)]
pub struct IsingProblem {
    num_spins: usize,
    couplings: Vec<(usize, usize, f64)>,
    fields: Vec<f64>,
}

impl IsingProblem {
    /// Builds an Ising problem from couplings `(u, v, J_uv)` and per-spin
    /// fields (`fields.len() == num_spins`; pass zeros for no field).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range spins, duplicate operands in a coupling, a
    /// non-finite coefficient, or a field vector of the wrong length.
    pub fn new(num_spins: usize, couplings: Vec<(usize, usize, f64)>, fields: Vec<f64>) -> Self {
        assert_eq!(fields.len(), num_spins, "one field per spin required");
        for &(u, v, j) in &couplings {
            assert!(
                u < num_spins && v < num_spins,
                "coupling ({u}, {v}) out of range"
            );
            assert_ne!(u, v, "self-coupling on spin {u}");
            assert!(j.is_finite(), "non-finite coupling on ({u}, {v})");
        }
        assert!(fields.iter().all(|h| h.is_finite()), "non-finite field");
        IsingProblem {
            num_spins,
            couplings,
            fields,
        }
    }

    /// The Ising encoding of MaxCut: `J_uv = +1` per edge, no fields.
    /// Minimizing `H` maximizes the cut (`cut = (E − H)/2` with
    /// `E` = edge count).
    pub fn from_maxcut(graph: &qgraph::Graph) -> Self {
        let couplings = graph.edges().map(|e| (e.a(), e.b(), 1.0)).collect();
        IsingProblem::new(graph.node_count(), couplings, vec![0.0; graph.node_count()])
    }

    /// Number of spins (logical qubits).
    pub fn num_spins(&self) -> usize {
        self.num_spins
    }

    /// The quadratic couplings.
    pub fn couplings(&self) -> &[(usize, usize, f64)] {
        &self.couplings
    }

    /// The longitudinal fields.
    pub fn fields(&self) -> &[f64] {
        &self.fields
    }

    /// The energy of the computational-basis state `bits` under the spin
    /// convention `s_q = +1` for bit 0 and `s_q = −1` for bit 1 (matching
    /// the Pauli-Z eigenvalues).
    pub fn energy(&self, bits: usize) -> f64 {
        let spin = |q: usize| if bits >> q & 1 == 0 { 1.0 } else { -1.0 };
        let quad: f64 = self
            .couplings
            .iter()
            .map(|&(u, v, j)| j * spin(u) * spin(v))
            .sum();
        let lin: f64 = self
            .fields
            .iter()
            .enumerate()
            .map(|(q, &h)| h * spin(q))
            .sum();
        quad + lin
    }

    /// The minimum energy over all spin configurations (exhaustive).
    ///
    /// # Panics
    ///
    /// Panics for more than 26 spins.
    pub fn ground_energy(&self) -> f64 {
        assert!(self.num_spins <= 26, "exhaustive search infeasible");
        (0..(1usize << self.num_spins))
            .map(|bits| self.energy(bits))
            .fold(f64::INFINITY, f64::min)
    }

    /// Builds the level-`p` QAOA circuit for this Hamiltonian: per level,
    /// `Rzz(2γJ_uv)` per coupling and `Rz(2γh_u)` per nonzero field
    /// (implementing `e^{-iγH}` up to global phase), then the standard
    /// `Rx(2β)` mixer.
    pub fn circuit(&self, params: &QaoaParams, measure: bool) -> Circuit {
        // The bound circuit is the parametric template with the values
        // substituted, by construction.
        self.circuit_parametric(params.p(), measure)
            .bind(&params.to_values())
            .expect("table and values come from the same QaoaParams")
    }

    /// The *parametric* level-`p` QAOA circuit for this Hamiltonian: per
    /// level `k`, `Rzz(2J_uv·γ_k)` per coupling, `Rz(2h_u·γ_k)` per
    /// nonzero field and the `Rx(2β_k)` mixer, over the `2p` shared
    /// parameters of [`qaoa_param_table`]. Build once, then bind per
    /// `(γ, β)` point with [`QaoaParams::to_values`].
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn circuit_parametric(&self, p: usize, measure: bool) -> Circuit {
        let n = self.num_spins;
        let mut c = Circuit::new(n);
        c.set_param_table(qaoa_param_table(p));
        for q in 0..n {
            c.h(q);
        }
        for k in 0..p {
            let gamma = Angle::sym(ParamId(2 * k as u32));
            let beta = Angle::sym(ParamId(2 * k as u32 + 1));
            for &(u, v, j) in &self.couplings {
                c.rzz(gamma.scaled(2.0 * j), u, v);
            }
            for (q, &h) in self.fields.iter().enumerate() {
                if h != 0.0 {
                    c.rz(gamma.scaled(2.0 * h), q);
                }
            }
            for q in 0..n {
                c.rx(beta.scaled(2.0), q);
            }
        }
        if measure {
            c.measure_all();
        }
        c
    }

    /// The exact expectation `⟨γ,β|H|γ,β⟩` by statevector simulation.
    pub fn expectation(&self, params: &QaoaParams) -> f64 {
        let state = StateVector::from_circuit(&self.circuit(params, false));
        state.expectation_diagonal(|bits| self.energy(bits))
    }

    /// Grid search + Nelder–Mead *minimization* of the energy expectation
    /// at level `p`. Returns `(params, expectation)`.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `resolution < 2`.
    pub fn optimize(&self, p: usize, resolution: usize) -> (QaoaParams, f64) {
        assert!(p >= 1 && resolution >= 2, "need p >= 1 and resolution >= 2");
        // Compile-once/rebind-many: one parametric template per ansatz
        // depth; every objective evaluation only binds fresh values.
        let energy = |ansatz: &Circuit, flat: &[f64]| -> f64 {
            let state = StateVector::bind_and_simulate(ansatz, &ParamValues::from(flat))
                .expect("grid/simplex points always cover the ansatz parameters");
            state.expectation_diagonal(|bits| self.energy(bits))
        };
        // Coarse grid over one level.
        let p1_ansatz = self.circuit_parametric(1, false);
        let mut best = ((0.5, 0.25), f64::INFINITY);
        for i in 0..resolution {
            let gamma = std::f64::consts::PI * (i as f64 + 0.5) / resolution as f64;
            for jdx in 0..resolution {
                let beta = std::f64::consts::FRAC_PI_2 * (jdx as f64 + 0.5) / resolution as f64;
                let e = energy(&p1_ansatz, &[gamma, beta]);
                if e < best.1 {
                    best = ((gamma, beta), e);
                }
            }
        }
        let x0: Vec<f64> = (0..p).flat_map(|_| [best.0 .0, best.0 .1]).collect();
        let ansatz = self.circuit_parametric(p, false);
        let (x, value) = crate::optimize::nelder_mead(
            |flat| -energy(&ansatz, flat),
            &x0,
            &crate::optimize::NelderMeadOptions::default(),
        );
        (QaoaParams::from_flat(&x), -value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::generators;

    #[test]
    fn maxcut_encoding_matches_cut_values() {
        let g = generators::complete(4);
        let problem = IsingProblem::from_maxcut(&g);
        let maxcut = crate::MaxCut::new(g);
        let edges = 6.0;
        for bits in 0..16usize {
            let cut = maxcut.cut_value(bits) as f64;
            // cut = (E - H) / 2
            assert!(
                (cut - (edges - problem.energy(bits)) / 2.0).abs() < 1e-12,
                "bits {bits}"
            );
        }
        // Ground energy corresponds to the max cut.
        assert!((problem.ground_energy() - (edges - 2.0 * maxcut.max_value())).abs() < 1e-12);
    }

    #[test]
    fn fields_bias_the_ground_state() {
        // Two uncoupled spins with fields +1 and -1: ground state has
        // spin 0 down (bit 1) and spin 1 up (bit 0) -> bits = 0b01.
        let problem = IsingProblem::new(2, vec![], vec![1.0, -1.0]);
        assert_eq!(problem.ground_energy(), -2.0);
        assert_eq!(problem.energy(0b01), -2.0);
        assert_eq!(problem.energy(0b10), 2.0);
    }

    #[test]
    fn circuit_contains_field_rotations() {
        let problem = IsingProblem::new(3, vec![(0, 1, 0.5)], vec![0.7, 0.0, -0.2]);
        let c = problem.circuit(&QaoaParams::p1(0.3, 0.2), false);
        assert_eq!(c.count_gate("rzz"), 1);
        assert_eq!(c.count_gate("rz"), 2); // zero field compiles away
        assert_eq!(c.count_gate("rx"), 3);
    }

    #[test]
    fn parametric_circuit_binds_to_the_bound_form() {
        let problem = IsingProblem::new(3, vec![(0, 1, 0.5), (1, 2, -0.7)], vec![0.7, 0.0, -0.2]);
        let params = QaoaParams::new(vec![(0.3, 0.2), (0.8, 0.6)]);
        let template = problem.circuit_parametric(2, true);
        assert!(template.is_parametric());
        assert_eq!(template.num_params(), 4);
        assert_eq!(
            template.bind(&params.to_values()).unwrap(),
            problem.circuit(&params, true)
        );
    }

    #[test]
    fn optimization_approaches_ground_energy() {
        // Anti-ferromagnetic triangle with a symmetry-breaking field.
        let problem = IsingProblem::new(
            3,
            vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)],
            vec![0.4, 0.0, 0.0],
        );
        let ground = problem.ground_energy();
        let (_, e1) = problem.optimize(1, 16);
        let (_, e2) = problem.optimize(2, 16);
        assert!(e1 < 0.0, "p=1 should beat the uniform state: {e1}");
        assert!(
            e2 <= e1 + 1e-9,
            "p=2 ({e2}) must not be worse than p=1 ({e1})"
        );
        assert!(
            e2 > ground - 1e-9,
            "expectation cannot beat the ground energy"
        );
        let ratio = e2 / ground; // both negative
        assert!(ratio > 0.7, "p=2 should be close to ground: {ratio}");
    }

    #[test]
    fn weighted_couplings_affect_energy() {
        let problem = IsingProblem::new(2, vec![(0, 1, -2.5)], vec![0.0, 0.0]);
        assert_eq!(problem.energy(0b00), -2.5); // aligned spins favored
        assert_eq!(problem.energy(0b01), 2.5);
        assert_eq!(problem.ground_energy(), -2.5);
    }

    #[test]
    #[should_panic]
    fn wrong_field_length_panics() {
        let _ = IsingProblem::new(3, vec![], vec![0.0]);
    }

    #[test]
    #[should_panic]
    fn self_coupling_panics() {
        let _ = IsingProblem::new(2, vec![(1, 1, 0.3)], vec![0.0, 0.0]);
    }
}
