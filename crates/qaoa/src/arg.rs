//! Approximation ratios and the paper's Approximation Ratio Gap (ARG).
//!
//! §V-A: "We sample the output of the circuit (using a simulator ...) a
//! finite number of times to calculate the approximation ratio of the
//! given cost function (r0). Next, we run the circuit on the target
//! hardware and calculate the approximation ratio (rh) using the same
//! number of samples. We define the percentage difference between these
//! approximation ratios {100·(r0 − rh)/r0} as the approximation ratio gap
//! or ARG. A lower ARG value is desired."

use qsim::Counts;

use crate::MaxCut;

/// An approximation ratio: mean sampled cost over the optimal cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproximationRatio(f64);

impl ApproximationRatio {
    /// Wraps a raw ratio value.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not finite.
    pub fn new(r: f64) -> Self {
        assert!(r.is_finite(), "approximation ratio must be finite, got {r}");
        ApproximationRatio(r)
    }

    /// The raw value.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl std::fmt::Display for ApproximationRatio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

/// The approximation ratio of measurement counts against a MaxCut
/// problem's optimum: `mean_cut(counts) / max_value`.
///
/// # Panics
///
/// Panics if the problem's optimum was not computed or is zero.
pub fn approximation_ratio_from_counts(problem: &MaxCut, counts: &Counts) -> ApproximationRatio {
    let max = problem.max_value();
    assert!(max > 0.0, "degenerate problem with zero optimal cut");
    ApproximationRatio::new(problem.mean_cut(counts) / max)
}

/// The ARG in percent: `100 · (r0 − rh) / r0`.
///
/// `r0` is the noiseless (simulator) ratio, `rh` the hardware (or noisy
/// simulation) ratio. Lower is better; 0 means hardware matched the ideal.
///
/// # Panics
///
/// Panics if `r0` is zero (the ideal circuit never cuts anything — not a
/// meaningful QAOA instance).
pub fn approximation_ratio_gap(r0: ApproximationRatio, rh: ApproximationRatio) -> f64 {
    assert!(
        r0.value() != 0.0,
        "ideal approximation ratio must be nonzero"
    );
    100.0 * (r0.value() - rh.value()) / r0.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::generators;

    #[test]
    fn perfect_sampler_has_ratio_one() {
        let problem = MaxCut::new(generators::path(2));
        let counts = Counts::from([(0b01, 50), (0b10, 50)]);
        let r = approximation_ratio_from_counts(&problem, &counts);
        assert!((r.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_sampler_ratio_is_half_edges_over_max() {
        // K4: uniform mean cut = E/2 = 3, max = 4 -> ratio 0.75.
        let problem = MaxCut::new(generators::complete(4));
        let counts: Counts = (0..16usize).map(|s| (s, 1u64)).collect();
        let r = approximation_ratio_from_counts(&problem, &counts);
        assert!((r.value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn arg_zero_when_hardware_matches_ideal() {
        let r = ApproximationRatio::new(0.9);
        assert_eq!(approximation_ratio_gap(r, r), 0.0);
    }

    #[test]
    fn arg_grows_as_hardware_degrades() {
        let r0 = ApproximationRatio::new(0.9);
        let arg1 = approximation_ratio_gap(r0, ApproximationRatio::new(0.8));
        let arg2 = approximation_ratio_gap(r0, ApproximationRatio::new(0.6));
        assert!(arg2 > arg1);
        assert!((arg1 - 100.0 * (0.1 / 0.9)).abs() < 1e-9);
    }

    #[test]
    fn arg_can_be_negative_when_hardware_lucky() {
        // Finite sampling can make rh exceed r0; the metric is signed.
        let arg =
            approximation_ratio_gap(ApproximationRatio::new(0.8), ApproximationRatio::new(0.85));
        assert!(arg < 0.0);
    }

    #[test]
    #[should_panic]
    fn non_finite_ratio_panics() {
        let _ = ApproximationRatio::new(f64::NAN);
    }

    #[test]
    fn display_is_fixed_precision() {
        assert_eq!(ApproximationRatio::new(0.75).to_string(), "0.7500");
    }
}
