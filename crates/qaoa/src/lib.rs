//! The QAOA layer: MaxCut cost Hamiltonians, the parameterized ansatz,
//! classical parameter optimization and the paper's Approximation Ratio
//! Gap (ARG) metric.
//!
//! # Conventions
//!
//! For a problem graph `G = (V, E)` the MaxCut cost of a bit assignment
//! `x ∈ {0,1}^V` is the number of cut edges. The level-`p` QAOA ansatz is
//!
//! ```text
//! |γ, β⟩ = U_B(β_p) U_C(γ_p) ... U_B(β_1) U_C(γ_1) H^{⊗n} |0⟩
//! U_C(γ) = e^{-iγC}   (one Rzz(-γ) per edge, up to global phase)
//! U_B(β) = e^{-iβΣX}  (one Rx(2β) per qubit)
//! ```
//!
//! matching Farhi et al. and the closed-form p=1 expectation of Wang et
//! al. (PRA 97, 022304) implemented in [`analytic`] — the paper's route to
//! finding circuit parameters "analytically \[45\]".
//!
//! # Examples
//!
//! ```
//! use qaoa::{MaxCut, QaoaParams};
//!
//! // Figure 1(a): the 4-node 3-regular graph. Its MaxCut value is 4.
//! let g = qgraph::Graph::from_edges(4, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)])?;
//! let problem = MaxCut::new(g);
//! assert_eq!(problem.max_value(), 4.0);
//!
//! // Optimize p=1 parameters and check the approximation ratio is
//! // meaningfully above random guessing (0.5).
//! let (params, expectation) = qaoa::optimize::grid_then_nelder_mead(&problem, 1, 24);
//! assert_eq!(params.p(), 1);
//! assert!(expectation / problem.max_value() > 0.6);
//! # Ok::<(), qgraph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod ansatz;
mod arg;
pub mod ising;
mod maxcut;
pub mod optimize;

pub use ansatz::{
    expectation, qaoa_circuit, qaoa_circuit_parametric, qaoa_param_table, QaoaParams,
};
pub use arg::{approximation_ratio_from_counts, approximation_ratio_gap, ApproximationRatio};
pub use maxcut::MaxCut;
