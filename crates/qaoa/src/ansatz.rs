use qcircuit::Circuit;
use qsim::StateVector;

use crate::MaxCut;

/// The `(γ, β)` parameters of a level-`p` QAOA ansatz.
///
/// Each level contributes one cost angle `γ` and one mixer angle `β`
/// (§I: "each level adds additional two parameters (γ, β)").
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaParams {
    levels: Vec<(f64, f64)>,
}

impl QaoaParams {
    /// Builds parameters from `(γ_k, β_k)` pairs, one per level.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(levels: Vec<(f64, f64)>) -> Self {
        assert!(!levels.is_empty(), "QAOA needs at least one level");
        QaoaParams { levels }
    }

    /// Single-level parameters.
    pub fn p1(gamma: f64, beta: f64) -> Self {
        QaoaParams::new(vec![(gamma, beta)])
    }

    /// The number of levels `p`.
    pub fn p(&self) -> usize {
        self.levels.len()
    }

    /// The `(γ, β)` pairs in level order.
    pub fn levels(&self) -> &[(f64, f64)] {
        &self.levels
    }

    /// Flattens to `[γ_1, β_1, γ_2, β_2, ...]` for generic optimizers.
    pub fn to_flat(&self) -> Vec<f64> {
        self.levels.iter().flat_map(|&(g, b)| [g, b]).collect()
    }

    /// Rebuilds from the flat `[γ_1, β_1, ...]` encoding.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is empty or has odd length.
    pub fn from_flat(flat: &[f64]) -> Self {
        assert!(
            !flat.is_empty() && flat.len().is_multiple_of(2),
            "flat params must pair up"
        );
        QaoaParams::new(flat.chunks_exact(2).map(|c| (c[0], c[1])).collect())
    }
}

/// Builds the logical QAOA-MaxCut circuit for `problem` with `params`
/// (Figure 1(b)): Hadamards, then per level one `Rzz(-γ)` per problem edge
/// (the commuting "CPHASE" cost layer, edges in canonical order) and one
/// `Rx(2β)` per qubit. Appends measurements when `measure` is set.
pub fn qaoa_circuit(problem: &MaxCut, params: &QaoaParams, measure: bool) -> Circuit {
    let n = problem.num_vars();
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for &(gamma, beta) in params.levels() {
        for e in problem.graph().edges() {
            // e^{-iγ C_uv} = global phase · Rzz(-γ) for C_uv = (1 - Z_u Z_v)/2.
            c.rzz(-gamma, e.a(), e.b());
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    if measure {
        c.measure_all();
    }
    c
}

/// The exact (noiseless) expectation `⟨γ,β|C|γ,β⟩` of the cut value,
/// evaluated by statevector simulation.
///
/// # Panics
///
/// Panics if the problem exceeds the simulator's qubit limit.
pub fn expectation(problem: &MaxCut, params: &QaoaParams) -> f64 {
    let circuit = qaoa_circuit(problem, params, false);
    let state = StateVector::from_circuit(&circuit);
    state.expectation_diagonal(|bits| problem.cut_value(bits) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::generators;

    #[test]
    fn params_round_trip_flat() {
        let p = QaoaParams::new(vec![(0.1, 0.2), (0.3, 0.4)]);
        assert_eq!(p.p(), 2);
        let flat = p.to_flat();
        assert_eq!(flat, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(QaoaParams::from_flat(&flat), p);
    }

    #[test]
    #[should_panic]
    fn empty_params_panic() {
        let _ = QaoaParams::new(vec![]);
    }

    #[test]
    fn circuit_structure_matches_figure_1b() {
        let problem = MaxCut::new(generators::complete(4));
        let c = qaoa_circuit(&problem, &QaoaParams::p1(0.4, 0.3), true);
        assert_eq!(c.count_gate("h"), 4);
        assert_eq!(c.count_gate("rzz"), 6);
        assert_eq!(c.count_gate("rx"), 4);
        assert_eq!(c.count_gate("measure"), 4);
    }

    #[test]
    fn multi_level_repeats_layers() {
        let problem = MaxCut::new(generators::cycle(5));
        let params = QaoaParams::new(vec![(0.1, 0.2), (0.3, 0.4), (0.5, 0.6)]);
        let c = qaoa_circuit(&problem, &params, false);
        assert_eq!(c.count_gate("rzz"), 3 * 5);
        assert_eq!(c.count_gate("rx"), 3 * 5);
    }

    #[test]
    fn zero_angles_give_uniform_superposition() {
        // γ = β = 0 leaves |+...+>; expectation = E/2.
        let problem = MaxCut::new(generators::complete(4));
        let e = expectation(&problem, &QaoaParams::p1(0.0, 0.0));
        assert!((e - 3.0).abs() < 1e-10, "got {e}");
    }

    #[test]
    fn optimal_p1_on_single_edge() {
        // For a single edge the p=1 optimum reaches cut expectation
        // (1 + 1)/2... exactly: max over (γ, β) of 1/2 + 1/4 sin(4β) sin(γ)·2
        // = 1 at γ = π/2, β = π/8.
        let problem = MaxCut::new(generators::path(2));
        let e = expectation(
            &problem,
            &QaoaParams::p1(std::f64::consts::FRAC_PI_2, std::f64::consts::PI / 8.0),
        );
        assert!((e - 1.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn expectation_is_symmetric_in_beta_period() {
        // β and β + π give identical expectations (Rx(2β) has period 2π up
        // to sign, and the cost is parity-symmetric).
        let problem = MaxCut::new(generators::cycle(5));
        let a = expectation(&problem, &QaoaParams::p1(0.7, 0.3));
        let b = expectation(&problem, &QaoaParams::p1(0.7, 0.3 + std::f64::consts::PI));
        assert!((a - b).abs() < 1e-9);
    }
}
