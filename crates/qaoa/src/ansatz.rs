use qcircuit::{Angle, Circuit, ParamId, ParamTable, ParamValues};
use qsim::StateVector;

use crate::MaxCut;

/// The `(γ, β)` parameters of a level-`p` QAOA ansatz.
///
/// Each level contributes one cost angle `γ` and one mixer angle `β`
/// (§I: "each level adds additional two parameters (γ, β)").
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaParams {
    levels: Vec<(f64, f64)>,
}

impl QaoaParams {
    /// Builds parameters from `(γ_k, β_k)` pairs, one per level.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(levels: Vec<(f64, f64)>) -> Self {
        assert!(!levels.is_empty(), "QAOA needs at least one level");
        QaoaParams { levels }
    }

    /// Single-level parameters.
    pub fn p1(gamma: f64, beta: f64) -> Self {
        QaoaParams::new(vec![(gamma, beta)])
    }

    /// The number of levels `p`.
    pub fn p(&self) -> usize {
        self.levels.len()
    }

    /// The `(γ, β)` pairs in level order.
    pub fn levels(&self) -> &[(f64, f64)] {
        &self.levels
    }

    /// Flattens to `[γ_1, β_1, γ_2, β_2, ...]` for generic optimizers.
    pub fn to_flat(&self) -> Vec<f64> {
        self.levels.iter().flat_map(|&(g, b)| [g, b]).collect()
    }

    /// Rebuilds from the flat `[γ_1, β_1, ...]` encoding.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is empty or has odd length.
    pub fn from_flat(flat: &[f64]) -> Self {
        assert!(
            !flat.is_empty() && flat.len().is_multiple_of(2),
            "flat params must pair up"
        );
        QaoaParams::new(flat.chunks_exact(2).map(|c| (c[0], c[1])).collect())
    }

    /// The flat encoding as binding values for a parametric ansatz built
    /// by [`qaoa_circuit_parametric`] (or a parametric `QaoaSpec`): the
    /// value of `ParamId(2k)` is `γ_k` and of `ParamId(2k + 1)` is `β_k`.
    pub fn to_values(&self) -> ParamValues {
        ParamValues::new(self.to_flat())
    }
}

/// The shared parameter table of a level-`p` parametric QAOA ansatz:
/// `gamma0, beta0, gamma1, beta1, …` — `2p` entries, level `k`'s cost
/// parameter at `ParamId(2k)` and mixer parameter at `ParamId(2k + 1)`,
/// matching the flat `[γ_1, β_1, …]` layout of [`QaoaParams::to_flat`].
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn qaoa_param_table(p: usize) -> ParamTable {
    assert!(p > 0, "QAOA needs at least one level");
    let mut table = ParamTable::new();
    for k in 0..p {
        table.declare(format!("gamma{k}"));
        table.declare(format!("beta{k}"));
    }
    table
}

/// Builds the *parametric* logical QAOA-MaxCut circuit at level `p`: the
/// Figure 1(b) structure with symbolic angles — per level `k`, one
/// `Rzz(-γ_k)` per problem edge and one `Rx(2β_k)` per qubit, where
/// `γ_k`/`β_k` are the `2p` shared parameters of [`qaoa_param_table`].
///
/// This is the compile-once half of the compile-once/rebind-many flow:
/// the circuit's structure never changes across parameter points, so one
/// build (or one compilation) serves every optimizer iteration; bind with
/// [`QaoaParams::to_values`] (see [`qcircuit::Circuit::bind`]).
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn qaoa_circuit_parametric(problem: &MaxCut, p: usize, measure: bool) -> Circuit {
    let n = problem.num_vars();
    let mut c = Circuit::new(n);
    c.set_param_table(qaoa_param_table(p));
    for q in 0..n {
        c.h(q);
    }
    for k in 0..p {
        let gamma = Angle::sym(ParamId(2 * k as u32));
        let beta = Angle::sym(ParamId(2 * k as u32 + 1));
        for e in problem.graph().edges() {
            // e^{-iγ C_uv} = global phase · Rzz(-γ) for C_uv = (1 - Z_u Z_v)/2.
            c.rzz(gamma.scaled(-1.0), e.a(), e.b());
        }
        for q in 0..n {
            c.rx(beta.scaled(2.0), q);
        }
    }
    if measure {
        c.measure_all();
    }
    c
}

/// Builds the logical QAOA-MaxCut circuit for `problem` with `params`
/// (Figure 1(b)): Hadamards, then per level one `Rzz(-γ)` per problem edge
/// (the commuting "CPHASE" cost layer, edges in canonical order) and one
/// `Rx(2β)` per qubit. Appends measurements when `measure` is set.
pub fn qaoa_circuit(problem: &MaxCut, params: &QaoaParams, measure: bool) -> Circuit {
    // One structural builder serves both forms: the bound circuit is the
    // parametric template with the values substituted, by construction.
    qaoa_circuit_parametric(problem, params.p(), measure)
        .bind(&params.to_values())
        .expect("table and values come from the same QaoaParams")
}

/// The exact (noiseless) expectation `⟨γ,β|C|γ,β⟩` of the cut value,
/// evaluated by statevector simulation.
///
/// # Panics
///
/// Panics if the problem exceeds the simulator's qubit limit.
pub fn expectation(problem: &MaxCut, params: &QaoaParams) -> f64 {
    let circuit = qaoa_circuit(problem, params, false);
    let state = StateVector::from_circuit(&circuit);
    state.expectation_diagonal(|bits| problem.cut_value(bits) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::generators;

    #[test]
    fn params_round_trip_flat() {
        let p = QaoaParams::new(vec![(0.1, 0.2), (0.3, 0.4)]);
        assert_eq!(p.p(), 2);
        let flat = p.to_flat();
        assert_eq!(flat, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(QaoaParams::from_flat(&flat), p);
    }

    #[test]
    #[should_panic]
    fn empty_params_panic() {
        let _ = QaoaParams::new(vec![]);
    }

    #[test]
    fn parametric_circuit_binds_to_the_bound_form() {
        let problem = MaxCut::new(generators::complete(4));
        let params = QaoaParams::new(vec![(0.4, 0.3), (0.9, 0.1)]);
        let template = qaoa_circuit_parametric(&problem, 2, true);
        assert!(template.is_parametric());
        assert_eq!(template.num_params(), 4);
        assert_eq!(
            template.bind(&params.to_values()).unwrap(),
            qaoa_circuit(&problem, &params, true)
        );
    }

    #[test]
    fn param_table_names_follow_flat_order() {
        let table = qaoa_param_table(2);
        assert_eq!(table.len(), 4);
        assert_eq!(table.name(qcircuit::ParamId(0)), Some("gamma0"));
        assert_eq!(table.name(qcircuit::ParamId(1)), Some("beta0"));
        assert_eq!(table.name(qcircuit::ParamId(3)), Some("beta1"));
    }

    #[test]
    fn circuit_structure_matches_figure_1b() {
        let problem = MaxCut::new(generators::complete(4));
        let c = qaoa_circuit(&problem, &QaoaParams::p1(0.4, 0.3), true);
        assert_eq!(c.count_gate("h"), 4);
        assert_eq!(c.count_gate("rzz"), 6);
        assert_eq!(c.count_gate("rx"), 4);
        assert_eq!(c.count_gate("measure"), 4);
    }

    #[test]
    fn multi_level_repeats_layers() {
        let problem = MaxCut::new(generators::cycle(5));
        let params = QaoaParams::new(vec![(0.1, 0.2), (0.3, 0.4), (0.5, 0.6)]);
        let c = qaoa_circuit(&problem, &params, false);
        assert_eq!(c.count_gate("rzz"), 3 * 5);
        assert_eq!(c.count_gate("rx"), 3 * 5);
    }

    #[test]
    fn zero_angles_give_uniform_superposition() {
        // γ = β = 0 leaves |+...+>; expectation = E/2.
        let problem = MaxCut::new(generators::complete(4));
        let e = expectation(&problem, &QaoaParams::p1(0.0, 0.0));
        assert!((e - 3.0).abs() < 1e-10, "got {e}");
    }

    #[test]
    fn optimal_p1_on_single_edge() {
        // For a single edge the p=1 optimum reaches cut expectation
        // (1 + 1)/2... exactly: max over (γ, β) of 1/2 + 1/4 sin(4β) sin(γ)·2
        // = 1 at γ = π/2, β = π/8.
        let problem = MaxCut::new(generators::path(2));
        let e = expectation(
            &problem,
            &QaoaParams::p1(std::f64::consts::FRAC_PI_2, std::f64::consts::PI / 8.0),
        );
        assert!((e - 1.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn expectation_is_symmetric_in_beta_period() {
        // β and β + π give identical expectations (Rx(2β) has period 2π up
        // to sign, and the cost is parity-symmetric).
        let problem = MaxCut::new(generators::cycle(5));
        let a = expectation(&problem, &QaoaParams::p1(0.7, 0.3));
        let b = expectation(&problem, &QaoaParams::p1(0.7, 0.3 + std::f64::consts::PI));
        assert!((a - b).abs() < 1e-9);
    }
}
